//! Workspace-level integration tests: exercise the whole stack through the
//! umbrella crate, the way a downstream user would.

use ramcloud_repro::core::{Cluster, ClusterConfig};
use ramcloud_repro::logstore::{LogConfig, Store, TableId};
use ramcloud_repro::sim::{SimDuration, SimTime, Simulation};
use ramcloud_repro::standalone::{ServerConfig, StandaloneServer};
use ramcloud_repro::ycsb::{RequestGenerator, StandardWorkload, WorkloadSpec};

#[test]
fn umbrella_reexports_work_together() {
    // Engine.
    let mut store = Store::new(LogConfig::default());
    store.write(TableId(1), b"k", b"v").unwrap();
    assert!(store.read(TableId(1), b"k").is_some());

    // Simulator.
    let mut sim = Simulation::new(0u32);
    sim.scheduler_mut()
        .schedule_at(SimTime::from_secs(1), |n: &mut u32, _| *n += 1);
    sim.run();
    assert_eq!(*sim.state(), 1);

    // Workload generator.
    let mut client = RequestGenerator::new(
        WorkloadSpec::standard(StandardWorkload::B).with_ops_per_client(100),
        7,
    );
    assert_eq!(std::iter::from_fn(|| client.next_request()).count(), 100);
}

#[test]
fn simulated_cluster_and_standalone_agree_on_semantics() {
    // Same logical operations through both deployments must agree on what
    // survives: versions bump per overwrite, deletes stick.
    let table = TableId(1);

    // Standalone (real threads).
    let server = StandaloneServer::start(ServerConfig::default());
    let client = server.client();
    client.write(table, b"key", b"v1").unwrap();
    let v2 = client.write(table, b"key", b"v2").unwrap();
    assert_eq!(v2.version.0, 2);
    client.delete(table, b"key").unwrap();
    assert!(client.read(table, b"key").unwrap().is_none());
    server.shutdown();

    // Simulated cluster (peek through the data plane).
    let workload = WorkloadSpec::standard(StandardWorkload::A)
        .with_record_count(50)
        .with_ops_per_client(500);
    let cfg = ClusterConfig::new(2, 2, workload.clone());
    let mut cluster = Cluster::new(cfg);
    cluster.preload();
    for i in 0..50 {
        let key = workload.key_for(i);
        assert_eq!(cluster.peek(&key).unwrap().version.0, 1);
    }
}

#[test]
fn full_measurement_pipeline_miniature() {
    // The complete paper pipeline: load, run a mixed workload, sample power,
    // compute efficiency — at test scale.
    let workload = WorkloadSpec::standard(StandardWorkload::A)
        .with_record_count(1_000)
        .with_ops_per_client(2_000);
    let cfg = ClusterConfig::new(4, 6, workload).with_replication(2);
    let report = Cluster::new(cfg).run();
    assert_eq!(report.completed_ops, 12_000);
    assert!(report.throughput_ops > 1_000.0);
    // Power must sit inside the node model's physical envelope.
    for &w in &report.energy.per_node_avg_watts {
        assert!((59.0..135.0).contains(&w), "implausible node power {w}");
    }
    assert!(report.ops_per_joule > 0.0);
    let (cpu_min, cpu_max) = report.cpu_min_max_pct();
    assert!(cpu_min >= 25.0 - 1e-6, "dispatch floor violated: {cpu_min}");
    assert!(cpu_max <= 100.0 + 1e-6);
}

#[test]
fn crash_recovery_through_umbrella() {
    let workload = WorkloadSpec::standard(StandardWorkload::C)
        .with_record_count(2_000)
        .with_ops_per_client(0);
    let cfg = ClusterConfig::new(3, 1, workload).with_replication(2);
    let mut cluster = Cluster::new(cfg);
    cluster.plan_kill(SimTime::from_secs(1), Some(0));
    let report = cluster.run_with_min_duration(SimDuration::from_secs(5));
    let rec = report.recovery.expect("recovery ran");
    assert!(rec.replayed_entries > 0);
    assert!(rec.duration_secs > 0.0);
}
