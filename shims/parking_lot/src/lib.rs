//! Offline shim for the [`parking_lot`](https://docs.rs/parking_lot) crate.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s non-poisoning API (lock
//! acquisition returns guards directly instead of `Result`s). Poisoning is
//! handled by propagating the inner value: a panic while holding a lock
//! panics subsequent acquirers too, which matches how this workspace uses
//! locks (worker panics are already fatal to the test/process).

#![warn(missing_docs)]

use std::fmt;
use std::sync::TryLockError;

/// Re-export of the std read guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Re-export of the std write guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
/// Re-export of the std guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire an exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn debug_does_not_deadlock() {
        let l = RwLock::new(5);
        let _g = l.write();
        assert!(format!("{l:?}").contains("locked"));
    }
}
