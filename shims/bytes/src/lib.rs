//! Offline shim for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! Implements the slice of the API this workspace uses: [`Bytes`], a cheaply
//! clonable, immutable, reference-counted byte buffer. Cloning shares the
//! underlying allocation; all read access goes through `Deref<Target = [u8]>`.

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable, contiguous byte buffer.
///
/// Cloning and [`Bytes::slice`] share the underlying allocation — neither
/// copies:
///
/// ```
/// use bytes::Bytes;
///
/// let b = Bytes::copy_from_slice(b"hello world");
/// let c = b.clone();
/// // The clone points at the very same allocation — no bytes were copied.
/// assert_eq!(b.as_slice().as_ptr(), c.as_slice().as_ptr());
///
/// let word = b.slice(6..);
/// assert_eq!(&word[..], b"world");
/// // The subrange view shares the allocation too.
/// assert_eq!(word.as_slice().as_ptr(), unsafe { b.as_slice().as_ptr().add(6) });
/// ```
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            start: 0,
            end: 0,
        }
    }

    fn from_arc(data: Arc<[u8]>) -> Self {
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }

    /// Copies `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_arc(Arc::from(data))
    }

    /// Creates a buffer from a static slice.
    ///
    /// The shim copies the bytes once (the real crate borrows them); the
    /// observable behaviour is identical.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from_arc(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the bytes into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a view of the subrange `range` of `self`, sharing the
    /// underlying allocation (no copy, no new allocation).
    ///
    /// Accepts any range kind, like the real `bytes` crate:
    ///
    /// ```
    /// use bytes::Bytes;
    /// let b = Bytes::copy_from_slice(b"abcdef");
    /// assert_eq!(&b.slice(1..4)[..], b"bcd");
    /// assert_eq!(&b.slice(..2)[..], b"ab");
    /// assert_eq!(&b.slice(4..)[..], b"ef");
    /// assert_eq!(b.slice(..), b);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n.checked_add(1).expect("range end overflows"),
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "slice range inverted: {begin} > {end}");
        assert!(end <= len, "slice range {end} out of bounds for len {len}");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_arc(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_sharing() {
        let b = Bytes::copy_from_slice(b"hello");
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&b[..], b"hello");
        assert_eq!(b.to_vec(), b"hello".to_vec());
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
    }

    #[test]
    fn from_impls() {
        assert_eq!(Bytes::from(vec![1u8, 2]), Bytes::copy_from_slice(&[1, 2]));
        assert_eq!(Bytes::from_static(b"s"), Bytes::copy_from_slice(b"s"));
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn ordering_and_debug() {
        assert!(Bytes::copy_from_slice(b"a") < Bytes::copy_from_slice(b"b"));
        let d = format!("{:?}", Bytes::copy_from_slice(b"a\x01"));
        assert_eq!(d, "b\"a\\x01\"");
    }

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::copy_from_slice(b"0123456789");
        let s = b.slice(2..6);
        assert_eq!(&s[..], b"2345");
        assert_eq!(s.len(), 4);
        assert_eq!(s.as_slice().as_ptr(), unsafe {
            b.as_slice().as_ptr().add(2)
        });
        // Slicing a slice composes.
        let t = s.slice(1..=2);
        assert_eq!(&t[..], b"34");
        // Comparisons, hashing, and debug all respect the window.
        assert_eq!(t, Bytes::copy_from_slice(b"34"));
        assert_eq!(format!("{t:?}"), "b\"34\"");
        assert!(b.slice(3..3).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let _ = Bytes::copy_from_slice(b"abc").slice(1..5);
    }
}
