//! Offline shim for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! Implements the slice of the API this workspace uses: [`Bytes`], a cheaply
//! clonable, immutable, reference-counted byte buffer. Cloning shares the
//! underlying allocation; all read access goes through `Deref<Target = [u8]>`.

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable, contiguous byte buffer.
#[derive(Clone, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copies `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Creates a buffer from a static slice.
    ///
    /// The shim copies the bytes once (the real crate borrows them); the
    /// observable behaviour is identical.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Copies the bytes into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.0[..] == other.0[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.0[..] == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0[..].cmp(&other.0[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_sharing() {
        let b = Bytes::copy_from_slice(b"hello");
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&b[..], b"hello");
        assert_eq!(b.to_vec(), b"hello".to_vec());
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
    }

    #[test]
    fn from_impls() {
        assert_eq!(Bytes::from(vec![1u8, 2]), Bytes::copy_from_slice(&[1, 2]));
        assert_eq!(Bytes::from_static(b"s"), Bytes::copy_from_slice(b"s"));
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn ordering_and_debug() {
        assert!(Bytes::copy_from_slice(b"a") < Bytes::copy_from_slice(b"b"));
        let d = format!("{:?}", Bytes::copy_from_slice(b"a\x01"));
        assert_eq!(d, "b\"a\\x01\"");
    }
}
