//! Offline shim for the [`serde`](https://docs.rs/serde) crate.
//!
//! The workspace uses serde only for `#[derive(Serialize, Deserialize)]` on
//! data types (no serializer is ever invoked — JSON/CSV output is written by
//! hand). This shim provides marker traits satisfied by every type and
//! re-exports no-op derive macros, so all existing derive annotations
//! compile unchanged while the build stays fully offline.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; satisfied by every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; satisfied by every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Deserialization support types (marker-only in the shim).
pub mod de {
    pub use crate::DeserializeOwned;
}
