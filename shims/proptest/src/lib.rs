//! Offline shim for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), [`strategy::Strategy`] with
//! `prop_map`, `any::<T>()`, numeric-range and tuple strategies,
//! [`collection::vec`], [`option::of`], [`prop_oneof!`] (weighted and
//! unweighted), `Just`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test RNG (seeded from the test's module path and name)
//! and failing inputs are **not shrunk** — the panic message reports the
//! generated values via the test's own assertion text instead.

#![warn(missing_docs)]

pub mod test_runner {
    //! Test-case driving: configuration, RNG, and rejection bookkeeping.

    /// Run configuration; `cases` is the number of accepted cases required.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of (non-rejected) cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Marker for a rejected case (`prop_assume!` failure).
    #[derive(Debug, Clone, Copy)]
    pub struct Rejected;

    /// Deterministic RNG (splitmix64 seeding an xoshiro256++ core).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds deterministically from a test identifier string.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name, then splitmix64 to fill the state.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut sm = h;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next raw 64-bit value (xoshiro256++).
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Modulo is fine here: test-data generation tolerates the bias.
            self.next_u64() % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// Generates values of `Self::Value` from an RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Discards generated values failing `pred` by regenerating (up to a
        /// bounded number of attempts, then keeps the last value).
        fn prop_filter<F>(self, _whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, pred }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let mut last = self.inner.generate(rng);
            for _ in 0..100 {
                if (self.pred)(&last) {
                    break;
                }
                last = self.inner.generate(rng);
            }
            last
        }
    }

    /// A boxed generator arm of a [`Union`] with its selection weight.
    pub type WeightedArm<V> = (u32, Box<dyn Fn(&mut TestRng) -> V>);

    /// Weighted choice among same-valued strategies ([`crate::prop_oneof!`]).
    pub struct Union<V> {
        arms: Vec<WeightedArm<V>>,
        total: u64,
    }

    impl<V> std::fmt::Debug for Union<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} arms)", self.arms.len())
        }
    }

    impl<V> Union<V> {
        /// Builds a union from `(weight, generator)` arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty or all weights are zero.
        pub fn weighted(arms: Vec<WeightedArm<V>>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, arm) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return arm(rng);
                }
                pick -= w;
            }
            unreachable!("weights sum covered above")
        }
    }

    /// Types with a canonical full-range strategy ([`any`]).
    pub trait Arbitrary {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `T` (full value range).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated text debuggable.
            (0x20 + rng.below(0x5f) as u8) as char
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        #[allow(clippy::cast_possible_truncation)]
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident/$idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for [`vec()`]; build one from a `Range<usize>` or a
    /// fixed `usize`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>` (`None` one time in four).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// Generates `Some(inner)` 75% of the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod prelude {
    //! Single-import surface mirroring `proptest::prelude::*`.

    pub use crate::strategy::{any, Any, Arbitrary, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestRng;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = (<$crate::test_runner::Config as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __cfg.cases.saturating_mul(16).max(256);
            while __accepted < __cfg.cases && __attempts < __max_attempts {
                __attempts += 1;
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                // The closure gives `prop_assume!`'s `return Err(..)` a
                // function boundary to return through.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::core::result::Result<(), $crate::test_runner::Rejected> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if __outcome.is_ok() {
                    __accepted += 1;
                }
            }
            assert!(
                __accepted >= __cfg.cases,
                "proptest: only {} of {} cases accepted (too many prop_assume! rejections)",
                __accepted,
                __cfg.cases,
            );
        }
    )*};
}

/// Asserts a condition inside a property, failing the whole test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property, failing the whole test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property, failing the whole test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Rejects the current case (it does not count toward the case quota).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Picks among strategies, optionally weighted (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![$(
            (
                $weight as u32,
                ::std::boxed::Box::new({
                    let __s = $strat;
                    move |rng: &mut $crate::test_runner::TestRng| {
                        $crate::strategy::Strategy::generate(&__s, rng)
                    }
                }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>,
            )
        ),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1 => $strat),+)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_any_stay_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(5u32..17), &mut rng);
            assert!((5..17).contains(&v));
            let f = Strategy::generate(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
            let i = Strategy::generate(&(3usize..=4), &mut rng);
            assert!((3..=4).contains(&i));
        }
    }

    #[test]
    fn vec_and_tuple_strategies() {
        let mut rng = TestRng::from_name("vec");
        let s = crate::collection::vec((any::<u8>(), 0u64..9), 2..5);
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&(_, b)| b < 9));
        }
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let mut rng = TestRng::from_name("oneof");
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let trues = (0..1000)
            .filter(|_| Strategy::generate(&s, &mut rng))
            .count();
        assert!(trues > 800, "trues={trues}");
    }

    #[test]
    fn option_of_mixes_none_and_some() {
        let mut rng = TestRng::from_name("option");
        let s = crate::option::of(any::<u64>());
        let nones = (0..1000)
            .filter(|_| Strategy::generate(&s, &mut rng).is_none())
            .count();
        assert!((100..500).contains(&nones), "nones={nones}");
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("same");
        let mut b = TestRng::from_name("same");
        let mut c = TestRng::from_name("other");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(x in 1u64..100, v in crate::collection::vec(any::<u8>(), 0..16)) {
            prop_assume!(x != 13);
            prop_assert!((1..100).contains(&x));
            prop_assert_ne!(x, 13);
            prop_assert_eq!(v.len(), v.len());
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(b in any::<bool>()) {
            prop_assert!(b as u8 <= 1);
        }
    }
}
