//! Offline shim for the [`criterion`](https://docs.rs/criterion) crate.
//!
//! Implements the API surface this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `Throughput`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — with a
//! simple calibrated wall-clock timer instead of criterion's statistical
//! machinery. Each benchmark prints `name: time/iter (throughput)` on one
//! line. Good enough to compare orders of magnitude and track regressions
//! by eye; the real measurement harness for this repo is the dedicated
//! bench binaries (see `rmc-bench`).

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration throughput annotation (printed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<N, F>(&mut self, name: N, f: F) -> &mut Self
    where
        N: Into<String>,
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), None, f);
        self
    }
}

/// A named group of benchmarks sharing throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets per-iteration throughput used in reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim sizes runs by wall-clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim sizes runs by wall-clock.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<N, F>(&mut self, name: N, f: F) -> &mut Self
    where
        N: Into<String>,
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.name, name.into()),
            self.throughput,
            f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the closure under measurement; call [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    target_iters: u64,
}

impl Bencher {
    /// Times `target_iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.target_iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters_done = self.target_iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    // Calibrate: grow the iteration count until one batch takes >= 20 ms,
    // then measure a final batch.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            target_iters: iters,
            ..Bencher::default()
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(20) || iters >= 1 << 24 {
            report(name, &b, throughput);
            return;
        }
        iters = iters.saturating_mul(4);
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    let per_iter_ns = if b.iters_done > 0 {
        b.elapsed.as_nanos() as f64 / b.iters_done as f64
    } else {
        0.0
    };
    let rate = |n: u64| {
        if per_iter_ns > 0.0 {
            n as f64 * 1e9 / per_iter_ns
        } else {
            0.0
        }
    };
    match throughput {
        Some(Throughput::Elements(n)) => println!(
            "bench {name}: {per_iter_ns:.0} ns/iter ({:.0} elem/s)",
            rate(n)
        ),
        Some(Throughput::Bytes(n)) => println!(
            "bench {name}: {per_iter_ns:.0} ns/iter ({:.1} MiB/s)",
            rate(n) / (1024.0 * 1024.0)
        ),
        None => println!("bench {name}: {per_iter_ns:.0} ns/iter"),
    }
}

/// Groups benchmark functions into one callable entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("noop", |b| b.iter(|| count = count.wrapping_add(1)));
        assert!(count > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(1));
        g.sample_size(10);
        g.bench_function("inner", |b| b.iter(|| black_box(2 + 2)));
        g.finish();
    }
}
