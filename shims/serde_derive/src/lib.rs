//! Offline shim for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on plain data types but
//! never feeds them to a serializer (benchmark output is hand-written JSON),
//! so the derives only need to *compile*: they accept the usual syntax —
//! including `#[serde(...)]` field attributes — and emit nothing. The marker
//! traits in the `serde` shim are implemented for all types via a blanket
//! impl, so `T: Serialize` bounds keep working too.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
