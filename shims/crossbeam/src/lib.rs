//! Offline shim for the [`crossbeam`](https://docs.rs/crossbeam) crate.
//!
//! Provides `crossbeam::channel` with the semantics this workspace relies
//! on, implemented over `Mutex` + `Condvar`:
//!
//! - bounded MPMC channels; `send` blocks when full,
//! - `send` fails once every `Receiver` is gone,
//! - `recv` fails once every `Sender` is gone **and** the queue is empty,
//! - when the last `Receiver` drops, all queued messages are dropped
//!   immediately. This mirrors crossbeam: no one can ever receive them, and
//!   dropping them promptly is what lets a reply channel embedded in a
//!   queued request disconnect (and thus wake) its waiting client.

#![warn(missing_docs)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        capacity: usize,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Creates a bounded channel of `capacity` messages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (rendezvous channels are not needed by
    /// this workspace and are not implemented).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        assert!(capacity > 0, "shim does not implement rendezvous channels");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Creates an effectively unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        bounded(usize::MAX / 2)
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is full.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// The sending half of a channel. Clonable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Clonable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while the channel is full.
        ///
        /// # Errors
        ///
        /// [`SendError`] carrying the value back if all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.queue.len() < self.shared.capacity {
                    st.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                st = self.shared.not_full.wait(st).unwrap();
            }
        }

        /// Sends without blocking.
        ///
        /// # Errors
        ///
        /// [`TrySendError::Full`] or [`TrySendError::Disconnected`],
        /// carrying the value back.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if st.queue.len() >= self.shared.capacity {
                return Err(TrySendError::Full(value));
            }
            st.queue.push_back(value);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking while the channel is empty.
        ///
        /// # Errors
        ///
        /// [`RecvError`] once the channel is empty and all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).unwrap();
            }
        }

        /// Receives with a deadline of `timeout` from now.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] on expiry,
        /// [`RecvTimeoutError::Disconnected`] when empty with no senders.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = guard;
            }
        }

        /// Receives without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().unwrap();
            if let Some(v) = st.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                // Wake all blocked receivers so they observe disconnection.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let orphaned = {
                let mut st = self.shared.state.lock().unwrap();
                st.receivers -= 1;
                if st.receivers == 0 {
                    // Nothing can receive these messages anymore; drop them
                    // now (outside the lock) so any resources they hold —
                    // e.g. reply senders — are released promptly.
                    self.shared.not_full.notify_all();
                    std::mem::take(&mut st.queue)
                } else {
                    VecDeque::new()
                }
            };
            drop(orphaned);
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn fifo_roundtrip() {
            let (tx, rx) = bounded(4);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn send_blocks_until_capacity_frees() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || tx.send(2).unwrap());
            std::thread::sleep(Duration::from_millis(10));
            assert_eq!(rx.recv(), Ok(1));
            t.join().unwrap();
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_disconnects_when_senders_gone() {
            let (tx, rx) = bounded::<u32>(4);
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_when_receivers_gone() {
            let (tx, rx) = bounded::<u32>(4);
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
            assert!(matches!(tx.try_send(1), Err(TrySendError::Disconnected(1))));
        }

        #[test]
        fn dropping_last_receiver_drops_queued_messages() {
            static DROPS: AtomicUsize = AtomicUsize::new(0);
            #[derive(Debug)]
            struct Probe;
            impl Drop for Probe {
                fn drop(&mut self) {
                    DROPS.fetch_add(1, Ordering::SeqCst);
                }
            }
            let (tx, rx) = bounded(8);
            tx.send(Probe).unwrap();
            tx.send(Probe).unwrap();
            assert_eq!(DROPS.load(Ordering::SeqCst), 0);
            drop(rx);
            assert_eq!(DROPS.load(Ordering::SeqCst), 2);
        }

        #[test]
        fn blocked_recv_wakes_on_disconnect() {
            let (tx, rx) = bounded::<u32>(1);
            let t = std::thread::spawn(move || rx.recv());
            std::thread::sleep(Duration::from_millis(10));
            drop(tx);
            assert_eq!(t.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn mpmc_many_producers_consumers() {
            let (tx, rx) = bounded::<u64>(16);
            let total = Arc::new(AtomicUsize::new(0));
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    let total = Arc::clone(&total);
                    std::thread::spawn(move || {
                        while rx.recv().is_ok() {
                            total.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                })
                .collect();
            drop(rx);
            let producers: Vec<_> = (0..4)
                .map(|_| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        for i in 0..500 {
                            tx.send(i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            for p in producers {
                p.join().unwrap();
            }
            for c in consumers {
                c.join().unwrap();
            }
            assert_eq!(total.load(Ordering::SeqCst), 2000);
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = bounded::<u32>(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }
    }
}
