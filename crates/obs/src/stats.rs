//! The stats plane: registry snapshots, correct diffs, and dumps.
//!
//! A [`MetricsRegistry`] accumulates three
//! metric shapes; this module turns them into something a human or a bench
//! report can read:
//!
//! - [`snapshot`] captures every counter, gauge, and histogram at an
//!   instant;
//! - [`StatsSnapshot::diff`] subtracts two snapshots *kind-correctly*:
//!   counters are diffed (the delta is an event count over the interval)
//!   while gauges report their latest level — a `set()`-style gauge like
//!   `reclamation_lag` diffed as monotonic would produce nonsense;
//! - [`StatsSnapshot::render_text`] / [`StatsSnapshot::render_json`] emit
//!   the `kvshell stats` dump and the machine-readable form embedded in
//!   bench reports.

use std::collections::BTreeMap;

use rmc_runtime::{Histogram, MetricKind, MetricsRegistry};

/// Summary of one histogram at snapshot time (values in recorded units,
/// nanoseconds at every call site in this workspace).
#[derive(Debug, Clone, PartialEq)]
pub struct HistSummary {
    /// Recorded values.
    pub count: u64,
    /// Mean value.
    pub mean: f64,
    /// 50th percentile (lower bucket bound).
    pub p50: u64,
    /// 90th percentile (lower bucket bound).
    pub p90: u64,
    /// 99th percentile (lower bucket bound).
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

impl HistSummary {
    /// Summarizes a point-in-time histogram copy.
    pub fn of(h: &Histogram) -> Self {
        HistSummary {
            count: h.count(),
            mean: h.mean(),
            p50: h.quantile(0.5),
            p90: h.quantile(0.9),
            p99: h.quantile(0.99),
            max: h.max(),
        }
    }
}

/// A point-in-time capture of a whole registry, kind-separated.
#[derive(Debug, Clone, Default)]
pub struct StatsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Latest-level gauges.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram summaries.
    pub histograms: BTreeMap<String, HistSummary>,
}

/// Captures every metric in `registry` right now.
pub fn snapshot(registry: &MetricsRegistry) -> StatsSnapshot {
    let mut snap = StatsSnapshot::default();
    for (name, (value, kind)) in registry.snapshot_kinds() {
        match kind {
            MetricKind::Counter => {
                snap.counters.insert(name, value);
            }
            MetricKind::Gauge => {
                snap.gauges.insert(name, value);
            }
        }
    }
    for (name, hist) in registry.snapshot_histograms() {
        snap.histograms.insert(name, HistSummary::of(&hist));
    }
    snap
}

impl StatsSnapshot {
    /// What changed between `earlier` and `self`:
    ///
    /// - counters become deltas (`self - earlier`, saturating, so a metric
    ///   born after `earlier` reports its full value);
    /// - gauges keep their *current* level — they are not diffed;
    /// - histograms keep the current summary (log buckets make interval
    ///   quantiles unrecoverable from two summaries, and the record points
    ///   all reset with the process, so cumulative quantiles are what the
    ///   operator wants anyway).
    pub fn diff(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(name, &v)| {
                let before = earlier.counters.get(name).copied().unwrap_or(0);
                (name.clone(), v.saturating_sub(before))
            })
            .collect();
        StatsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }

    /// Drops every metric whose value (or histogram count) is zero —
    /// registries accumulate hundreds of names, most idle in any interval.
    pub fn without_zeros(&self) -> StatsSnapshot {
        StatsSnapshot {
            counters: self
                .counters
                .iter()
                .filter(|(_, &v)| v != 0)
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .filter(|(_, h)| h.count != 0)
                .map(|(k, h)| (k.clone(), h.clone()))
                .collect(),
        }
    }

    /// Human-readable dump (the `kvshell stats` output).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<44} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<44} {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (ns):\n");
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {name:<44} n={} mean={:.0} p50={} p90={} p99={} max={}\n",
                    h.count, h.mean, h.p50, h.p90, h.p99, h.max
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics)\n");
        }
        out
    }

    /// Compact JSON dump (hand-rolled; the workspace builds offline).
    pub fn render_json(&self) -> String {
        fn map_json(map: &BTreeMap<String, u64>) -> String {
            let fields: Vec<String> = map
                .iter()
                .map(|(k, v)| format!("{}:{v}", quote(k)))
                .collect();
            format!("{{{}}}", fields.join(","))
        }
        let hists: Vec<String> = self
            .histograms
            .iter()
            .map(|(k, h)| {
                format!(
                    "{}:{{\"count\":{},\"mean\":{:.1},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
                    quote(k),
                    h.count,
                    h.mean,
                    h.p50,
                    h.p90,
                    h.p99,
                    h.max
                )
            })
            .collect();
        format!(
            "{{\"counters\":{},\"gauges\":{},\"histograms\":{{{}}}}}",
            map_json(&self.counters),
            map_json(&self.gauges),
            hists.join(",")
        )
    }
}

fn quote(s: &str) -> String {
    // Metric names are dotted identifiers; escape the two JSON-special
    // characters anyway so a hostile name can't break the document.
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg_with_activity() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("read.0.lockfree").add(100);
        reg.gauge("read.0.value_views_live").set(3);
        reg.histogram("stage.read_service_ns").record(800);
        reg
    }

    #[test]
    fn diff_subtracts_counters_but_not_gauges() {
        let reg = reg_with_activity();
        let before = snapshot(&reg);
        reg.counter("read.0.lockfree").add(50);
        reg.gauge("read.0.value_views_live").set(1);
        reg.histogram("stage.read_service_ns").record(1_600);
        let after = snapshot(&reg);
        let delta = after.diff(&before);
        assert_eq!(delta.counters["read.0.lockfree"], 50);
        assert_eq!(
            delta.gauges["read.0.value_views_live"], 1,
            "gauge reports its level, not a delta"
        );
        assert_eq!(delta.histograms["stage.read_service_ns"].count, 2);
    }

    #[test]
    fn diff_handles_metrics_born_after_the_baseline() {
        let reg = reg_with_activity();
        let before = snapshot(&reg);
        reg.counter("cleaner.0.passes").add(7);
        let delta = snapshot(&reg).diff(&before);
        assert_eq!(delta.counters["cleaner.0.passes"], 7);
    }

    #[test]
    fn without_zeros_prunes_idle_metrics() {
        let reg = reg_with_activity();
        reg.counter("client.0.giveups"); // registered, never incremented
        reg.histogram("stage.queue_wait_ns"); // registered, never recorded
        let snap = snapshot(&reg).without_zeros();
        assert!(!snap.counters.contains_key("client.0.giveups"));
        assert!(!snap.histograms.contains_key("stage.queue_wait_ns"));
        assert!(snap.counters.contains_key("read.0.lockfree"));
    }

    #[test]
    fn renders_text_and_valid_json() {
        let snap = snapshot(&reg_with_activity());
        let text = snap.render_text();
        assert!(text.contains("read.0.lockfree"));
        assert!(text.contains("gauges:"));
        assert!(text.contains("p99="));
        let json = snap.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"read.0.lockfree\":100"));
        assert!(json.contains("\"value_views_live\"") || json.contains("read.0.value_views_live"));
        assert!(json.contains("\"p99\":"));
    }
}
