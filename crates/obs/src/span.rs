//! RPC span propagation over the existing RIFL ids.
//!
//! Every client request already carries an exactly-once RIFL id
//! `(client, seq)`; that pair *is* the trace id — no new wire fields. Both
//! engines stamp a [`SpanEvent`] at their single send chokepoint and their
//! single deliver chokepoint (`proto_sim::dispatch`/`deliver` under the
//! simulator, `Fabric::post`/`node_loop` under threads), so one client
//! operation yields a cross-node timeline: client send → master deliver →
//! replicate send → backup deliver → ack → reply. Under the simulator the
//! stamps are virtual time, making timelines bit-identical across replays
//! of the same seed.
//!
//! The recorder is owned by the engine instance (a `SimNet` or a
//! `MiniCluster` fabric), not global state, so concurrent tests never see
//! each other's spans.

use std::sync::{Arc, Mutex};

/// A trace id: the RIFL `(client node id, sequence number)` pair.
pub type TraceId = (u64, u64);

/// Which side of the `Runtime` boundary stamped the event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// The message left its sender (`Runtime::send`).
    Send,
    /// The message reached its destination's handler.
    Deliver,
}

/// One stamped point in a request's cross-node timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// The RIFL id of the client operation this message serves.
    pub trace: TraceId,
    /// Send or deliver side.
    pub kind: SpanKind,
    /// Message-variant label (`"request"`, `"replicate"`, …).
    pub label: &'static str,
    /// Sending node.
    pub from: usize,
    /// Receiving node.
    pub to: usize,
    /// Timestamp: virtual ns under the simulator, wall ns under threads.
    pub at_ns: u64,
}

#[derive(Debug, Default)]
struct SpanInner {
    events: Vec<SpanEvent>,
    dropped: u64,
}

/// Collects span events for one engine instance. Cheap to clone (shared).
///
/// Capacity-bounded: once full, further events are counted as dropped
/// rather than growing without limit under long benches.
#[derive(Debug, Clone)]
pub struct SpanRecorder {
    inner: Arc<Mutex<SpanInner>>,
    capacity: usize,
}

impl Default for SpanRecorder {
    fn default() -> Self {
        Self::new(65_536)
    }
}

impl SpanRecorder {
    /// A recorder keeping at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        SpanRecorder {
            inner: Arc::new(Mutex::new(SpanInner::default())),
            capacity,
        }
    }

    /// A recorder that keeps nothing — for runs that don't want span cost.
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// Stamps one event (no-op once the capacity is reached or
    /// instrumentation is globally disabled).
    pub fn record(
        &self,
        trace: TraceId,
        kind: SpanKind,
        label: &'static str,
        from: usize,
        to: usize,
        at_ns: u64,
    ) {
        if self.capacity == 0 || !crate::enabled() {
            return;
        }
        let mut inner = self.inner.lock().expect("span recorder poisoned");
        if inner.events.len() >= self.capacity {
            inner.dropped += 1;
            return;
        }
        inner.events.push(SpanEvent {
            trace,
            kind,
            label,
            from,
            to,
            at_ns,
        });
    }

    /// Every recorded event in arrival order.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.inner
            .lock()
            .expect("span recorder poisoned")
            .events
            .clone()
    }

    /// Events dropped after the capacity filled.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("span recorder poisoned").dropped
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("span recorder poisoned")
            .events
            .len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The timeline of one trace id, ordered by timestamp (stable on ties,
    /// so a send at the same stamp as its deliver keeps arrival order).
    pub fn timeline(&self, trace: TraceId) -> Vec<SpanEvent> {
        let mut events: Vec<SpanEvent> = self
            .inner
            .lock()
            .expect("span recorder poisoned")
            .events
            .iter()
            .filter(|e| e.trace == trace)
            .cloned()
            .collect();
        events.sort_by_key(|e| e.at_ns);
        events
    }

    /// The distinct trace ids seen, in first-arrival order.
    pub fn traces(&self) -> Vec<TraceId> {
        let inner = self.inner.lock().expect("span recorder poisoned");
        let mut seen = Vec::new();
        for e in &inner.events {
            if !seen.contains(&e.trace) {
                seen.push(e.trace);
            }
        }
        seen
    }

    /// Renders one trace's timeline as text: per-hop stage lines with
    /// absolute and delta timestamps.
    pub fn render_timeline(&self, trace: TraceId) -> String {
        let events = self.timeline(trace);
        let mut out = format!("trace ({}, {})\n", trace.0, trace.1);
        let mut prev = events.first().map_or(0, |e| e.at_ns);
        for e in &events {
            let side = match e.kind {
                SpanKind::Send => "send   ",
                SpanKind::Deliver => "deliver",
            };
            out.push_str(&format!(
                "  {:>10.1} us (+{:>8.3} us) {side} {:<12} {} -> {}\n",
                e.at_ns as f64 / 1_000.0,
                (e.at_ns - prev) as f64 / 1_000.0,
                e.label,
                e.from,
                e.to,
            ));
            prev = e.at_ns;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_filters_and_orders_one_trace() {
        let rec = SpanRecorder::new(16);
        rec.record((9, 1), SpanKind::Send, "request", 9, 1, 100);
        rec.record((9, 2), SpanKind::Send, "request", 9, 1, 150);
        rec.record((9, 1), SpanKind::Deliver, "request", 9, 1, 300);
        rec.record((9, 1), SpanKind::Send, "replicate", 1, 2, 350);
        let tl = rec.timeline((9, 1));
        assert_eq!(tl.len(), 3);
        assert!(tl.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert!(tl.iter().all(|e| e.trace == (9, 1)));
        assert_eq!(rec.traces(), vec![(9, 1), (9, 2)]);
        let dump = rec.render_timeline((9, 1));
        assert!(dump.contains("replicate"), "{dump}");
    }

    #[test]
    fn capacity_bounds_and_counts_drops() {
        let rec = SpanRecorder::new(2);
        for i in 0..5 {
            rec.record((1, i), SpanKind::Send, "request", 0, 1, i);
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 3);
        assert!(SpanRecorder::disabled().events().is_empty());
    }

    #[test]
    fn clones_share_the_event_store() {
        let rec = SpanRecorder::default();
        let clone = rec.clone();
        clone.record((1, 1), SpanKind::Send, "request", 0, 1, 10);
        assert_eq!(rec.len(), 1);
        assert!(!rec.is_empty());
    }
}
