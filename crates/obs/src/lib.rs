//! # rmc-obs — always-on observability for the RAMCloud reproduction
//!
//! The source paper is a *characterization* study: its value is attributing
//! where time and energy go. This crate is the instrumentation layer that
//! makes such attribution possible on a live system without distorting it:
//!
//! - [`timetrace`] — RAMCloud's TimeTrace: per-thread fixed-capacity ring
//!   buffers of nanosecond-stamped events, recorded lock-free, frozen on
//!   demand and merged across threads into one chronological dump. Cheap
//!   enough to leave on in production builds.
//! - [`span`] — RPC span propagation: the existing RIFL `(client, seq)` ids
//!   double as trace ids, and both engines stamp send/deliver events at the
//!   `Runtime` boundary, so one client operation yields a cross-node
//!   timeline (client → master dispatch → store append → backup ack →
//!   reply). Deterministic under the simulator, wall-clock under threads.
//! - [`stats`] — the stats plane: snapshot a
//!   [`rmc_runtime::MetricsRegistry`], diff two snapshots with counters and
//!   gauges treated correctly (counters diff, gauges report their level),
//!   and render text or JSON for the `kvshell` `stats` command and bench
//!   reports.
//! - [`Sampler`] — 1-in-N gate for hot-path timing so sub-microsecond
//!   operations pay a branch, not two clock reads, on the common path.
//!
//! One global kill switch ([`set_enabled`]) turns every record point into a
//! single relaxed load — that disabled configuration is the baseline the
//! `obs_overhead` bench compares against to prove the ≤ 3 % overhead budget.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod span;
pub mod stats;
pub mod timetrace;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Global instrumentation switch, on by default ("always-on").
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Is instrumentation currently enabled? A single relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns all instrumentation on or off process-wide.
///
/// Disabling reduces every TimeTrace record and every [`Sampler::tick`] to
/// one relaxed load + branch; the `obs_overhead` ablation measures exactly
/// this configuration as its baseline.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// A 1-in-N sampling gate for hot-path timing.
///
/// Timing a 0.5 µs read with two `Instant::now()` calls costs ~10 % — far
/// over the 3 % budget. Sampling every Nth operation keeps the histogram
/// statistically faithful while the common path pays one relaxed
/// `fetch_add` and a branch.
///
/// # Examples
///
/// ```
/// use rmc_obs::Sampler;
///
/// let sampler = Sampler::new(32);
/// let hits = (0..96).filter(|_| sampler.tick()).count();
/// assert_eq!(hits, 3);
/// ```
#[derive(Debug)]
pub struct Sampler {
    /// `period - 1`; the period is a power of two so the gate is a mask,
    /// not a hardware divide (a 64-bit `div` alone would cost ~2 % of a
    /// sub-microsecond read).
    mask: u64,
    n: AtomicU64,
}

impl Sampler {
    /// A sampler firing on every `every`-th tick (the first tick fires).
    /// `every` is rounded up to the next power of two — see
    /// [`Sampler::period`] for the effective value.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn new(every: u64) -> Self {
        assert!(every > 0, "sampling period must be positive");
        Sampler {
            mask: every.next_power_of_two() - 1,
            n: AtomicU64::new(0),
        }
    }

    /// Advances the gate; `true` when this tick should be measured.
    /// Always `false` while instrumentation is disabled.
    ///
    /// The counter bump is a plain load + store rather than a
    /// lock-prefixed `fetch_add`: concurrent ticks may occasionally lose
    /// an increment (shifting *which* op gets sampled, never corrupting
    /// anything), and in exchange the per-op cost on the sub-microsecond
    /// read path drops well below the overhead budget.
    #[inline]
    pub fn tick(&self) -> bool {
        if !enabled() {
            return false;
        }
        let n = self.n.load(Ordering::Relaxed);
        self.n.store(n.wrapping_add(1), Ordering::Relaxed);
        n & self.mask == 0
    }

    /// The effective sampling period (for scaling sampled counts back up).
    pub fn period(&self) -> u64 {
        self.mask + 1
    }
}
