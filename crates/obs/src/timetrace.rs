//! TimeTrace: per-thread ring buffers of nanosecond-stamped events.
//!
//! A faithful port of RAMCloud's debugging workhorse. Each thread records
//! into its own fixed-capacity ring buffer — a record is a few relaxed
//! atomic stores plus one clock read, with no locks and no allocation —
//! so record points can stay compiled in on the hottest paths. When
//! something interesting happens, [`freeze`] stops the world's recording,
//! and [`merge`] collects every thread's surviving events into one
//! chronological timeline (old events are overwritten once a buffer wraps,
//! so what survives is the most recent history, which is what you want
//! when you freeze *after* the anomaly).
//!
//! Format strings are interned once per call site: the [`tt_record!`](crate::tt_record)
//! macro caches the intern id in a per-call-site atomic, so steady-state
//! records never touch the intern table's lock.
//!
//! Timestamps come from a process-wide monotonic origin ([`now_ns`]); the
//! deterministic simulator records with explicit virtual-time stamps via
//! [`record_at`] instead.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Events each thread-local ring buffer can hold before wrapping.
pub const DEFAULT_CAPACITY: usize = 4096;

/// Sentinel meaning "slot never written".
const EMPTY_FMT: u32 = u32::MAX;

static FROZEN: AtomicBool = AtomicBool::new(false);

fn formats() -> &'static Mutex<Vec<&'static str>> {
    static FORMATS: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    FORMATS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Every registered thread's buffer, tagged with the thread's name.
type ThreadBuffers = Vec<(String, Arc<TraceBuffer>)>;

fn threads() -> &'static Mutex<ThreadBuffers> {
    static THREADS: OnceLock<Mutex<ThreadBuffers>> = OnceLock::new();
    THREADS.get_or_init(|| Mutex::new(Vec::new()))
}

fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide trace origin (first use).
pub fn now_ns() -> u64 {
    origin().elapsed().as_nanos() as u64
}

/// Interns a format string, returning its id. Takes a lock — call once
/// per call site and cache the id (the [`tt_record!`](crate::tt_record) macro does this).
pub fn intern(fmt: &'static str) -> u32 {
    let mut table = formats().lock().expect("format table poisoned");
    if let Some(i) = table.iter().position(|f| *f == fmt) {
        return i as u32;
    }
    table.push(fmt);
    (table.len() - 1) as u32
}

fn resolve(id: u32) -> &'static str {
    let table = formats().lock().expect("format table poisoned");
    table.get(id as usize).copied().unwrap_or("<unknown>")
}

/// One thread's fixed-capacity event ring.
///
/// Normally obtained implicitly through [`record`]/[`tt_record!`](crate::tt_record) (one per
/// thread, registered globally); constructible directly for tests.
pub struct TraceBuffer {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

struct Slot {
    ns: AtomicU64,
    fmt: AtomicU32,
    a0: AtomicU64,
    a1: AtomicU64,
}

impl std::fmt::Debug for TraceBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuffer")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl TraceBuffer {
    /// A fresh ring holding `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace buffer needs capacity");
        TraceBuffer {
            slots: (0..capacity)
                .map(|_| Slot {
                    ns: AtomicU64::new(0),
                    fmt: AtomicU32::new(EMPTY_FMT),
                    a0: AtomicU64::new(0),
                    a1: AtomicU64::new(0),
                })
                .collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Records one event (lock-free; overwrites the oldest once full).
    pub fn push(&self, ns: u64, fmt_id: u32, a0: u64, a1: u64) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        slot.ns.store(ns, Ordering::Relaxed);
        slot.a0.store(a0, Ordering::Relaxed);
        slot.a1.store(a1, Ordering::Relaxed);
        // fmt is stored last with Release as the slot's "valid" marker.
        slot.fmt.store(fmt_id, Ordering::Release);
    }

    /// The surviving events, oldest first (at most `capacity`, the most
    /// recent ones once the ring has wrapped).
    pub fn events(&self) -> Vec<(u64, u32, u64, u64)> {
        let head = self.head.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        (start..head)
            .filter_map(|seq| {
                let slot = &self.slots[(seq % cap) as usize];
                let fmt = slot.fmt.load(Ordering::Acquire);
                (fmt != EMPTY_FMT).then(|| {
                    (
                        slot.ns.load(Ordering::Relaxed),
                        fmt,
                        slot.a0.load(Ordering::Relaxed),
                        slot.a1.load(Ordering::Relaxed),
                    )
                })
            })
            .collect()
    }

    fn reset(&self) {
        self.head.store(0, Ordering::Relaxed);
        for slot in &*self.slots {
            slot.fmt.store(EMPTY_FMT, Ordering::Relaxed);
        }
    }
}

thread_local! {
    static LOCAL: Arc<TraceBuffer> = {
        let buf = Arc::new(TraceBuffer::new(DEFAULT_CAPACITY));
        let name = std::thread::current()
            .name()
            .unwrap_or("unnamed")
            .to_owned();
        threads()
            .lock()
            .expect("thread table poisoned")
            .push((name, buf.clone()));
        buf
    };
}

/// Records one event on the calling thread's buffer with a wall timestamp.
/// No-op while instrumentation is disabled or the trace is frozen.
#[inline]
pub fn record(fmt_id: u32, a0: u64, a1: u64) {
    if !crate::enabled() || FROZEN.load(Ordering::Relaxed) {
        return;
    }
    let ns = now_ns();
    LOCAL.with(|buf| buf.push(ns, fmt_id, a0, a1));
}

/// Records one event with an explicit timestamp — the deterministic
/// simulator stamps virtual nanoseconds so replays trace identically.
/// No-op while instrumentation is disabled or the trace is frozen.
#[inline]
pub fn record_at(ns: u64, fmt_id: u32, a0: u64, a1: u64) {
    if !crate::enabled() || FROZEN.load(Ordering::Relaxed) {
        return;
    }
    LOCAL.with(|buf| buf.push(ns, fmt_id, a0, a1));
}

/// Records through a just-in-time intern — takes the intern-table lock, so
/// only for cold paths; hot call sites use [`tt_record!`](crate::tt_record).
pub fn record_str(fmt: &'static str, a0: u64, a1: u64) {
    if !crate::enabled() || FROZEN.load(Ordering::Relaxed) {
        return;
    }
    record(intern(fmt), a0, a1);
}

/// Records an event on the calling thread's TimeTrace ring, interning the
/// format string once per call site.
///
/// ```
/// rmc_obs::tt_record!("dispatch: shard {} depth {}", 3, 17);
/// ```
#[macro_export]
macro_rules! tt_record {
    ($fmt:literal) => {
        $crate::tt_record!($fmt, 0, 0)
    };
    ($fmt:literal, $a0:expr) => {
        $crate::tt_record!($fmt, $a0, 0)
    };
    ($fmt:literal, $a0:expr, $a1:expr) => {{
        static CACHED: ::std::sync::atomic::AtomicU32 =
            ::std::sync::atomic::AtomicU32::new(u32::MAX);
        let mut id = CACHED.load(::std::sync::atomic::Ordering::Relaxed);
        if id == u32::MAX {
            id = $crate::timetrace::intern($fmt);
            CACHED.store(id, ::std::sync::atomic::Ordering::Relaxed);
        }
        $crate::timetrace::record(id, $a0 as u64, $a1 as u64);
    }};
}

/// Stops all recording so buffers can be read without racing writers.
pub fn freeze() {
    FROZEN.store(true, Ordering::SeqCst);
}

/// Resumes recording after a [`freeze`].
pub fn thaw() {
    FROZEN.store(false, Ordering::SeqCst);
}

/// Empties every registered thread buffer (head reset, slots invalidated).
pub fn clear() {
    for (_, buf) in threads().lock().expect("thread table poisoned").iter() {
        buf.reset();
    }
}

/// One merged TimeTrace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the trace origin (virtual ns under the sim).
    pub ns: u64,
    /// Name of the recording thread.
    pub thread: String,
    /// The interned format string.
    pub fmt: &'static str,
    /// First event argument.
    pub a0: u64,
    /// Second event argument.
    pub a1: u64,
}

/// Merges every registered thread's surviving events, oldest first.
///
/// Call [`freeze`] first; merging a live trace sees whatever half-written
/// history the racing writers leave behind.
pub fn merge() -> Vec<TraceEvent> {
    let buffers: Vec<(String, Arc<TraceBuffer>)> = threads()
        .lock()
        .expect("thread table poisoned")
        .iter()
        .cloned()
        .collect();
    merge_buffers(&buffers)
}

/// Merge for an explicit buffer set — the testable core of [`merge`].
pub fn merge_buffers(buffers: &[(String, Arc<TraceBuffer>)]) -> Vec<TraceEvent> {
    let mut events: Vec<TraceEvent> = Vec::new();
    for (name, buf) in buffers {
        for (ns, fmt_id, a0, a1) in buf.events() {
            events.push(TraceEvent {
                ns,
                thread: name.clone(),
                fmt: resolve(fmt_id),
                a0,
                a1,
            });
        }
    }
    events.sort_by(|a, b| a.ns.cmp(&b.ns).then_with(|| a.thread.cmp(&b.thread)));
    events
}

/// Renders merged events the way RAMCloud prints a TimeTrace: absolute
/// time, delta to the previous event, thread, and the formatted message
/// (`{}` placeholders substituted left to right).
pub fn render(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    let mut prev = events.first().map_or(0, |e| e.ns);
    for e in events {
        let mut msg = e.fmt.to_owned();
        for arg in [e.a0, e.a1] {
            if let Some(pos) = msg.find("{}") {
                msg.replace_range(pos..pos + 2, &arg.to_string());
            }
        }
        out.push_str(&format!(
            "{:>12.1} us (+{:>9.3} us) [{}] {}\n",
            e.ns as f64 / 1_000.0,
            (e.ns - prev) as f64 / 1_000.0,
            e.thread,
            msg
        ));
        prev = e.ns;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // TimeTrace state is process-global; serialize the tests that mutate it.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn wraparound_keeps_only_the_most_recent_events() {
        let buf = TraceBuffer::new(4);
        let id = intern("event {}");
        for i in 0..10u64 {
            buf.push(i * 100, id, i, 0);
        }
        let events = buf.events();
        assert_eq!(events.len(), 4, "ring holds capacity events");
        let seen: Vec<u64> = events.iter().map(|e| e.2).collect();
        assert_eq!(seen, vec![6, 7, 8, 9], "oldest events were overwritten");
        // And they come out oldest-first.
        let stamps: Vec<u64> = events.iter().map(|e| e.0).collect();
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn merge_orders_across_threads_by_timestamp() {
        let a = Arc::new(TraceBuffer::new(8));
        let b = Arc::new(TraceBuffer::new(8));
        let id = intern("op {} on {}");
        // Interleaved timestamps across two "threads".
        a.push(100, id, 1, 0);
        b.push(50, id, 2, 0);
        a.push(300, id, 3, 0);
        b.push(200, id, 4, 0);
        let merged = merge_buffers(&[("a".into(), a), ("b".into(), b)]);
        let order: Vec<(u64, u64)> = merged.iter().map(|e| (e.ns, e.a0)).collect();
        assert_eq!(order, vec![(50, 2), (100, 1), (200, 4), (300, 3)]);
        assert_eq!(merged[0].thread, "b");
        assert_eq!(merged[0].fmt, "op {} on {}");
    }

    #[test]
    fn macro_records_and_render_substitutes_args() {
        let _gate = lock();
        clear();
        thaw();
        crate::set_enabled(true);
        tt_record!("read: shard {} key {}", 3, 42);
        tt_record!("reply sent");
        freeze();
        let events = merge();
        let dump = render(&events);
        assert!(
            dump.contains("read: shard 3 key 42"),
            "substituted: {dump:?}"
        );
        assert!(dump.contains("reply sent"));
        thaw();
        clear();
    }

    #[test]
    fn disabled_and_frozen_record_nothing() {
        let _gate = lock();
        clear();
        thaw();
        crate::set_enabled(false);
        tt_record!("should not appear");
        crate::set_enabled(true);
        freeze();
        tt_record!("frozen out");
        let before = merge().len();
        thaw();
        tt_record!("after thaw", 7);
        freeze();
        let events = merge();
        assert_eq!(events.len(), before + 1);
        assert!(events.iter().any(|e| e.fmt == "after thaw"));
        assert!(events.iter().all(|e| e.fmt != "should not appear"));
        assert!(events.iter().all(|e| e.fmt != "frozen out"));
        thaw();
        clear();
    }

    #[test]
    fn record_at_uses_the_given_virtual_stamp() {
        let _gate = lock();
        clear();
        thaw();
        crate::set_enabled(true);
        let id = intern("sim event");
        record_at(123_456, id, 0, 0);
        freeze();
        let events = merge();
        assert!(events
            .iter()
            .any(|e| e.ns == 123_456 && e.fmt == "sim event"));
        thaw();
        clear();
    }

    #[test]
    fn interning_is_stable_per_string() {
        assert_eq!(intern("alpha-fmt"), intern("alpha-fmt"));
        assert_ne!(intern("alpha-fmt"), intern("beta-fmt"));
        assert_eq!(resolve(intern("alpha-fmt")), "alpha-fmt");
    }
}
