//! Property tests for the crash-recovery rules: whatever a dying machine
//! or a lying disk does to a segment file, [`FileStorage::open`] must
//! (a) never panic, (b) recover a frame-aligned prefix of what was
//! appended, and (c) leave the file repaired so the *next* open is clean.

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;
use rmc_diskstore::{BackupStorage, DiskMetrics, FileStorage, FsyncPolicy};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rmc-diskstore-prop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn open(dir: &PathBuf) -> FileStorage {
    FileStorage::open(dir, FsyncPolicy::PerWrite, 0, DiskMetrics::detached()).unwrap()
}

/// The frame-boundary prefixes an append history can legally recover to.
fn legal_prefixes(chunks: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let mut prefixes = vec![Vec::new()];
    let mut acc = Vec::new();
    for chunk in chunks {
        acc.extend_from_slice(chunk);
        prefixes.push(acc.clone());
    }
    prefixes
}

/// Recovered state for slot `(0, 1)`, or empty if the slot vanished.
fn recovered(store: &FileStorage) -> Vec<u8> {
    store
        .segments_of(0)
        .into_iter()
        .find(|(seg, _)| *seg == 1)
        .map(|(_, bytes)| bytes)
        .unwrap_or_default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncating a segment file at ANY byte offset — the shape of every
    /// torn write — recovers a frame-aligned prefix, never panics, and
    /// repairs the file so a second open sees no damage.
    #[test]
    fn truncation_at_any_offset_recovers_a_prefix(
        chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..128), 1..6),
        cut in 0.0f64..1.0,
    ) {
        let dir = tmpdir("trunc");
        {
            let mut s = open(&dir);
            for chunk in &chunks {
                s.append(0, 1, chunk).unwrap();
            }
        }
        let path = dir.join("m0_s1.seg");
        let full = fs::read(&path).unwrap();
        let keep = ((full.len() as f64) * cut) as u64;
        let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(keep).unwrap();
        drop(f);

        let s = open(&dir);
        let got = recovered(&s);
        prop_assert!(
            legal_prefixes(&chunks).contains(&got),
            "recovered {} bytes is not a frame-aligned prefix", got.len()
        );
        // A mid-frame cut is a torn tail; a cut exactly on a frame
        // boundary is indistinguishable from a clean shutdown.
        prop_assert!(s.recovery.torn_tails <= 1);
        prop_assert_eq!(s.recovery.quarantined, 0);
        drop(s);

        // Repair is durable: the second open finds nothing to fix and
        // serves the same bytes.
        let s2 = open(&dir);
        prop_assert_eq!(s2.recovery.torn_tails, 0);
        prop_assert_eq!(s2.recovery.quarantined, 0);
        prop_assert_eq!(recovered(&s2), got);
        drop(s2);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Flipping ANY single bit of a segment file — a silently lying disk —
    /// is always detected (CRC32 catches every 1-bit error), recovers a
    /// strict frame-aligned prefix, and never panics.
    #[test]
    fn bit_flip_at_any_offset_never_panics(
        chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..128), 1..6),
        pos in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let dir = tmpdir("flip");
        {
            let mut s = open(&dir);
            for chunk in &chunks {
                s.append(0, 1, chunk).unwrap();
            }
        }
        let path = dir.join("m0_s1.seg");
        let mut bytes = fs::read(&path).unwrap();
        let idx = (((bytes.len() - 1) as f64) * pos) as usize;
        bytes[idx] ^= 1 << bit;
        fs::write(&path, &bytes).unwrap();

        let s = open(&dir);
        let got = recovered(&s);
        let prefixes = legal_prefixes(&chunks);
        prop_assert!(
            prefixes.contains(&got),
            "recovered {} bytes is not a frame-aligned prefix", got.len()
        );
        // The flip lands inside some frame, so the full payload can never
        // survive, and the damage is always *noticed* — as a CRC/format
        // corruption (quarantine) or as a length-field lie that makes the
        // file look torn (truncation). Silence would mean served garbage.
        prop_assert_ne!(&got, prefixes.last().unwrap());
        prop_assert!(
            s.recovery.quarantined + s.recovery.torn_tails >= 1,
            "flip at byte {idx} bit {bit} went unnoticed"
        );
        drop(s);

        // And the repair converges: open #2 is clean and identical.
        let s2 = open(&dir);
        prop_assert_eq!(s2.recovery.torn_tails, 0);
        prop_assert_eq!(s2.recovery.quarantined, 0);
        prop_assert_eq!(recovered(&s2), got);
        drop(s2);
        let _ = fs::remove_dir_all(&dir);
    }
}
