//! The [`BackupStorage`] boundary: what the protocol's backup role stages
//! replicas behind, plus the fsync policy axis, the disk-fault hook, and
//! the `disk.*` metric family shared by every storage engine.

use std::collections::BTreeMap;
use std::time::Duration;

use rmc_runtime::{CounterHandle, MetricsFamily};

/// An error from the storage engine. The contract at the protocol layer:
/// an append that returns `Err` was **not** made durable, so the backup
/// must withhold its `ReplicateAck` — the master's retry machinery redrives
/// the write, and durability is never overstated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The underlying I/O failed (write error, fsync EIO, ...).
    Io(String),
    /// Stored bytes failed validation (checksum mismatch, bad framing).
    Corrupt(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(why) => write!(f, "storage i/o error: {why}"),
            StorageError::Corrupt(why) => write!(f, "storage corruption: {why}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// When staged bytes are forced to the platter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append, before the ack: an acked write is on
    /// disk, full stop. The paper's durability-first configuration.
    PerWrite,
    /// Appends accumulate in the OS page cache and one `fsync` covers the
    /// whole dirty queue once `bytes` have accumulated or `interval` has
    /// passed since the last sync — io-queue-depth batching, the
    /// RAMCloud-style buffered-logging compromise.
    Batched {
        /// Dirty-byte threshold that triggers a sync.
        bytes: usize,
        /// Maximum age of unsynced bytes.
        interval: Duration,
    },
    /// Never fsync; the OS flushes on close. Fastest, weakest.
    Off,
}

impl FsyncPolicy {
    /// Parses the CLI surface: `per_write`, `off`, `batched` (defaults:
    /// 256 KiB / 50 ms), or `batched:BYTES,MILLIS`.
    pub fn parse(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "per_write" => Ok(FsyncPolicy::PerWrite),
            "off" => Ok(FsyncPolicy::Off),
            "batched" => Ok(FsyncPolicy::Batched {
                bytes: 256 << 10,
                interval: Duration::from_millis(50),
            }),
            other => {
                let spec = other
                    .strip_prefix("batched:")
                    .ok_or_else(|| format!("unknown fsync policy {other:?}"))?;
                let (bytes, millis) = spec
                    .split_once(',')
                    .ok_or_else(|| format!("batched spec {spec:?}: want BYTES,MILLIS"))?;
                let bytes: usize = bytes
                    .trim()
                    .parse()
                    .map_err(|e| format!("batched bytes: {e}"))?;
                let millis: u64 = millis
                    .trim()
                    .parse()
                    .map_err(|e| format!("batched millis: {e}"))?;
                Ok(FsyncPolicy::Batched {
                    bytes,
                    interval: Duration::from_millis(millis),
                })
            }
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::PerWrite => write!(f, "per_write"),
            FsyncPolicy::Batched { bytes, interval } => {
                write!(f, "batched:{},{}", bytes, interval.as_millis())
            }
            FsyncPolicy::Off => write!(f, "off"),
        }
    }
}

/// The `disk.*` metric family every storage engine (and the sim's
/// [`DiskModel`](../../disk) twin) reports into — one health shape across
/// engines, per the stats plane's convention.
#[derive(Debug, Clone)]
pub struct DiskMetrics {
    /// Bytes written (frame bytes, including headers).
    pub write_bytes: CounterHandle,
    /// Bytes read back (recovery scans).
    pub read_bytes: CounterHandle,
    /// Completed fsync calls.
    pub fsyncs: CounterHandle,
    /// Appends that failed (injected or real write errors, short writes).
    pub write_errors: CounterHandle,
    /// Fsyncs that failed (EIO).
    pub fsync_errors: CounterHandle,
    /// Frames rejected by checksum on recovery.
    pub crc_mismatch: CounterHandle,
    /// Files whose suspect remainder was copied to `quarantine/`.
    pub quarantined: CounterHandle,
    /// Torn frame tails truncated away on recovery.
    pub torn_tails: CounterHandle,
    /// Injected stuck-slow I/O stalls served.
    pub stalls: CounterHandle,
    /// Gauge: files with bytes accumulated toward a batched fsync.
    pub queue_depth: CounterHandle,
}

impl DiskMetrics {
    /// Resolves the family's handles under `fam`'s prefix (conventionally
    /// `disk.` or `disk.{node}.`).
    pub fn new(fam: &MetricsFamily) -> DiskMetrics {
        DiskMetrics {
            write_bytes: fam.counter("write_bytes"),
            read_bytes: fam.counter("read_bytes"),
            fsyncs: fam.counter("fsyncs"),
            write_errors: fam.counter("write_errors"),
            fsync_errors: fam.counter("fsync_errors"),
            crc_mismatch: fam.counter("crc_mismatch"),
            quarantined: fam.counter("quarantined"),
            torn_tails: fam.counter("torn_tails"),
            stalls: fam.counter("stalls"),
            queue_depth: fam.gauge("queue_depth"),
        }
    }

    /// Handles not registered anywhere — counts are kept but invisible.
    /// For storage used outside a metrics-bearing harness (unit tests).
    pub fn detached() -> DiskMetrics {
        let reg = rmc_runtime::MetricsRegistry::new();
        DiskMetrics::new(&reg.family_at("disk."))
    }
}

/// What happens to the bytes of one injected-faulty append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendOutcome {
    /// The (possibly mutated) frame is written in full.
    Commit,
    /// Only the first `keep` bytes reach the file, then the write errors —
    /// the torn-write crash signature, delivered while alive.
    Short {
        /// Bytes that reach the file before the failure.
        keep: usize,
    },
    /// Nothing reaches the file; the write errors outright (EIO).
    Error,
}

/// One append's injected fate: an optional stall (stuck-slow I/O) plus the
/// outcome for the bytes. The injector may additionally mutate the encoded
/// frame in place (bit-flip corruption) before it is written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendFault {
    /// Sleep this long before touching the file.
    pub stall: Option<Duration>,
    /// What happens to the bytes.
    pub outcome: AppendOutcome,
}

impl AppendFault {
    /// No fault: commit immediately.
    pub fn clean() -> AppendFault {
        AppendFault {
            stall: None,
            outcome: AppendOutcome::Commit,
        }
    }
}

/// Interposes on [`FileStorage`](crate::FileStorage)'s physical I/O — the
/// disk-fault twin of the message-level `FaultRuntime`. Implemented by
/// `rmc-chaos` with seeded, deterministic draws.
pub trait FaultInjector: std::fmt::Debug + Send {
    /// Judges one append. `frame` is the encoded bytes about to be
    /// written; the injector may flip bits in place.
    fn on_append(&mut self, master: usize, segment: u64, frame: &mut Vec<u8>) -> AppendFault;

    /// Judges one fsync; `false` is an injected EIO.
    fn on_fsync(&mut self) -> bool;
}

/// Where a backup stages replica bytes. The protocol's backup role talks
/// only to this trait; whether the bytes live in a `BTreeMap` or in
/// checksummed files is an engine choice.
pub trait BackupStorage: std::fmt::Debug + Send {
    /// Appends replica bytes for `(master, segment)`. `Err` means the
    /// bytes were **not** made durable and the caller must not ack.
    fn append(&mut self, master: usize, segment: u64, bytes: &[u8]) -> Result<(), StorageError>;

    /// Replaces the staged image for `(master, segment)` with `bytes` if
    /// `bytes` is strictly longer — the reseed rule: segments are
    /// append-only, so a longer image supersedes, and a reordered stale
    /// reseed can never truncate. Fire-and-forget (no ack rides on it).
    fn supersede(&mut self, master: usize, segment: u64, bytes: &[u8]) -> Result<(), StorageError>;

    /// The staged segments of `master`: `(segment, concatenated bytes)`.
    fn segments_of(&self, master: usize) -> Vec<(u64, Vec<u8>)>;

    /// Number of `(master, segment)` slots staged.
    fn segment_count(&self) -> usize;

    /// Total staged payload bytes.
    fn staged_bytes(&self) -> u64;

    /// Forces everything staged so far to be durable (fsync of every
    /// dirty file). A no-op for memory engines.
    fn flush(&mut self) -> Result<(), StorageError>;
}

/// The in-memory engine: exactly the staging the protocol used before the
/// durability layer existed. Used by the deterministic simulation and any
/// harness that does not opt into files.
#[derive(Debug, Default)]
pub struct MemStorage {
    staged: BTreeMap<(usize, u64), Vec<u8>>,
}

impl MemStorage {
    /// An empty store.
    pub fn new() -> MemStorage {
        MemStorage::default()
    }
}

impl BackupStorage for MemStorage {
    fn append(&mut self, master: usize, segment: u64, bytes: &[u8]) -> Result<(), StorageError> {
        self.staged
            .entry((master, segment))
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn supersede(&mut self, master: usize, segment: u64, bytes: &[u8]) -> Result<(), StorageError> {
        let slot = self.staged.entry((master, segment)).or_default();
        if bytes.len() > slot.len() {
            *slot = bytes.to_vec();
        }
        Ok(())
    }

    fn segments_of(&self, master: usize) -> Vec<(u64, Vec<u8>)> {
        self.staged
            .iter()
            .filter(|((m, _), _)| *m == master)
            .map(|((_, seg), bytes)| (*seg, bytes.clone()))
            .collect()
    }

    fn segment_count(&self) -> usize {
        self.staged.len()
    }

    fn staged_bytes(&self) -> u64 {
        self.staged.values().map(|b| b.len() as u64).sum()
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_appends_and_lists() {
        let mut s = MemStorage::new();
        s.append(0, 1, b"aa").unwrap();
        s.append(0, 1, b"bb").unwrap();
        s.append(2, 1, b"cc").unwrap();
        assert_eq!(s.segments_of(0), vec![(1, b"aabb".to_vec())]);
        assert_eq!(s.segments_of(2), vec![(1, b"cc".to_vec())]);
        assert_eq!(s.segment_count(), 2);
        assert_eq!(s.staged_bytes(), 6);
    }

    #[test]
    fn mem_supersede_replaces_only_if_longer() {
        let mut s = MemStorage::new();
        s.append(0, 1, b"abcd").unwrap();
        s.supersede(0, 1, b"xy").unwrap();
        assert_eq!(s.segments_of(0), vec![(1, b"abcd".to_vec())]);
        s.supersede(0, 1, b"longer!").unwrap();
        assert_eq!(s.segments_of(0), vec![(1, b"longer!".to_vec())]);
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("per_write"), Ok(FsyncPolicy::PerWrite));
        assert_eq!(FsyncPolicy::parse("off"), Ok(FsyncPolicy::Off));
        assert_eq!(
            FsyncPolicy::parse("batched:1024,20"),
            Ok(FsyncPolicy::Batched {
                bytes: 1024,
                interval: Duration::from_millis(20)
            })
        );
        assert!(FsyncPolicy::parse("sometimes").is_err());
        // Round-trips through Display.
        for s in ["per_write", "off", "batched:1024,20"] {
            let p = FsyncPolicy::parse(s).unwrap();
            assert_eq!(FsyncPolicy::parse(&p.to_string()).unwrap(), p);
        }
    }
}
