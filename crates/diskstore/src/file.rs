//! [`FileStorage`]: the file-backed engine. One file per
//! `(master, segment)` replica, each a sequence of checksummed
//! [frames](crate::frame); appends go straight to the file under the
//! configured [`FsyncPolicy`], and [`FileStorage::open`] rebuilds the
//! staged map from whatever survived a crash.
//!
//! ## Crash recovery rules
//!
//! Walking a segment file frame by frame, the first undecodable position
//! ends the trusted prefix:
//!
//! - **Torn tail** (file ends mid-frame): the signature of dying between
//!   `write` and completion. The tail is truncated away; since the
//!   interrupted append was never acked, nothing durable is lost.
//! - **Corruption** (complete frame, bad magic / impossible length / CRC
//!   mismatch): the disk lied. The whole file is copied into
//!   `quarantine/` for forensics, then truncated to the trusted prefix.
//!   Nothing past the first corrupt frame is believed — a corrupted length
//!   field makes every later frame boundary untrustworthy.
//!
//! Either way recovery loads the longest valid prefix and **never
//! panics**; the consequences are counted in the `disk.*` family
//! ([`DiskMetrics`]).
//!
//! Served reads (`segments_of`, the recovery `FetchSegments` path) come
//! from an in-memory mirror of the staged payloads, maintained on append
//! and rebuilt once at open — the RAMCloud discipline of serving recovery
//! from buffered copies while the disk takes writes.

use std::collections::{BTreeMap, BTreeSet};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::frame::{decode_frame, encode_frame, FrameError};
use crate::storage::{
    AppendOutcome, BackupStorage, DiskMetrics, FaultInjector, FsyncPolicy, StorageError,
};

/// File name for the replica of `(master, segment)`.
fn seg_name(master: usize, segment: u64) -> String {
    format!("m{master}_s{segment}.seg")
}

/// Inverse of [`seg_name`]; `None` for foreign files.
fn parse_seg_name(name: &str) -> Option<(usize, u64)> {
    let rest = name.strip_prefix('m')?.strip_suffix(".seg")?;
    let (master, segment) = rest.split_once("_s")?;
    Some((master.parse().ok()?, segment.parse().ok()?))
}

/// Reads the node's incarnation epoch from `dir/epoch`, bumps it, persists
/// the new value durably, and returns it. A missing file is the first boot
/// (epoch 0); every later boot returns a strictly larger epoch, which is
/// what lets the coordinator's restart detection recognize a returning
/// server and recover its previous incarnation.
pub fn bump_epoch(dir: &Path) -> Result<u64, StorageError> {
    fs::create_dir_all(dir).map_err(|e| StorageError::Io(format!("create {dir:?}: {e}")))?;
    let path = dir.join("epoch");
    let epoch = match fs::read_to_string(&path) {
        Ok(s) => s
            .trim()
            .parse::<u64>()
            .map_err(|e| StorageError::Corrupt(format!("epoch file {path:?}: {e}")))?
            .wrapping_add(1),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => 0,
        Err(e) => return Err(StorageError::Io(format!("read {path:?}: {e}"))),
    };
    let mut f = File::create(&path).map_err(|e| StorageError::Io(format!("{path:?}: {e}")))?;
    f.write_all(epoch.to_string().as_bytes())
        .and_then(|_| f.sync_all())
        .map_err(|e| StorageError::Io(format!("persist {path:?}: {e}")))?;
    Ok(epoch)
}

/// What [`FileStorage::open`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Segment slots recovered.
    pub segments: usize,
    /// Payload bytes recovered.
    pub bytes: u64,
    /// Torn tails truncated.
    pub torn_tails: u64,
    /// Files quarantined for corruption.
    pub quarantined: u64,
}

/// The file-backed [`BackupStorage`] engine.
pub struct FileStorage {
    dir: PathBuf,
    policy: FsyncPolicy,
    epoch: u64,
    injector: Option<Box<dyn FaultInjector>>,
    /// In-memory mirror of each slot's staged payload bytes.
    cache: BTreeMap<(usize, u64), Vec<u8>>,
    /// Open append handles.
    files: BTreeMap<(usize, u64), File>,
    /// Slots with bytes written since the last fsync.
    dirty: BTreeSet<(usize, u64)>,
    dirty_bytes: usize,
    last_sync: Instant,
    metrics: DiskMetrics,
    /// What the constructor recovered.
    pub recovery: RecoveryStats,
}

impl std::fmt::Debug for FileStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileStorage")
            .field("dir", &self.dir)
            .field("policy", &self.policy)
            .field("epoch", &self.epoch)
            .field("segments", &self.cache.len())
            .field("dirty", &self.dirty.len())
            .field("recovery", &self.recovery)
            .finish()
    }
}

impl FileStorage {
    /// Opens (creating if needed) the store under `dir`, recovering every
    /// staged segment per the torn-tail/quarantine rules. `epoch` is
    /// stamped into every frame this incarnation writes.
    pub fn open(
        dir: impl Into<PathBuf>,
        policy: FsyncPolicy,
        epoch: u64,
        metrics: DiskMetrics,
    ) -> Result<FileStorage, StorageError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| StorageError::Io(format!("create {dir:?}: {e}")))?;
        let mut store = FileStorage {
            dir: dir.clone(),
            policy,
            epoch,
            injector: None,
            cache: BTreeMap::new(),
            files: BTreeMap::new(),
            dirty: BTreeSet::new(),
            dirty_bytes: 0,
            last_sync: Instant::now(),
            metrics,
            recovery: RecoveryStats::default(),
        };
        let entries =
            fs::read_dir(&dir).map_err(|e| StorageError::Io(format!("scan {dir:?}: {e}")))?;
        for entry in entries {
            let entry = entry.map_err(|e| StorageError::Io(format!("scan {dir:?}: {e}")))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some((master, segment)) = parse_seg_name(name) else {
                continue;
            };
            store.recover_file(&entry.path(), master, segment)?;
        }
        store.recovery.segments = store.cache.len();
        store.recovery.bytes = store.cache.values().map(|b| b.len() as u64).sum();
        Ok(store)
    }

    /// Installs a disk fault injector (chaos harnesses).
    pub fn with_injector(mut self, injector: Box<dyn FaultInjector>) -> FileStorage {
        self.injector = Some(injector);
        self
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// This incarnation's epoch (stamped into frames).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Loads the longest valid frame prefix of one segment file, applying
    /// the torn-tail truncation and corruption-quarantine rules.
    fn recover_file(
        &mut self,
        path: &Path,
        master: usize,
        segment: u64,
    ) -> Result<(), StorageError> {
        let mut bytes = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| StorageError::Io(format!("read {path:?}: {e}")))?;
        self.metrics.read_bytes.add(bytes.len() as u64);
        let mut payload = Vec::new();
        let mut off = 0;
        let mut verdict: Option<FrameError> = None;
        while off < bytes.len() {
            match decode_frame(&bytes[off..]) {
                Ok((_, frame_payload, total)) => {
                    payload.extend_from_slice(frame_payload);
                    off += total;
                }
                Err(e) => {
                    verdict = Some(e);
                    break;
                }
            }
        }
        match verdict {
            None => {}
            Some(FrameError::TornTail) => {
                self.metrics.torn_tails.incr();
                self.recovery.torn_tails += 1;
                truncate_to(path, off as u64)?;
            }
            Some(FrameError::Corrupt(_)) => {
                self.metrics.crc_mismatch.incr();
                self.metrics.quarantined.incr();
                self.recovery.quarantined += 1;
                self.quarantine(path, off)?;
                truncate_to(path, off as u64)?;
            }
        }
        if !payload.is_empty() {
            self.cache.insert((master, segment), payload);
        }
        Ok(())
    }

    /// Copies a corrupt file into `quarantine/` (named after the offset of
    /// the first bad frame) for forensics.
    fn quarantine(&self, path: &Path, offset: usize) -> Result<(), StorageError> {
        let qdir = self.dir.join("quarantine");
        fs::create_dir_all(&qdir).map_err(|e| StorageError::Io(format!("{qdir:?}: {e}")))?;
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "unknown".into());
        let dest = qdir.join(format!("{name}.{offset}.bad"));
        fs::copy(path, &dest)
            .map_err(|e| StorageError::Io(format!("quarantine {path:?} -> {dest:?}: {e}")))?;
        Ok(())
    }

    fn file_for(&mut self, master: usize, segment: u64) -> Result<&mut File, StorageError> {
        let key = (master, segment);
        if !self.files.contains_key(&key) {
            let path = self.dir.join(seg_name(master, segment));
            let f = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| StorageError::Io(format!("open {path:?}: {e}")))?;
            self.files.insert(key, f);
        }
        Ok(self.files.get_mut(&key).expect("just inserted"))
    }

    /// Runs the policy after `written` new bytes landed on `key`'s file.
    fn after_write(&mut self, key: (usize, u64), written: usize) -> Result<(), StorageError> {
        match self.policy {
            FsyncPolicy::PerWrite => {
                self.sync_one(key)?;
            }
            FsyncPolicy::Batched { bytes, interval } => {
                self.dirty.insert(key);
                self.dirty_bytes += written;
                self.metrics.queue_depth.set(self.dirty.len() as u64);
                if self.dirty_bytes >= bytes || self.last_sync.elapsed() >= interval {
                    self.flush()?;
                }
            }
            FsyncPolicy::Off => {}
        }
        Ok(())
    }

    fn sync_one(&mut self, key: (usize, u64)) -> Result<(), StorageError> {
        if let Some(injector) = self.injector.as_mut() {
            if !injector.on_fsync() {
                self.metrics.fsync_errors.incr();
                return Err(StorageError::Io("injected fsync EIO".into()));
            }
        }
        if let Some(f) = self.files.get(&key) {
            f.sync_all()
                .map_err(|e| StorageError::Io(format!("fsync {key:?}: {e}")))?;
            self.metrics.fsyncs.incr();
        }
        Ok(())
    }
}

impl BackupStorage for FileStorage {
    fn append(&mut self, master: usize, segment: u64, bytes: &[u8]) -> Result<(), StorageError> {
        let mut frame = encode_frame(master, segment, self.epoch, bytes);
        let fault = match self.injector.as_mut() {
            Some(injector) => injector.on_append(master, segment, &mut frame),
            None => crate::AppendFault::clean(),
        };
        if let Some(stall) = fault.stall {
            // Stuck-slow I/O: the append blocks the backup's event loop,
            // exactly like a device hiccup under a synchronous write path.
            self.metrics.stalls.incr();
            std::thread::sleep(stall);
        }
        let key = (master, segment);
        match fault.outcome {
            AppendOutcome::Commit => {
                let len = frame.len();
                self.file_for(master, segment)?
                    .write_all(&frame)
                    .map_err(|e| {
                        self.metrics.write_errors.incr();
                        StorageError::Io(format!("append {key:?}: {e}"))
                    })?;
                self.metrics.write_bytes.add(len as u64);
                self.after_write(key, len)?;
                // Only an append that survived its policy joins the served
                // mirror; a failed one is redriven by the master's retry.
                self.cache.entry(key).or_default().extend_from_slice(bytes);
                Ok(())
            }
            AppendOutcome::Short { keep } => {
                let keep = keep.min(frame.len());
                let _ = self.file_for(master, segment)?.write_all(&frame[..keep]);
                self.metrics.write_bytes.add(keep as u64);
                self.metrics.write_errors.incr();
                // The torn frame sits at the file's tail; recovery will
                // truncate it. No ack, so no durability was promised.
                Err(StorageError::Io(format!(
                    "injected short write ({keep}/{} bytes) on {key:?}",
                    frame.len()
                )))
            }
            AppendOutcome::Error => {
                self.metrics.write_errors.incr();
                Err(StorageError::Io(format!("injected write EIO on {key:?}")))
            }
        }
    }

    fn supersede(&mut self, master: usize, segment: u64, bytes: &[u8]) -> Result<(), StorageError> {
        let key = (master, segment);
        let current = self.cache.get(&key).map_or(0, |b| b.len());
        if bytes.len() <= current {
            return Ok(());
        }
        // Rewrite the file as a single frame holding the whole image. The
        // open append handle is dropped first; a crash mid-rewrite leaves a
        // torn tail, which recovery truncates — and reseeds are fire-and-
        // forget re-replication, so the master will send the image again.
        self.files.remove(&key);
        self.dirty.remove(&key);
        let path = self.dir.join(seg_name(master, segment));
        let frame = encode_frame(master, segment, self.epoch, bytes);
        let mut f = File::create(&path).map_err(|e| StorageError::Io(format!("{path:?}: {e}")))?;
        f.write_all(&frame).map_err(|e| {
            self.metrics.write_errors.incr();
            StorageError::Io(format!("supersede {key:?}: {e}"))
        })?;
        self.metrics.write_bytes.add(frame.len() as u64);
        drop(f);
        self.files.insert(
            key,
            OpenOptions::new()
                .append(true)
                .open(&path)
                .map_err(|e| StorageError::Io(format!("reopen {path:?}: {e}")))?,
        );
        self.after_write(key, frame.len())?;
        self.cache.insert(key, bytes.to_vec());
        Ok(())
    }

    fn segments_of(&self, master: usize) -> Vec<(u64, Vec<u8>)> {
        self.cache
            .iter()
            .filter(|((m, _), _)| *m == master)
            .map(|((_, seg), bytes)| (*seg, bytes.clone()))
            .collect()
    }

    fn segment_count(&self) -> usize {
        self.cache.len()
    }

    fn staged_bytes(&self) -> u64 {
        self.cache.values().map(|b| b.len() as u64).sum()
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        if let Some(injector) = self.injector.as_mut() {
            if !injector.on_fsync() {
                self.metrics.fsync_errors.incr();
                return Err(StorageError::Io("injected fsync EIO".into()));
            }
        }
        let keys: Vec<(usize, u64)> = self.dirty.iter().copied().collect();
        let syncing = match self.policy {
            // Per-write keeps nothing dirty; off flushes everything open
            // (the shutdown path's best effort).
            FsyncPolicy::Off => self.files.keys().copied().collect(),
            _ => keys,
        };
        for key in syncing {
            if let Some(f) = self.files.get(&key) {
                f.sync_all()
                    .map_err(|e| StorageError::Io(format!("fsync {key:?}: {e}")))?;
                self.metrics.fsyncs.incr();
            }
        }
        self.dirty.clear();
        self.dirty_bytes = 0;
        self.last_sync = Instant::now();
        self.metrics.queue_depth.set(0);
        Ok(())
    }
}

impl Drop for FileStorage {
    fn drop(&mut self) {
        // Graceful exits flush whatever the policy left unsynced; a real
        // crash never runs this, which is the whole point of the policies.
        let _ = self.flush();
    }
}

fn truncate_to(path: &Path, len: u64) -> Result<(), StorageError> {
    let f = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| StorageError::Io(format!("open {path:?} for truncate: {e}")))?;
    f.set_len(len)
        .map_err(|e| StorageError::Io(format!("truncate {path:?} to {len}: {e}")))?;
    f.sync_all()
        .map_err(|e| StorageError::Io(format!("fsync truncated {path:?}: {e}")))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AppendFault;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rmc-diskstore-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn open(dir: &Path, policy: FsyncPolicy) -> FileStorage {
        FileStorage::open(dir, policy, 0, DiskMetrics::detached()).unwrap()
    }

    #[test]
    fn append_reopen_recovers_everything() {
        let dir = tmpdir("roundtrip");
        {
            let mut s = open(&dir, FsyncPolicy::PerWrite);
            s.append(0, 1, b"first").unwrap();
            s.append(0, 1, b"second").unwrap();
            s.append(2, 7, b"other master").unwrap();
        }
        let s = open(&dir, FsyncPolicy::PerWrite);
        assert_eq!(s.segments_of(0), vec![(1, b"firstsecond".to_vec())]);
        assert_eq!(s.segments_of(2), vec![(7, b"other master".to_vec())]);
        assert_eq!(s.recovery.segments, 2);
        assert_eq!(s.recovery.torn_tails, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_cleanly() {
        let dir = tmpdir("torn");
        {
            let mut s = open(&dir, FsyncPolicy::PerWrite);
            s.append(1, 3, b"kept payload").unwrap();
        }
        // Simulate a crash mid-append: a second frame cut short.
        let path = dir.join(seg_name(1, 3));
        let torn = encode_frame(1, 3, 0, b"lost payload");
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&torn[..torn.len() - 5]).unwrap();
        drop(f);
        let s = open(&dir, FsyncPolicy::PerWrite);
        assert_eq!(s.segments_of(1), vec![(3, b"kept payload".to_vec())]);
        assert_eq!(s.recovery.torn_tails, 1);
        assert_eq!(s.recovery.quarantined, 0);
        // The file itself was truncated back to the valid prefix.
        let s2 = open(&dir, FsyncPolicy::PerWrite);
        assert_eq!(s2.recovery.torn_tails, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_quarantined_not_panicked() {
        let dir = tmpdir("corrupt");
        {
            let mut s = open(&dir, FsyncPolicy::PerWrite);
            s.append(0, 0, b"good frame").unwrap();
            s.append(0, 0, b"will be flipped").unwrap();
        }
        let path = dir.join(seg_name(0, 0));
        let mut bytes = fs::read(&path).unwrap();
        let first = encode_frame(0, 0, 0, b"good frame").len();
        // Flip a payload bit inside the *second* frame.
        let idx = first + FRAME_HEADER_FOR_TEST + 3;
        bytes[idx] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let s = open(&dir, FsyncPolicy::PerWrite);
        assert_eq!(s.segments_of(0), vec![(0, b"good frame".to_vec())]);
        assert_eq!(s.recovery.quarantined, 1);
        let quarantined: Vec<_> = fs::read_dir(dir.join("quarantine"))
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(quarantined.len(), 1);
        assert!(quarantined[0].starts_with("m0_s0.seg."), "{quarantined:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    const FRAME_HEADER_FOR_TEST: usize = crate::frame::FRAME_HEADER_BYTES;

    #[test]
    fn supersede_rewrites_only_when_longer() {
        let dir = tmpdir("supersede");
        let mut s = open(&dir, FsyncPolicy::PerWrite);
        s.append(0, 5, b"0123456789").unwrap();
        s.supersede(0, 5, b"short").unwrap();
        assert_eq!(s.segments_of(0), vec![(5, b"0123456789".to_vec())]);
        s.supersede(0, 5, b"0123456789AB").unwrap();
        assert_eq!(s.segments_of(0), vec![(5, b"0123456789AB".to_vec())]);
        // Appends continue after a supersede, and everything reopens.
        s.append(0, 5, b"+tail").unwrap();
        drop(s);
        let s = open(&dir, FsyncPolicy::PerWrite);
        assert_eq!(s.segments_of(0), vec![(5, b"0123456789AB+tail".to_vec())]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn batched_policy_defers_then_flushes() {
        let dir = tmpdir("batched");
        let mut s = open(
            &dir,
            FsyncPolicy::Batched {
                bytes: 1 << 20,
                interval: std::time::Duration::from_secs(3600),
            },
        );
        s.append(0, 1, b"buffered").unwrap();
        s.flush().unwrap();
        drop(s);
        let s = open(&dir, FsyncPolicy::Off);
        assert_eq!(s.segments_of(0), vec![(1, b"buffered".to_vec())]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn batched_byte_threshold_triggers_sync() {
        let dir = tmpdir("batched-thresh");
        let mut s = open(
            &dir,
            FsyncPolicy::Batched {
                bytes: 64,
                interval: std::time::Duration::from_secs(3600),
            },
        );
        s.append(0, 1, &[7u8; 100]).unwrap();
        // Threshold exceeded: the dirty queue drained inside append.
        assert_eq!(s.dirty.len(), 0);
        assert_eq!(s.dirty_bytes, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    /// An injector scripted by a queue of fates.
    #[derive(Debug, Default)]
    struct Scripted {
        appends: std::collections::VecDeque<AppendFault>,
        flip_next: bool,
        fsync_eio: bool,
    }

    impl FaultInjector for Scripted {
        fn on_append(&mut self, _m: usize, _s: u64, frame: &mut Vec<u8>) -> AppendFault {
            if self.flip_next {
                self.flip_next = false;
                let mid = frame.len() / 2;
                frame[mid] ^= 0x10;
            }
            self.appends.pop_front().unwrap_or_else(AppendFault::clean)
        }
        fn on_fsync(&mut self) -> bool {
            !self.fsync_eio
        }
    }

    #[test]
    fn short_write_fails_the_append_and_recovery_truncates() {
        let dir = tmpdir("short");
        {
            let mut s = open(&dir, FsyncPolicy::PerWrite).with_injector(Box::new(Scripted {
                appends: [
                    AppendFault::clean(),
                    AppendFault {
                        stall: None,
                        outcome: AppendOutcome::Short { keep: 10 },
                    },
                ]
                .into(),
                ..Default::default()
            }));
            s.append(0, 1, b"acked bytes").unwrap();
            assert!(s.append(0, 1, b"torn bytes").is_err());
            // The failed append never joined the served mirror.
            assert_eq!(s.segments_of(0), vec![(1, b"acked bytes".to_vec())]);
        }
        let s = open(&dir, FsyncPolicy::PerWrite);
        assert_eq!(s.segments_of(0), vec![(1, b"acked bytes".to_vec())]);
        assert_eq!(s.recovery.torn_tails, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_detected_on_reopen() {
        let dir = tmpdir("flip");
        {
            let mut s = open(&dir, FsyncPolicy::PerWrite).with_injector(Box::new(Scripted {
                flip_next: true,
                ..Default::default()
            }));
            // The flip corrupts the frame on its way to the platter; the
            // backup doesn't know (CRC was computed before the flip).
            s.append(0, 1, b"silently corrupted").unwrap();
        }
        let s = open(&dir, FsyncPolicy::PerWrite);
        assert_eq!(s.segments_of(0), Vec::new());
        assert_eq!(s.recovery.quarantined, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_eio_fails_per_write_appends() {
        let dir = tmpdir("eio");
        let mut s = open(&dir, FsyncPolicy::PerWrite).with_injector(Box::new(Scripted {
            fsync_eio: true,
            ..Default::default()
        }));
        assert!(matches!(
            s.append(0, 1, b"never durable"),
            Err(StorageError::Io(_))
        ));
        // Not acked, not served.
        assert_eq!(s.segments_of(0), Vec::new());
        // Silence the Drop-flush error path.
        s.injector = None;
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn epoch_bumps_across_boots() {
        let dir = tmpdir("epoch");
        assert_eq!(bump_epoch(&dir).unwrap(), 0);
        assert_eq!(bump_epoch(&dir).unwrap(), 1);
        assert_eq!(bump_epoch(&dir).unwrap(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn seg_names_roundtrip() {
        assert_eq!(parse_seg_name(&seg_name(4, 99)), Some((4, 99)));
        assert_eq!(parse_seg_name("epoch"), None);
        assert_eq!(parse_seg_name("m1_s.seg"), None);
        assert_eq!(parse_seg_name("mx_s2.seg"), None);
    }
}
