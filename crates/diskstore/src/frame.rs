//! The on-disk frame: one checksummed record per replica append.
//!
//! Every write a backup stages is wrapped in a fixed 36-byte header plus
//! the payload bytes, little-endian throughout:
//!
//! ```text
//! +-------+--------+---------+-------+-----+-----+---------+
//! | magic | master | segment | epoch | len | crc | payload |
//! |  4 B  |  8 B   |   8 B   |  8 B  | 4 B | 4 B |  len B  |
//! +-------+--------+---------+-------+-----+-----+---------+
//! ```
//!
//! The CRC (CRC-32C, the same `crc32c` the log entries use) covers the
//! header minus the crc field itself, then the payload — so a bit flip
//! anywhere in a frame is detected, and a frame cut short by a crash fails
//! the length check before the checksum is even consulted. Decoding
//! distinguishes the two: [`FrameError::TornTail`] means the buffer simply
//! ends mid-frame (the normal signature of a crash between `write` and
//! completion — recover by truncating), while [`FrameError::Corrupt`] means
//! a structurally complete frame carries impossible fields or a bad
//! checksum (the disk lied — quarantine, never trust what follows).

use rmc_logstore::crc32c;

/// `"RMCS"` as the first four bytes of every frame (little-endian u32).
pub const FRAME_MAGIC: u32 = u32::from_le_bytes(*b"RMCS");

/// Fixed header size in bytes.
pub const FRAME_HEADER_BYTES: usize = 4 + 8 + 8 + 8 + 4 + 4;

/// Sanity bound on a single frame's payload (far above any real segment;
/// a declared length past this is corruption, not a huge write).
pub const MAX_FRAME_PAYLOAD: usize = 1 << 28;

/// Decoded header fields of one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Master whose segment this replica belongs to (server index).
    pub master: u64,
    /// Segment id within that master's log.
    pub segment: u64,
    /// The backup incarnation epoch that staged the frame.
    pub epoch: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// Stored CRC-32C.
    pub crc: u32,
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the frame does: a torn write. The bytes up
    /// to here are a clean prefix; truncate and move on.
    TornTail,
    /// The frame is structurally complete but wrong — bad magic, an
    /// impossible length, or a checksum mismatch. Nothing after this
    /// offset can be trusted.
    Corrupt(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TornTail => write!(f, "torn frame tail"),
            FrameError::Corrupt(why) => write!(f, "corrupt frame: {why}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one frame: header + payload, checksummed.
pub fn encode_frame(master: usize, segment: u64, epoch: u64, payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_FRAME_PAYLOAD, "payload too large");
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&(master as u64).to_le_bytes());
    out.extend_from_slice(&segment.to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let crc_at = out.len();
    out.extend_from_slice(&[0u8; 4]);
    out.extend_from_slice(payload);
    let crc = {
        let mut tmp = Vec::with_capacity(out.len() - 4);
        tmp.extend_from_slice(&out[..crc_at]);
        tmp.extend_from_slice(&out[crc_at + 4..]);
        crc32c(&tmp)
    };
    out[crc_at..crc_at + 4].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes the frame at the start of `buf`. Returns the header, the
/// payload slice, and the frame's total length.
///
/// # Errors
///
/// [`FrameError::TornTail`] when `buf` ends mid-frame;
/// [`FrameError::Corrupt`] on bad magic, an impossible length, or a
/// checksum mismatch.
pub fn decode_frame(buf: &[u8]) -> Result<(FrameHeader, &[u8], usize), FrameError> {
    if buf.len() < FRAME_HEADER_BYTES {
        return Err(FrameError::TornTail);
    }
    let magic = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    if magic != FRAME_MAGIC {
        return Err(FrameError::Corrupt(format!("bad magic {magic:#010x}")));
    }
    let master = u64::from_le_bytes(buf[4..12].try_into().unwrap());
    let segment = u64::from_le_bytes(buf[12..20].try_into().unwrap());
    let epoch = u64::from_le_bytes(buf[20..28].try_into().unwrap());
    let len = u32::from_le_bytes(buf[28..32].try_into().unwrap());
    let crc = u32::from_le_bytes(buf[32..36].try_into().unwrap());
    if len as usize > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Corrupt(format!("impossible length {len}")));
    }
    let total = FRAME_HEADER_BYTES + len as usize;
    if buf.len() < total {
        return Err(FrameError::TornTail);
    }
    let computed = {
        let mut tmp = Vec::with_capacity(total - 4);
        tmp.extend_from_slice(&buf[..32]);
        tmp.extend_from_slice(&buf[36..total]);
        crc32c(&tmp)
    };
    if computed != crc {
        return Err(FrameError::Corrupt(format!(
            "checksum mismatch: stored {crc:#010x}, computed {computed:#010x}"
        )));
    }
    let header = FrameHeader {
        master,
        segment,
        epoch,
        len,
        crc,
    };
    Ok((header, &buf[FRAME_HEADER_BYTES..total], total))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let frame = encode_frame(3, 17, 2, b"replica bytes");
        let (h, payload, total) = decode_frame(&frame).unwrap();
        assert_eq!((h.master, h.segment, h.epoch, h.len), (3, 17, 2, 13),);
        assert_eq!(payload, b"replica bytes");
        assert_eq!(total, frame.len());
    }

    #[test]
    fn empty_payload_roundtrips() {
        let frame = encode_frame(0, 0, 0, b"");
        let (h, payload, total) = decode_frame(&frame).unwrap();
        assert_eq!(h.len, 0);
        assert!(payload.is_empty());
        assert_eq!(total, FRAME_HEADER_BYTES);
    }

    #[test]
    fn truncation_is_a_torn_tail_at_every_length() {
        let frame = encode_frame(1, 2, 3, &[0xAB; 64]);
        for cut in 0..frame.len() {
            assert_eq!(
                decode_frame(&frame[..cut]).unwrap_err(),
                FrameError::TornTail,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn any_bit_flip_is_detected() {
        let frame = encode_frame(1, 2, 3, &[0x5A; 32]);
        for byte in 0..frame.len() {
            let mut bad = frame.clone();
            bad[byte] ^= 0x01;
            match decode_frame(&bad) {
                Err(_) => {}
                // A flip in the length field may declare a longer frame
                // than the buffer holds — that surfaces as TornTail, which
                // is also a detection. A flip that *shrinks* the declared
                // length moves payload bytes out of the checksummed range
                // and must still fail the CRC.
                Ok(_) => panic!("bit flip at byte {byte} went undetected"),
            }
        }
    }

    #[test]
    fn trailing_bytes_left_for_the_next_frame() {
        let mut buf = encode_frame(1, 2, 3, b"first");
        let second = encode_frame(1, 2, 3, b"second");
        buf.extend_from_slice(&second);
        let (_, payload, total) = decode_frame(&buf).unwrap();
        assert_eq!(payload, b"first");
        let (_, payload2, _) = decode_frame(&buf[total..]).unwrap();
        assert_eq!(payload2, b"second");
    }
}
