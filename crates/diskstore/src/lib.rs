//! # rmc-diskstore — durable file-backed backup segment storage
//!
//! Part of the reproduction of *"Characterizing Performance and
//! Energy-Efficiency of the RAMCloud Storage System"* (ICDCS 2017). The
//! paper's recovery story (Fig 12, Finding 6) hinges on backups spilling
//! segment replicas to disk so that crash recovery can replay real bytes.
//! This crate is that durability layer: the [`BackupStorage`] boundary the
//! protocol's backup role stages replicas behind, with two engines —
//!
//! - [`MemStorage`]: the in-memory staging the cluster always had; keeps
//!   the deterministic simulation byte-identical and allocation-cheap.
//! - [`FileStorage`]: real files, one per `(master, segment)` replica, each
//!   a sequence of CRC32C-checksummed [frames](frame). An fsync policy axis
//!   ([`FsyncPolicy`]: `per_write` / `batched{bytes,interval}` / `off`)
//!   trades durability against write latency exactly the way RAMCloud's
//!   buffered logging does, and [`FileStorage::open`] recovers staged
//!   segments after a crash by loading the longest valid frame prefix of
//!   every file — a torn tail is clean truncation, a mid-file checksum
//!   mismatch quarantines the file's remainder rather than panicking.
//!
//! The storage boundary is also the disk fault-injection surface: a
//! [`FaultInjector`] interposes on every append and fsync (short writes,
//! EIO, bit flips, stuck-slow I/O), with every detected consequence counted
//! in the `disk.*` metric family ([`DiskMetrics`]).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod file;
pub mod frame;
mod storage;

pub use file::{bump_epoch, FileStorage, RecoveryStats};
pub use storage::{
    AppendFault, AppendOutcome, BackupStorage, DiskMetrics, FaultInjector, FsyncPolicy, MemStorage,
    StorageError,
};
