//! Real-hardware benchmark of the multi-threaded standalone store — the one
//! benchmark in this workspace that measures actual wall-clock concurrency
//! rather than simulated time.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rmc_logstore::{LogConfig, TableId};
use rmc_standalone::{ServerConfig, ShardedStore, StandaloneServer};

const T: TableId = TableId(1);

fn bench_sharded_direct(c: &mut Criterion) {
    let mut g = c.benchmark_group("standalone/sharded_direct");
    g.throughput(Throughput::Elements(1));
    let store = ShardedStore::new(8, LogConfig::default());
    for i in 0..100_000u64 {
        store.write(T, &i.to_le_bytes(), &[5u8; 256]).unwrap();
    }
    g.bench_function("read", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(store.read(T, &(i % 100_000).to_le_bytes()));
        })
    });
    g.bench_function("write", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(
                store
                    .write(T, &(i % 100_000).to_le_bytes(), &[6u8; 256])
                    .unwrap(),
            );
        })
    });
    g.finish();
}

fn bench_server_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("standalone/server_roundtrip");
    g.sample_size(20);
    let server = StandaloneServer::start(ServerConfig::default());
    let client = server.client();
    client.write(T, b"warm", &[1u8; 256]).unwrap();
    g.bench_function("read_via_worker_pool", |b| {
        b.iter(|| black_box(client.read(T, b"warm").unwrap()))
    });
    g.bench_function("write_via_worker_pool", |b| {
        b.iter(|| black_box(client.write(T, b"warm", &[2u8; 256]).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_sharded_direct, bench_server_roundtrip);
criterion_main!(benches);
