//! Benchmarks of the YCSB workload generator: key sampling must be far
//! cheaper than the simulated operations it drives.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rmc_sim::SimRng;
use rmc_ycsb::{Distribution, KeyChooser, RequestGenerator, StandardWorkload, WorkloadSpec};

fn bench_distributions(c: &mut Criterion) {
    for (name, dist) in [
        ("uniform", Distribution::Uniform),
        ("zipfian", Distribution::zipfian_default()),
        ("latest", Distribution::Latest),
    ] {
        c.bench_function(format!("ycsb/keychooser_{name}"), |b| {
            let mut kc = KeyChooser::new(dist, 1_000_000);
            let mut rng = SimRng::seed_from_u64(1);
            b.iter(|| black_box(kc.next(&mut rng)))
        });
    }
}

fn bench_request_stream(c: &mut Criterion) {
    c.bench_function("ycsb/request_stream_A", |b| {
        let spec = WorkloadSpec::standard(StandardWorkload::A).with_ops_per_client(u64::MAX / 2);
        let mut g = RequestGenerator::new(spec, 3);
        b.iter(|| black_box(g.next_request()))
    });
}

criterion_group!(benches, bench_distributions, bench_request_stream);
criterion_main!(benches);
