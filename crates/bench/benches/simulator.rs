//! Benchmarks of the simulation infrastructure itself: raw event-queue
//! throughput and end-to-end simulated-op rate, which bound how fast the
//! paper's experiments regenerate.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rmc_core::{Cluster, ClusterConfig};
use rmc_sim::{SimDuration, Simulation};
use rmc_ycsb::{StandardWorkload, WorkloadSpec};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/event_queue");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("schedule_and_run_10k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(0u64);
            fn tick(n: &mut u64, sched: &mut rmc_sim::Scheduler<u64>) {
                *n += 1;
                if *n < 10_000 {
                    sched.schedule_after(SimDuration::from_micros(10), tick);
                }
            }
            sim.scheduler_mut().schedule_after(SimDuration::ZERO, tick);
            sim.run();
            black_box(*sim.state());
        })
    });
    g.finish();
}

fn bench_cluster_sim_rate(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/cluster");
    g.sample_size(10);
    for (name, w) in [
        ("read_only", StandardWorkload::C),
        ("update_heavy", StandardWorkload::A),
    ] {
        let ops = 20_000u64;
        g.throughput(Throughput::Elements(ops * 4));
        g.bench_function(format!("{name}_4srv_4cli"), |b| {
            b.iter(|| {
                let workload = WorkloadSpec::standard(w)
                    .with_record_count(10_000)
                    .with_ops_per_client(ops);
                let cfg = ClusterConfig::new(4, 4, workload).with_replication(2);
                black_box(Cluster::new(cfg).run().completed_ops)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_cluster_sim_rate);
criterion_main!(benches);
