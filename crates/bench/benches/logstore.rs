//! Micro-benchmarks of the storage engine: the real data-plane costs that
//! the simulator's calibration constants abstract (append, read, overwrite
//! churn with cleaning, index probes).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rmc_logstore::{
    key_hash, HashTable, KeyHash, LogConfig, LogPosition, SegmentId, Store, TableId,
};

const T: TableId = TableId(1);

fn store(max_segments: usize) -> Store {
    Store::new(LogConfig {
        segment_bytes: 1 << 20,
        max_segments,
        ordered_index: false,
    })
}

fn bench_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("logstore/append");
    for value_bytes in [64usize, 1024] {
        g.throughput(Throughput::Bytes(value_bytes as u64));
        g.bench_function(format!("{value_bytes}B"), |b| {
            let mut s = store(8192);
            let value = vec![7u8; value_bytes];
            let mut i = 0u64;
            b.iter(|| {
                let key = i.to_le_bytes();
                i += 1;
                black_box(s.write(T, &key, &value).unwrap());
            });
        });
    }
    g.finish();
}

fn bench_read(c: &mut Criterion) {
    let mut s = store(1024);
    for i in 0..100_000u64 {
        s.write(T, &i.to_le_bytes(), &[1u8; 256]).unwrap();
    }
    let mut i = 0u64;
    c.bench_function("logstore/read_hit", |b| {
        b.iter(|| {
            let key = (i % 100_000).to_le_bytes();
            i += 1;
            black_box(s.read(T, &key));
        })
    });
    c.bench_function("logstore/read_miss", |b| {
        let mut j = 1_000_000u64;
        b.iter(|| {
            j += 1;
            black_box(s.read(T, &j.to_le_bytes()));
        })
    });
}

fn bench_overwrite_churn(c: &mut Criterion) {
    // Bounded memory: every overwrite eventually drags the cleaner.
    c.bench_function("logstore/overwrite_churn_with_cleaner", |b| {
        let mut s = store(24);
        let mut i = 0u64;
        b.iter(|| {
            let key = (i % 512).to_le_bytes();
            i += 1;
            black_box(s.write(T, &key, &[9u8; 1024]).unwrap());
        });
    });
}

fn bench_hashtable(c: &mut Criterion) {
    c.bench_function("hashtable/insert", |b| {
        let mut ht = HashTable::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            ht.insert(
                KeyHash(i.wrapping_mul(0x9E3779B97F4A7C15)),
                LogPosition {
                    segment: SegmentId(i >> 12),
                    offset: (i & 0xfff) as u32,
                },
            );
        });
    });
    let mut ht = HashTable::new();
    for i in 0..1_000_000u64 {
        ht.insert(
            KeyHash(i.wrapping_mul(0x9E3779B97F4A7C15)),
            LogPosition {
                segment: SegmentId(i >> 12),
                offset: (i & 0xfff) as u32,
            },
        );
    }
    c.bench_function("hashtable/lookup_1M", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(
                ht.candidates(KeyHash((i % 1_000_000).wrapping_mul(0x9E3779B97F4A7C15)))
                    .next(),
            );
        })
    });
    c.bench_function("hashtable/key_hash", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(key_hash(T, &i.to_le_bytes()));
        })
    });
}

criterion_group!(
    benches,
    bench_append,
    bench_read,
    bench_overwrite_churn,
    bench_hashtable
);
criterion_main!(benches);
