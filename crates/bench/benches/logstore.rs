//! Micro-benchmarks of the storage engine: the real data-plane costs that
//! the simulator's calibration constants abstract (append, read, overwrite
//! churn with cleaning, index probes).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rmc_logstore::{
    key_hash, HashTable, KeyHash, LogConfig, LogPosition, SegmentId, Store, TableId,
};

const T: TableId = TableId(1);

fn store(max_segments: usize) -> Store {
    Store::new(LogConfig {
        segment_bytes: 1 << 20,
        max_segments,
        ordered_index: false,
    })
}

fn bench_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("logstore/append");
    for value_bytes in [64usize, 1024] {
        g.throughput(Throughput::Bytes(value_bytes as u64));
        g.bench_function(format!("{value_bytes}B"), |b| {
            let mut s = store(8192);
            let value = vec![7u8; value_bytes];
            let mut i = 0u64;
            b.iter(|| {
                let key = i.to_le_bytes();
                i += 1;
                black_box(s.write(T, &key, &value).unwrap());
            });
        });
    }
    g.finish();
}

fn bench_read(c: &mut Criterion) {
    let mut s = store(1024);
    for i in 0..100_000u64 {
        s.write(T, &i.to_le_bytes(), &[1u8; 256]).unwrap();
    }
    let mut i = 0u64;
    c.bench_function("logstore/read_hit", |b| {
        b.iter(|| {
            let key = (i % 100_000).to_le_bytes();
            i += 1;
            black_box(s.read(T, &key));
        })
    });
    c.bench_function("logstore/read_miss", |b| {
        let mut j = 1_000_000u64;
        b.iter(|| {
            j += 1;
            black_box(s.read(T, &j.to_le_bytes()));
        })
    });
}

fn bench_overwrite_churn(c: &mut Criterion) {
    // Bounded memory: every overwrite eventually drags the cleaner.
    c.bench_function("logstore/overwrite_churn_with_cleaner", |b| {
        let mut s = store(24);
        let mut i = 0u64;
        b.iter(|| {
            let key = (i % 512).to_le_bytes();
            i += 1;
            black_box(s.write(T, &key, &[9u8; 1024]).unwrap());
        });
    });
}

fn bench_hashtable(c: &mut Criterion) {
    c.bench_function("hashtable/insert", |b| {
        let mut ht = HashTable::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            ht.insert(
                KeyHash(i.wrapping_mul(0x9E3779B97F4A7C15)),
                LogPosition {
                    segment: SegmentId(i >> 12),
                    offset: (i & 0xfff) as u32,
                },
            );
        });
    });
    let mut ht = HashTable::new();
    for i in 0..1_000_000u64 {
        ht.insert(
            KeyHash(i.wrapping_mul(0x9E3779B97F4A7C15)),
            LogPosition {
                segment: SegmentId(i >> 12),
                offset: (i & 0xfff) as u32,
            },
        );
    }
    c.bench_function("hashtable/lookup_1M", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(
                ht.candidates(KeyHash((i % 1_000_000).wrapping_mul(0x9E3779B97F4A7C15)))
                    .next(),
            );
        })
    });
    c.bench_function("hashtable/key_hash", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(key_hash(T, &i.to_le_bytes()));
        })
    });
}

/// Probe lengths before and after the tombstone-dropping rehash.
///
/// Delete-heavy churn leaves the open-addressed table full of `Deleted`
/// slots that every linear probe must step over; the in-place purge rehash
/// reclaims that probe length without doubling memory. This bench builds a
/// tombstone-dominated table, forces the purge on a clone, prints the mean
/// counted probe length of each, and times lookups over the same live keys
/// on both.
fn bench_probe_lengths(c: &mut Criterion) {
    const LIVE_EVERY: u64 = 4;
    const TOTAL: u64 = 183_000;
    // The store's real key hash: sequential keys collide in the table's
    // low bits like production traffic would (a multiplicative sequence
    // would be collision-free by construction and show zero probing).
    let h = |i: u64| key_hash(T, &i.to_le_bytes());
    let p = |i: u64| LogPosition {
        segment: SegmentId(i >> 12),
        offset: (i & 0xfff) as u32,
    };

    // Fill a pre-sized table to just under the 70 % resize threshold, then
    // delete three quarters of it. No resize has run, so every tombstone is
    // still in place.
    let mut churned = HashTable::with_capacity(100_000);
    for i in 0..TOTAL {
        churned.insert(h(i), p(i));
    }
    for i in 0..TOTAL {
        if i % LIVE_EVERY != 0 {
            churned.remove(h(i), p(i));
        }
    }

    // Push a clone over the threshold: the resize sees a tombstone-dominated
    // load and rehashes in place, purging every tombstone without doubling.
    let mut purged = churned.clone();
    let r0 = purged.probe_stats().resizes;
    let mut extra = TOTAL;
    while purged.probe_stats().resizes == r0 {
        purged.insert(h(extra), p(extra));
        extra += 1;
    }

    // Mean probe length over the shared live keys, via the counted mutating
    // probe (a self-update), reported once per run alongside the timings.
    for (name, table) in [("churned", &churned), ("purged", &purged)] {
        let mut t = table.clone();
        let s0 = t.probe_stats();
        for i in (0..TOTAL).step_by(LIVE_EVERY as usize) {
            t.update(h(i), p(i), p(i));
        }
        let s1 = t.probe_stats();
        eprintln!(
            "hashtable/probe[{name}]: mean {:.2} probe steps over {} live keys",
            (s1.probe_steps - s0.probe_steps) as f64 / (s1.probes - s0.probes) as f64,
            s1.probes - s0.probes,
        );
    }

    let mut g = c.benchmark_group("hashtable/probe");
    for (name, table) in [("churned_tombstones", &churned), ("after_purge", &purged)] {
        g.bench_function(name, |b| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 1) % (TOTAL / LIVE_EVERY);
                black_box(table.candidates(h(i * LIVE_EVERY)).next());
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_append,
    bench_read,
    bench_overwrite_churn,
    bench_hashtable,
    bench_probe_lengths
);
criterion_main!(benches);
