//! Terminal chart rendering for the experiment drivers.
//!
//! The paper's artifacts are mostly *figures*; printing rows regenerates the
//! data, but a quick visual check of the shape matters too. This module
//! renders line charts and grouped bars as Unicode text — no plotting
//! dependency, works in any terminal, and is deterministic (testable).

/// A named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Data points, x ascending.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Builds a series.
    pub fn new(name: &str, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.to_owned(),
            points,
        }
    }
}

const GLYPHS: [char; 6] = ['o', '+', 'x', '*', '#', '@'];

/// Renders `series` as a `width`×`height` character line chart with axis
/// labels and a legend. Returns the chart as a string (callers print it).
///
/// # Panics
///
/// Panics if `width < 16` or `height < 4` — smaller canvases cannot hold
/// the axes.
pub fn line_chart(title: &str, series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 4, "canvas too small");
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if all.is_empty() {
        out.push_str("  (no data)\n");
        return out;
    }
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (0.0f64, f64::NEG_INFINITY);
    for &(x, y) in &all {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    if (xmax - xmin).abs() < 1e-12 {
        xmax = xmin + 1.0;
    }
    if (ymax - ymin).abs() < 1e-12 {
        ymax = ymin + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = ((x - xmin) / (xmax - xmin) * (width - 1) as f64).round() as usize;
            let cy = ((y - ymin) / (ymax - ymin) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = glyph;
        }
    }
    let ylab = |v: f64| format_quantity(v);
    out.push_str(&format!("{:>9} |\n", ylab(ymax)));
    for (r, row) in grid.iter().enumerate() {
        let label = if r == height - 1 {
            format!("{:>9} |", ylab(ymin))
        } else {
            format!("{:>9} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>10}{}\n", "+", "-".repeat(width)));
    out.push_str(&format!(
        "{:>10}{:<w$}{}\n",
        "",
        format_quantity(xmin),
        format_quantity(xmax),
        w = width.saturating_sub(format_quantity(xmax).len())
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "{:>10}{} {}\n",
            "",
            GLYPHS[si % GLYPHS.len()],
            s.name
        ));
    }
    out
}

/// Renders labelled value groups as horizontal bars (for the paper's bar
/// figures, e.g. Fig 4b / Fig 11a).
pub fn bar_chart(title: &str, bars: &[(String, f64)], width: usize) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let max = bars.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
    if max <= 0.0 {
        out.push_str("  (no data)\n");
        return out;
    }
    let label_w = bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, v) in bars {
        let n = ((v / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "  {label:>label_w$} | {} {}\n",
            "█".repeat(n.max(if *v > 0.0 { 1 } else { 0 })),
            format_quantity(*v)
        ));
    }
    out
}

/// Human-readable magnitude: 372000 → "372K", 2.0e6 → "2.0M", 0.5 → "0.50".
pub fn format_quantity(v: f64) -> String {
    let a = v.abs();
    if a >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if a >= 1e3 {
        format!("{:.0}K", v / 1e3)
    } else if a >= 10.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chart_renders_extremes() {
        let s = vec![Series::new(
            "throughput",
            vec![(1.0, 100.0), (10.0, 500.0), (30.0, 900.0)],
        )];
        let chart = line_chart("Fig X", &s, 40, 10);
        assert!(chart.contains("Fig X"));
        assert!(chart.contains("900"));
        assert!(chart.contains("o"), "glyph must appear:\n{chart}");
        assert!(chart.contains("throughput"));
        // Rightmost column holds the last point on the top row.
        let lines: Vec<&str> = chart.lines().collect();
        let top_data_row = lines[2];
        assert!(top_data_row.trim_end().ends_with('o'), "{chart}");
    }

    #[test]
    fn line_chart_multiple_series_distinct_glyphs() {
        let s = vec![
            Series::new("a", vec![(0.0, 0.0), (1.0, 1.0)]),
            Series::new("b", vec![(0.0, 1.0), (1.0, 0.0)]),
        ];
        let chart = line_chart("t", &s, 20, 6);
        assert!(chart.contains('o'));
        assert!(chart.contains('+'));
    }

    #[test]
    fn line_chart_handles_empty_and_flat() {
        let chart = line_chart("t", &[], 20, 6);
        assert!(chart.contains("no data"));
        let flat = vec![Series::new("f", vec![(0.0, 5.0), (1.0, 5.0)])];
        let chart = line_chart("t", &flat, 20, 6);
        assert!(chart.contains('o'));
    }

    #[test]
    #[should_panic(expected = "canvas too small")]
    fn tiny_canvas_rejected() {
        let _ = line_chart("t", &[], 4, 2);
    }

    #[test]
    fn bar_chart_proportional() {
        let bars = vec![
            ("C".to_owned(), 30.0),
            ("B".to_owned(), 38.0),
            ("A".to_owned(), 148.0),
        ];
        let chart = bar_chart("Fig 4b", &bars, 30);
        let a_len = chart
            .lines()
            .find(|l| l.contains("A |"))
            .unwrap()
            .matches('█')
            .count();
        let c_len = chart
            .lines()
            .find(|l| l.contains("C |"))
            .unwrap()
            .matches('█')
            .count();
        assert!(a_len > c_len * 3, "{chart}");
        assert_eq!(a_len, 30);
    }

    #[test]
    fn quantities_format() {
        assert_eq!(format_quantity(372_000.0), "372K");
        assert_eq!(format_quantity(2_000_000.0), "2.0M");
        assert_eq!(format_quantity(92.4), "92");
        assert_eq!(format_quantity(0.5), "0.50");
    }
}
