//! Shared infrastructure for the experiment drivers.
//!
//! Each paper artifact (Table I/II, Figs 1-13, plus ablations) has a driver
//! in `src/bin/experiments.rs`; this library holds the run-context, CSV
//! output, and table-formatting helpers they share.

pub mod chart;
pub mod json;
pub mod report;

use std::fs;
use std::path::PathBuf;

/// Common knobs for every experiment run.
#[derive(Debug, Clone)]
pub struct ExpCtx {
    /// Divisor applied to the paper's per-client request counts. The
    /// workloads are closed-loop and steady-state, so throughput and power
    /// are insensitive to run length; energy totals are reported alongside
    /// the factor. `1` reproduces paper-scale counts.
    pub scale: u64,
    /// RNG seed (the paper averages 5 runs; drivers report mean ± err over
    /// `runs` seeds derived from this one).
    pub seed: u64,
    /// Seeded repetitions per configuration.
    pub runs: u64,
    /// Where CSV outputs land.
    pub out_dir: PathBuf,
}

impl Default for ExpCtx {
    fn default() -> Self {
        ExpCtx {
            scale: 10,
            seed: 42,
            runs: 1,
            out_dir: PathBuf::from("results"),
        }
    }
}

impl ExpCtx {
    /// Scales a paper-scale request count.
    pub fn ops(&self, paper_ops: u64) -> u64 {
        (paper_ops / self.scale).max(200)
    }

    /// Writes rows as CSV under the output directory.
    ///
    /// # Panics
    ///
    /// Panics if the output directory cannot be created or written — the
    /// drivers are command-line tools and fail loudly.
    pub fn write_csv(&self, name: &str, header: &str, rows: &[Vec<String>]) {
        fs::create_dir_all(&self.out_dir).expect("create results dir");
        let mut out = String::from(header);
        out.push('\n');
        for row in rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        let path = self.out_dir.join(format!("{name}.csv"));
        fs::write(&path, out).expect("write csv");
        println!("  -> {}", path.display());
    }
}

/// Formats a mean ± stddev pair the way the paper prints error bars.
pub fn mean_err(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

/// Renders a numeric throughput like the paper ("372K", "2.0M").
pub fn kops(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else {
        format!("{:.0}K", v / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_scaling_floors() {
        let ctx = ExpCtx {
            scale: 10,
            ..ExpCtx::default()
        };
        assert_eq!(ctx.ops(100_000), 10_000);
        assert_eq!(ctx.ops(500), 200, "floor keeps runs meaningful");
    }

    #[test]
    fn mean_err_basics() {
        let (m, e) = mean_err(&[2.0, 4.0]);
        assert_eq!(m, 3.0);
        assert_eq!(e, 1.0);
        assert_eq!(mean_err(&[]), (0.0, 0.0));
        assert_eq!(mean_err(&[5.0]), (5.0, 0.0));
    }

    #[test]
    fn kops_formatting() {
        assert_eq!(kops(372_000.0), "372K");
        assert_eq!(kops(2_004_000.0), "2.00M");
    }
}
