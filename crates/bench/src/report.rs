//! Schema of the machine-readable standalone benchmark report
//! (`BENCH_standalone.json`) and its validator.
//!
//! The emitter (`src/bin/standalone_ycsb.rs`) and CI's smoke check share
//! this validator, so the schema can't silently drift from what downstream
//! tooling parses.

use crate::json::Json;

/// Current schema version emitted and accepted.
pub const SCHEMA_VERSION: u64 = 1;

fn field<'a>(obj: &'a Json, ctx: &str, key: &str) -> Result<&'a Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("{ctx}: missing \"{key}\""))
}

fn num(obj: &Json, ctx: &str, key: &str) -> Result<f64, String> {
    field(obj, ctx, key)?
        .as_f64()
        .ok_or_else(|| format!("{ctx}: \"{key}\" must be a number"))
}

fn string<'a>(obj: &'a Json, ctx: &str, key: &str) -> Result<&'a str, String> {
    field(obj, ctx, key)?
        .as_str()
        .ok_or_else(|| format!("{ctx}: \"{key}\" must be a string"))
}

fn latency(obj: &Json, ctx: &str, key: &str) -> Result<(), String> {
    let lat = field(obj, ctx, key)?;
    let ctx = format!("{ctx}.{key}");
    let count = num(lat, &ctx, "count")?;
    for stat in ["mean", "p50", "p90", "p99", "max"] {
        let v = num(lat, &ctx, stat)?;
        if count > 0.0 && v < 0.0 {
            return Err(format!("{ctx}: \"{stat}\" must be non-negative"));
        }
    }
    Ok(())
}

/// Validates a parsed `BENCH_standalone.json` document.
///
/// # Errors
///
/// The first schema violation found, as a human-readable message.
pub fn validate_standalone_report(doc: &Json) -> Result<(), String> {
    let version = num(doc, "report", "schema_version")?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!("unsupported schema_version {version}"));
    }
    let benchmark = string(doc, "report", "benchmark")?;
    if benchmark != "standalone_ycsb" {
        return Err(format!("unexpected benchmark {benchmark:?}"));
    }

    let config = field(doc, "report", "config")?;
    for key in ["record_count", "ops_per_client", "clients", "value_bytes"] {
        let v = num(config, "config", key)?;
        if v <= 0.0 {
            return Err(format!("config: \"{key}\" must be positive"));
        }
    }

    let results = field(doc, "report", "results")?
        .as_array()
        .ok_or("report: \"results\" must be an array")?;
    if results.is_empty() {
        return Err("report: \"results\" must be non-empty".into());
    }
    for (i, result) in results.iter().enumerate() {
        let ctx = format!("results[{i}]");
        let dispatch = string(result, &ctx, "dispatch")?;
        if !matches!(dispatch, "shard_affinity" | "global_queue") {
            return Err(format!("{ctx}: unknown dispatch {dispatch:?}"));
        }
        string(result, &ctx, "mix")?;
        let read_fraction = num(result, &ctx, "read_fraction")?;
        if !(0.0..=1.0).contains(&read_fraction) {
            return Err(format!("{ctx}: read_fraction out of range"));
        }
        for key in ["workers", "batch_size", "ops"] {
            if num(result, &ctx, key)? < 1.0 {
                return Err(format!("{ctx}: \"{key}\" must be >= 1"));
            }
        }
        for key in ["elapsed_secs", "throughput_ops_per_sec"] {
            if num(result, &ctx, key)? <= 0.0 {
                return Err(format!("{ctx}: \"{key}\" must be positive"));
            }
        }
        latency(result, &ctx, "read_latency_us")?;
        latency(result, &ctx, "write_latency_us")?;
        // The background-cleaner block is optional (older reports predate
        // it), but when present its counters must be non-negative.
        if let Some(cleaner) = result.get("cleaner") {
            let cctx = format!("{ctx}.cleaner");
            for key in [
                "passes",
                "segments_freed",
                "segments_compacted",
                "bytes_relocated",
                "tombstones_dropped",
                "busy_ns",
            ] {
                if num(cleaner, &cctx, key)? < 0.0 {
                    return Err(format!("{cctx}: \"{key}\" must be non-negative"));
                }
            }
        }
        // The read-path block is optional (older reports predate it), but
        // when present its mode must be known and its counters coherent.
        if let Some(read_path) = result.get("read_path") {
            let rctx = format!("{ctx}.read_path");
            validate_read_path_block(read_path, &rctx)?;
        }
        // The per-stage latency decomposition is optional (older reports
        // predate it); when present every stage summary must be complete.
        if let Some(stages) = result.get("stages") {
            let sctx = format!("{ctx}.stages");
            for key in [
                "queue_wait_ns",
                "read_service_ns",
                "write_service_ns",
                "fallback_locked_ns",
            ] {
                let stage = field(stages, &sctx, key)?;
                let kctx = format!("{sctx}.{key}");
                if num(stage, &kctx, "count")? < 0.0 {
                    return Err(format!("{kctx}: \"count\" must be non-negative"));
                }
                for stat in ["mean_ns", "p50_ns", "p99_ns", "max_ns"] {
                    if num(stage, &kctx, stat)? < 0.0 {
                        return Err(format!("{kctx}: \"{stat}\" must be non-negative"));
                    }
                }
            }
        }
        // The per-op-class energy attribution is optional; when present the
        // class splits must carry non-negative joules.
        if let Some(energy) = result.get("energy") {
            validate_energy_block(energy, &format!("{ctx}.energy"))?;
        }
    }

    let comparison = field(doc, "report", "comparison")?;
    num(comparison, "comparison", "workers")?;
    string(comparison, "comparison", "mix")?;
    let baseline = num(comparison, "comparison", "baseline_ops_per_sec")?;
    let affinity = num(comparison, "comparison", "affinity_ops_per_sec")?;
    let speedup = num(comparison, "comparison", "speedup")?;
    if baseline <= 0.0 || affinity <= 0.0 {
        return Err("comparison: throughputs must be positive".into());
    }
    if (speedup - affinity / baseline).abs() > 1e-6 * speedup.max(1.0) {
        return Err("comparison: speedup != affinity/baseline".into());
    }

    // The replicated mini-cluster section is optional (older reports
    // predate it), but when present it must be coherent.
    if let Some(mini) = doc.get("mini_cluster") {
        for key in ["servers", "replication", "record_count", "ops"] {
            if num(mini, "mini_cluster", key)? < 1.0 {
                return Err(format!("mini_cluster: \"{key}\" must be >= 1"));
            }
        }
        if num(mini, "mini_cluster", "replication")? >= num(mini, "mini_cluster", "servers")? {
            return Err("mini_cluster: replication must be < servers".into());
        }
        string(mini, "mini_cluster", "mix")?;
        for key in ["elapsed_secs", "throughput_ops_per_sec"] {
            if num(mini, "mini_cluster", key)? <= 0.0 {
                return Err(format!("mini_cluster: \"{key}\" must be positive"));
            }
        }
        latency(mini, "mini_cluster", "read_latency_us")?;
        latency(mini, "mini_cluster", "write_latency_us")?;
    }
    Ok(())
}

/// Validates an `energy` block: a modelled total plus per-op-class splits
/// carrying non-negative joules.
fn validate_energy_block(energy: &Json, ectx: &str) -> Result<(), String> {
    num(energy, ectx, "total_joules")?;
    let classes = field(energy, ectx, "classes")?
        .as_array()
        .ok_or_else(|| format!("{ectx}: \"classes\" must be an array"))?;
    for (j, class) in classes.iter().enumerate() {
        let cctx = format!("{ectx}.classes[{j}]");
        string(class, &cctx, "name")?;
        for key in ["ops", "joules", "micro_joules_per_op", "ops_per_joule"] {
            if num(class, &cctx, key)? < 0.0 {
                return Err(format!("{cctx}: \"{key}\" must be non-negative"));
            }
        }
    }
    Ok(())
}

/// Validates a parsed `BENCH_wire.json` document (the socket-engine YCSB
/// benchmark: real `rmcd` processes over loopback TCP, driven through
/// `rmc-wire` framed connections).
///
/// Beyond shape, the validator enforces wire health: every row must have
/// actually moved frames, and a clean loopback run must decode every frame
/// it received — a non-zero `decode_errors` means framing corruption, not
/// load.
///
/// # Errors
///
/// The first schema violation found, as a human-readable message.
pub fn validate_wire_report(doc: &Json) -> Result<(), String> {
    let version = num(doc, "report", "schema_version")?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!("unsupported schema_version {version}"));
    }
    let benchmark = string(doc, "report", "benchmark")?;
    if benchmark != "wire_ycsb" {
        return Err(format!("unexpected benchmark {benchmark:?}"));
    }

    let config = field(doc, "report", "config")?;
    for key in [
        "servers",
        "replication",
        "clients",
        "record_count",
        "ops_per_client",
        "value_bytes",
    ] {
        if num(config, "config", key)? <= 0.0 {
            return Err(format!("config: \"{key}\" must be positive"));
        }
    }
    if num(config, "config", "replication")? >= num(config, "config", "servers")? {
        return Err("config: replication must be < servers".into());
    }

    let results = field(doc, "report", "results")?
        .as_array()
        .ok_or("report: \"results\" must be an array")?;
    if results.is_empty() {
        return Err("report: \"results\" must be non-empty".into());
    }
    for (i, result) in results.iter().enumerate() {
        let ctx = format!("results[{i}]");
        let backend = string(result, &ctx, "backend")?;
        if backend != "net_cluster" {
            return Err(format!("{ctx}: unknown backend {backend:?}"));
        }
        string(result, &ctx, "mix")?;
        let read_fraction = num(result, &ctx, "read_fraction")?;
        if !(0.0..=1.0).contains(&read_fraction) {
            return Err(format!("{ctx}: read_fraction out of range"));
        }
        for key in ["clients", "batch_size", "ops"] {
            if num(result, &ctx, key)? < 1.0 {
                return Err(format!("{ctx}: \"{key}\" must be >= 1"));
            }
        }
        for key in ["elapsed_secs", "throughput_ops_per_sec"] {
            if num(result, &ctx, key)? <= 0.0 {
                return Err(format!("{ctx}: \"{key}\" must be positive"));
            }
        }
        latency(result, &ctx, "read_latency_us")?;
        latency(result, &ctx, "write_latency_us")?;
        // The wire-health block is mandatory — it is the proof the row ran
        // over sockets at all.
        let wire = field(result, &ctx, "wire")?;
        let wctx = format!("{ctx}.wire");
        for key in ["connects", "reconnects", "frames_tx", "frames_rx"] {
            if num(wire, &wctx, key)? < 0.0 {
                return Err(format!("{wctx}: \"{key}\" must be non-negative"));
            }
        }
        if num(wire, &wctx, "frames_tx")? < 1.0 || num(wire, &wctx, "frames_rx")? < 1.0 {
            return Err(format!("{wctx}: run moved no frames — not a wire run"));
        }
        if num(wire, &wctx, "decode_errors")? != 0.0 {
            return Err(format!("{wctx}: clean loopback run decoded errors"));
        }
        // The replication ack-wait decomposition from the servers' live
        // Stats RPC (counts sum over servers; quantiles quote the worst).
        let stages = field(result, &ctx, "stages")?;
        let stage = field(stages, &format!("{ctx}.stages"), "replication_ack_wait")?;
        let sctx = format!("{ctx}.stages.replication_ack_wait");
        for key in ["count", "worst_p50_ns", "worst_p99_ns", "max_ns"] {
            if num(stage, &sctx, key)? < 0.0 {
                return Err(format!("{sctx}: \"{key}\" must be non-negative"));
            }
        }
        if let Some(energy) = result.get("energy") {
            validate_energy_block(energy, &format!("{ctx}.energy"))?;
        }
    }

    let comparison = field(doc, "report", "comparison")?;
    num(comparison, "comparison", "clients")?;
    let read50 = num(comparison, "comparison", "read50_ops_per_sec")?;
    let read100 = num(comparison, "comparison", "read100_ops_per_sec")?;
    let speedup = num(comparison, "comparison", "speedup")?;
    if read50 <= 0.0 || read100 <= 0.0 {
        return Err("comparison: throughputs must be positive".into());
    }
    if (speedup - read100 / read50).abs() > 1e-6 * speedup.max(1.0) {
        return Err("comparison: speedup != read100/read50".into());
    }
    Ok(())
}

/// The read-path mode names the report schema accepts (stable values).
pub const READ_PATHS: [&str; 3] = ["locked_copy", "lockfree_copy", "lockfree_zero_copy"];

/// Validates a `read_path` block: `{mode, lockfree, fallback_locked}`,
/// where a locked run must report zero lock-free reads and a lock-free
/// run must report at least one.
fn validate_read_path_block(block: &Json, ctx: &str) -> Result<(), String> {
    let mode = string(block, ctx, "mode")?;
    if !READ_PATHS.contains(&mode) {
        return Err(format!("{ctx}: unknown mode {mode:?}"));
    }
    let lockfree = num(block, ctx, "lockfree")?;
    let fallback = num(block, ctx, "fallback_locked")?;
    if lockfree < 0.0 || fallback < 0.0 {
        return Err(format!("{ctx}: counters must be non-negative"));
    }
    if mode == "locked_copy" && lockfree != 0.0 {
        return Err(format!("{ctx}: locked run reports lock-free reads"));
    }
    if mode != "locked_copy" && lockfree == 0.0 {
        return Err(format!("{ctx}: lock-free run never took the fast path"));
    }
    Ok(())
}

/// Validates a parsed `BENCH_read.json` document (the read-path ablation
/// benchmark: locked+copy vs lock-free+copy vs lock-free+zero-copy).
///
/// # Errors
///
/// The first schema violation found, as a human-readable message.
pub fn validate_read_report(doc: &Json) -> Result<(), String> {
    let version = num(doc, "report", "schema_version")?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!("unsupported schema_version {version}"));
    }
    let benchmark = string(doc, "report", "benchmark")?;
    if benchmark != "read_path_ablation" {
        return Err(format!("unexpected benchmark {benchmark:?}"));
    }

    let config = field(doc, "report", "config")?;
    for key in ["record_count", "ops_per_client", "value_bytes", "shards"] {
        if num(config, "config", key)? <= 0.0 {
            return Err(format!("config: \"{key}\" must be positive"));
        }
    }

    let results = field(doc, "report", "results")?
        .as_array()
        .ok_or("report: \"results\" must be an array")?;
    if results.is_empty() {
        return Err("report: \"results\" must be non-empty".into());
    }
    let mut seen_paths = Vec::new();
    for (i, result) in results.iter().enumerate() {
        let ctx = format!("results[{i}]");
        if num(result, &ctx, "clients")? < 1.0 || num(result, &ctx, "ops")? < 1.0 {
            return Err(format!("{ctx}: \"clients\" and \"ops\" must be >= 1"));
        }
        for key in ["elapsed_secs", "throughput_ops_per_sec"] {
            if num(result, &ctx, key)? <= 0.0 {
                return Err(format!("{ctx}: \"{key}\" must be positive"));
            }
        }
        latency(result, &ctx, "read_latency_us")?;
        let block = field(result, &ctx, "read_path")?;
        validate_read_path_block(block, &format!("{ctx}.read_path"))?;
        seen_paths.push(string(block, &ctx, "mode")?.to_owned());
    }
    // The ablation is only meaningful with all three paths present.
    for path in READ_PATHS {
        if !seen_paths.iter().any(|p| p == path) {
            return Err(format!("results: missing \"{path}\" run"));
        }
    }

    let comparison = field(doc, "report", "comparison")?;
    num(comparison, "comparison", "clients")?;
    let locked = num(comparison, "comparison", "locked_ops_per_sec")?;
    let zero_copy = num(comparison, "comparison", "zero_copy_ops_per_sec")?;
    let speedup = num(comparison, "comparison", "speedup")?;
    if locked <= 0.0 || zero_copy <= 0.0 {
        return Err("comparison: throughputs must be positive".into());
    }
    if (speedup - zero_copy / locked).abs() > 1e-6 * speedup.max(1.0) {
        return Err("comparison: speedup != zero_copy/locked".into());
    }
    Ok(())
}

/// Validates a parsed `BENCH_cleaner.json` document (the cleaner-ablation
/// benchmark: inline vs concurrent vs concurrent-without-compaction).
///
/// # Errors
///
/// The first schema violation found, as a human-readable message.
pub fn validate_cleaner_report(doc: &Json) -> Result<(), String> {
    let version = num(doc, "report", "schema_version")?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!("unsupported schema_version {version}"));
    }
    let benchmark = string(doc, "report", "benchmark")?;
    if benchmark != "cleaner_ablation" {
        return Err(format!("unexpected benchmark {benchmark:?}"));
    }

    let config = field(doc, "report", "config")?;
    for key in [
        "record_count",
        "ops_per_client",
        "clients",
        "value_bytes",
        "shards",
        "worker_threads",
        "memory_budget_bytes",
    ] {
        if num(config, "config", key)? <= 0.0 {
            return Err(format!("config: \"{key}\" must be positive"));
        }
    }
    let live = num(config, "config", "live_fraction")?;
    if !(0.0..=1.0).contains(&live) {
        return Err("config: live_fraction out of range".into());
    }

    let results = field(doc, "report", "results")?
        .as_array()
        .ok_or("report: \"results\" must be an array")?;
    if results.is_empty() {
        return Err("report: \"results\" must be non-empty".into());
    }
    let mut seen_modes = Vec::new();
    for (i, result) in results.iter().enumerate() {
        let ctx = format!("results[{i}]");
        let mode = string(result, &ctx, "mode")?;
        if !matches!(mode, "inline" | "concurrent" | "concurrent_no_compaction") {
            return Err(format!("{ctx}: unknown mode {mode:?}"));
        }
        seen_modes.push(mode.to_owned());
        if num(result, &ctx, "ops")? < 1.0 {
            return Err(format!("{ctx}: \"ops\" must be >= 1"));
        }
        for key in ["elapsed_secs", "throughput_ops_per_sec"] {
            if num(result, &ctx, key)? <= 0.0 {
                return Err(format!("{ctx}: \"{key}\" must be positive"));
            }
        }
        latency(result, &ctx, "write_latency_us")?;
        for key in [
            "cleanings",
            "segments_freed",
            "segments_compacted",
            "survivor_bytes",
            "bytes_relocated",
            "tombstones_dropped",
            "cleaner_passes",
            "cleaner_busy_ns",
        ] {
            if num(result, &ctx, key)? < 0.0 {
                return Err(format!("{ctx}: \"{key}\" must be non-negative"));
            }
        }
        // Memory pressure must actually have engaged the cleaner.
        if num(result, &ctx, "segments_freed")? == 0.0 {
            return Err(format!("{ctx}: run never cleaned — no memory pressure"));
        }
        // In inline mode there are no cleaner threads to run passes.
        if mode == "inline" && num(result, &ctx, "cleaner_passes")? != 0.0 {
            return Err(format!("{ctx}: inline run reports background passes"));
        }
    }
    for mode in ["inline", "concurrent"] {
        if !seen_modes.iter().any(|m| m == mode) {
            return Err(format!("results: missing \"{mode}\" run"));
        }
    }

    let comparison = field(doc, "report", "comparison")?;
    let inline = num(comparison, "comparison", "inline_ops_per_sec")?;
    let concurrent = num(comparison, "comparison", "concurrent_ops_per_sec")?;
    let speedup = num(comparison, "comparison", "speedup")?;
    if inline <= 0.0 || concurrent <= 0.0 {
        return Err("comparison: throughputs must be positive".into());
    }
    if (speedup - concurrent / inline).abs() > 1e-6 * speedup.max(1.0) {
        return Err("comparison: speedup != concurrent/inline".into());
    }
    Ok(())
}

/// Computes the obs-ablation overhead statistic from per-round paired
/// throughputs `(disabled, enabled)`: each round's relative overhead in
/// percent, then the 25 %-trimmed mean across rounds. The emitter runs
/// each round's pair back to back with alternating order, so this
/// statistic cancels both slow drift and run-order effects that would
/// otherwise swamp a ~1 % signal on shared hardware. Shared between the
/// emitter and [`validate_obs_report`], which recomputes it from the
/// report's own rows.
///
/// # Errors
///
/// When `rounds` is empty or a throughput is non-positive.
pub fn paired_overhead_percent(rounds: &[(f64, f64)]) -> Result<f64, String> {
    if rounds.is_empty() {
        return Err("no paired rounds to compare".into());
    }
    let mut deltas = Vec::with_capacity(rounds.len());
    for &(disabled, enabled) in rounds {
        if disabled <= 0.0 || enabled <= 0.0 {
            return Err("paired throughputs must be positive".into());
        }
        deltas.push((disabled - enabled) / disabled * 100.0);
    }
    deltas.sort_by(f64::total_cmp);
    let trim = deltas.len() / 4;
    let kept = &deltas[trim..deltas.len() - trim];
    Ok(kept.iter().sum::<f64>() / kept.len() as f64)
}

/// Validates a parsed `BENCH_obs.json` document (the observability
/// ablation: instrumentation enabled vs the kill-switch baseline on the
/// read-path hot loop). The validator enforces the overhead budget, so
/// CI's `--check` pass doubles as the acceptance gate.
///
/// # Errors
///
/// The first schema violation found, as a human-readable message.
pub fn validate_obs_report(doc: &Json) -> Result<(), String> {
    let version = num(doc, "report", "schema_version")?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!("unsupported schema_version {version}"));
    }
    let benchmark = string(doc, "report", "benchmark")?;
    if benchmark != "obs_overhead" {
        return Err(format!("unexpected benchmark {benchmark:?}"));
    }

    let config = field(doc, "report", "config")?;
    for key in [
        "record_count",
        "ops_per_client",
        "value_bytes",
        "shards",
        "rounds",
    ] {
        if num(config, "config", key)? <= 0.0 {
            return Err(format!("config: \"{key}\" must be positive"));
        }
    }

    let results = field(doc, "report", "results")?
        .as_array()
        .ok_or("report: \"results\" must be an array")?;
    if results.is_empty() {
        return Err("report: \"results\" must be non-empty".into());
    }
    let mut seen_modes = Vec::new();
    for (i, result) in results.iter().enumerate() {
        let ctx = format!("results[{i}]");
        let mode = string(result, &ctx, "mode")?;
        if !matches!(mode, "enabled" | "disabled") {
            return Err(format!("{ctx}: unknown mode {mode:?}"));
        }
        seen_modes.push(mode.to_owned());
        if num(result, &ctx, "round")? < 0.0 || num(result, &ctx, "ops")? < 1.0 {
            return Err(format!("{ctx}: \"round\"/\"ops\" out of range"));
        }
        for key in ["elapsed_secs", "throughput_ops_per_sec"] {
            if num(result, &ctx, key)? <= 0.0 {
                return Err(format!("{ctx}: \"{key}\" must be positive"));
            }
        }
        latency(result, &ctx, "read_latency_us")?;
        // The stage histograms are the proof the switch actually flipped:
        // an enabled run must have sampled some reads, a disabled run none.
        let samples = num(result, &ctx, "stage_samples")?;
        if mode == "enabled" && samples < 1.0 {
            return Err(format!("{ctx}: enabled run recorded no stage samples"));
        }
        if mode == "disabled" && samples != 0.0 {
            return Err(format!("{ctx}: disabled run recorded stage samples"));
        }
    }
    for mode in ["enabled", "disabled"] {
        if !seen_modes.iter().any(|m| m == mode) {
            return Err(format!("results: missing \"{mode}\" run"));
        }
    }

    let comparison = field(doc, "report", "comparison")?;
    let disabled = num(comparison, "comparison", "disabled_ops_per_sec")?;
    let enabled = num(comparison, "comparison", "enabled_ops_per_sec")?;
    let overhead = num(comparison, "comparison", "overhead_percent")?;
    let budget = num(comparison, "comparison", "budget_percent")?;
    if disabled <= 0.0 || enabled <= 0.0 {
        return Err("comparison: throughputs must be positive".into());
    }
    if budget <= 0.0 {
        return Err("comparison: budget_percent must be positive".into());
    }
    // Recompute the paired statistic from the report's own rows so the
    // headline number can't drift from the data behind it.
    let mut per_round: std::collections::BTreeMap<i64, (Option<f64>, Option<f64>)> =
        std::collections::BTreeMap::new();
    for (i, result) in results.iter().enumerate() {
        let ctx = format!("results[{i}]");
        let round = num(result, &ctx, "round")? as i64;
        let ops = num(result, &ctx, "throughput_ops_per_sec")?;
        let slot = per_round.entry(round).or_default();
        match string(result, &ctx, "mode")? {
            "disabled" => slot.0 = Some(ops),
            _ => slot.1 = Some(ops),
        }
    }
    let mut pairs = Vec::new();
    for (round, (d, e)) in per_round {
        let (Some(d), Some(e)) = (d, e) else {
            return Err(format!("results: round {round} is missing a mode"));
        };
        pairs.push((d, e));
    }
    let expected = paired_overhead_percent(&pairs)?;
    if (overhead - expected).abs() > 1e-6 * expected.abs().max(1.0) {
        return Err("comparison: overhead_percent inconsistent with results".into());
    }
    if overhead > budget {
        return Err(format!(
            "comparison: overhead {overhead:.2}% exceeds the {budget}% budget"
        ));
    }
    Ok(())
}

/// The backup staging engines the recovery ablation compares.
pub const RECOVERY_ENGINES: [&str; 2] = ["memory", "file"];

/// Validates a parsed `BENCH_recovery.json` document (the recovery
/// ablation: crash-recovery time vs. data size vs. recovery-master count,
/// with backups staged in memory vs. on checksummed segment files).
///
/// Beyond shape, the validator enforces the sweep the ablation exists for:
/// each engine must cover at least 3 distinct data sizes and 2 distinct
/// recovery-master counts, every row's recovery bandwidth must match its
/// own numbers, file rows must prove they actually wrote files (and read
/// them back corruption-free), and `case` strings must be unique — they
/// are the row identity `bench_compare` diffs.
///
/// # Errors
///
/// The first schema violation found, as a human-readable message.
pub fn validate_recovery_report(doc: &Json) -> Result<(), String> {
    let version = num(doc, "report", "schema_version")?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!("unsupported schema_version {version}"));
    }
    let benchmark = string(doc, "report", "benchmark")?;
    if benchmark != "recovery_ablation" {
        return Err(format!("unexpected benchmark {benchmark:?}"));
    }

    let config = field(doc, "report", "config")?;
    for key in ["replication", "value_bytes"] {
        if num(config, "config", key)? < 1.0 {
            return Err(format!("config: \"{key}\" must be >= 1"));
        }
    }
    string(config, "config", "fsync")?;

    let results = field(doc, "report", "results")?
        .as_array()
        .ok_or("report: \"results\" must be an array")?;
    if results.is_empty() {
        return Err("report: \"results\" must be non-empty".into());
    }
    let mut cases = Vec::new();
    let mut sizes: std::collections::BTreeMap<String, std::collections::BTreeSet<u64>> =
        std::collections::BTreeMap::new();
    let mut masters: std::collections::BTreeMap<String, std::collections::BTreeSet<u64>> =
        std::collections::BTreeMap::new();
    for (i, result) in results.iter().enumerate() {
        let ctx = format!("results[{i}]");
        let engine = string(result, &ctx, "engine")?;
        if !RECOVERY_ENGINES.contains(&engine) {
            return Err(format!("{ctx}: unknown engine {engine:?}"));
        }
        let case = string(result, &ctx, "case")?;
        if case.is_empty() {
            return Err(format!("{ctx}: \"case\" must be non-empty"));
        }
        if cases.contains(&case.to_owned()) {
            return Err(format!("{ctx}: duplicate case {case:?}"));
        }
        cases.push(case.to_owned());
        let servers = num(result, &ctx, "servers")?;
        if servers < 2.0 {
            return Err(format!("{ctx}: \"servers\" must be >= 2"));
        }
        let rec_masters = num(result, &ctx, "recovery_masters")?;
        if rec_masters < 1.0 || rec_masters >= servers {
            return Err(format!("{ctx}: \"recovery_masters\" must be in 1..servers"));
        }
        for key in ["records", "data_bytes", "victim_bytes"] {
            if num(result, &ctx, key)? < 1.0 {
                return Err(format!("{ctx}: \"{key}\" must be >= 1"));
            }
        }
        if num(result, &ctx, "detection_secs")? < 0.0 {
            return Err(format!("{ctx}: \"detection_secs\" must be non-negative"));
        }
        let recovery_secs = num(result, &ctx, "recovery_secs")?;
        let throughput = num(result, &ctx, "throughput_ops_per_sec")?;
        if recovery_secs <= 0.0 || throughput <= 0.0 {
            return Err(format!(
                "{ctx}: \"recovery_secs\" and \"throughput_ops_per_sec\" must be positive"
            ));
        }
        // The headline bandwidth must be the row's own bytes over its own
        // seconds, so a regression in either is visible in the diffed number.
        let expected = num(result, &ctx, "victim_bytes")? / recovery_secs;
        if (throughput - expected).abs() > 1e-6 * expected.max(1.0) {
            return Err(format!(
                "{ctx}: throughput_ops_per_sec inconsistent with victim_bytes/recovery_secs"
            ));
        }
        if engine == "file" {
            // A file row that moved no bytes through the disk engine (or
            // saw corruption on a healthy disk) is not a valid measurement.
            let disk = field(result, &ctx, "disk")?;
            let dctx = format!("{ctx}.disk");
            if num(disk, &dctx, "write_bytes")? < 1.0 {
                return Err(format!("{dctx}: file engine row wrote no bytes"));
            }
            if num(disk, &dctx, "fsyncs")? < 0.0 {
                return Err(format!("{dctx}: \"fsyncs\" must be non-negative"));
            }
            if num(disk, &dctx, "crc_mismatch")? != 0.0 {
                return Err(format!("{dctx}: healthy-disk run detected corruption"));
            }
        }
        sizes
            .entry(engine.to_owned())
            .or_default()
            .insert(num(result, &ctx, "data_bytes")? as u64);
        masters
            .entry(engine.to_owned())
            .or_default()
            .insert(rec_masters as u64);
    }
    for engine in RECOVERY_ENGINES {
        let s = sizes.get(engine).map_or(0, |s| s.len());
        let m = masters.get(engine).map_or(0, |m| m.len());
        if s < 3 {
            return Err(format!(
                "results: engine \"{engine}\" covers {s} data sizes, needs >= 3"
            ));
        }
        if m < 2 {
            return Err(format!(
                "results: engine \"{engine}\" covers {m} recovery-master counts, needs >= 2"
            ));
        }
    }

    let comparison = field(doc, "report", "comparison")?;
    let memory = num(comparison, "comparison", "memory_bytes_per_sec")?;
    let file = num(comparison, "comparison", "file_bytes_per_sec")?;
    let ratio = num(comparison, "comparison", "file_over_memory")?;
    if memory <= 0.0 || file <= 0.0 {
        return Err("comparison: recovery bandwidths must be positive".into());
    }
    if (ratio - file / memory).abs() > 1e-6 * ratio.abs().max(1.0) {
        return Err("comparison: file_over_memory != file/memory".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn minimal() -> String {
        r#"{
          "schema_version": 1,
          "benchmark": "standalone_ycsb",
          "config": {"record_count": 100, "ops_per_client": 50, "clients": 2, "value_bytes": 64},
          "results": [{
            "dispatch": "shard_affinity", "workers": 4, "mix": "read95",
            "read_fraction": 0.95, "batch_size": 1, "ops": 100,
            "elapsed_secs": 0.5, "throughput_ops_per_sec": 200.0,
            "read_latency_us": {"count": 95, "mean": 2.0, "p50": 1.5, "p90": 3.0, "p99": 9.0, "max": 11.0},
            "write_latency_us": {"count": 5, "mean": 5.0, "p50": 4.0, "p90": 8.0, "p99": 9.0, "max": 9.5}
          }],
          "comparison": {"workers": 4, "mix": "read95",
            "baseline_ops_per_sec": 100.0, "affinity_ops_per_sec": 200.0, "speedup": 2.0}
        }"#
        .to_owned()
    }

    #[test]
    fn accepts_minimal_valid_report() {
        validate_standalone_report(&parse(&minimal()).unwrap()).unwrap();
    }

    fn with_mini(mini: &str) -> String {
        minimal().replace(
            "\"comparison\": {",
            &format!("\"mini_cluster\": {mini}, \"comparison\": {{"),
        )
    }

    const MINI_OK: &str = r#"{
        "servers": 4, "replication": 2, "mix": "read95",
        "record_count": 128, "ops": 400,
        "elapsed_secs": 0.2, "throughput_ops_per_sec": 2000.0,
        "read_latency_us": {"count": 380, "mean": 40.0, "p50": 35.0, "p90": 60.0, "p99": 90.0, "max": 120.0},
        "write_latency_us": {"count": 20, "mean": 80.0, "p50": 70.0, "p90": 110.0, "p99": 150.0, "max": 180.0}
    }"#;

    #[test]
    fn accepts_report_with_mini_cluster_section() {
        validate_standalone_report(&parse(&with_mini(MINI_OK)).unwrap()).unwrap();
    }

    #[test]
    fn rejects_incoherent_mini_cluster_section() {
        let bad = MINI_OK.replace("\"replication\": 2", "\"replication\": 4");
        let err = validate_standalone_report(&parse(&with_mini(&bad)).unwrap()).unwrap_err();
        assert!(err.contains("replication"), "got {err}");
    }

    fn minimal_read() -> String {
        r#"{
          "schema_version": 1,
          "benchmark": "read_path_ablation",
          "config": {"record_count": 512, "ops_per_client": 1000, "value_bytes": 64,
            "shards": 4, "smoke": true},
          "results": [
            {"read_path": {"mode": "locked_copy", "lockfree": 0, "fallback_locked": 0},
             "clients": 1, "ops": 1000, "elapsed_secs": 0.1,
             "throughput_ops_per_sec": 10000.0,
             "read_latency_us": {"count": 1000, "mean": 2.0, "p50": 1.5, "p90": 3.0, "p99": 5.0, "max": 9.0}},
            {"read_path": {"mode": "lockfree_copy", "lockfree": 990, "fallback_locked": 10},
             "clients": 1, "ops": 1000, "elapsed_secs": 0.08,
             "throughput_ops_per_sec": 12500.0,
             "read_latency_us": {"count": 1000, "mean": 1.6, "p50": 1.2, "p90": 2.4, "p99": 4.0, "max": 8.0}},
            {"read_path": {"mode": "lockfree_zero_copy", "lockfree": 1000, "fallback_locked": 0},
             "clients": 1, "ops": 1000, "elapsed_secs": 0.05,
             "throughput_ops_per_sec": 20000.0,
             "read_latency_us": {"count": 1000, "mean": 1.0, "p50": 0.8, "p90": 1.5, "p99": 1.9, "max": 5.0}}
          ],
          "comparison": {"clients": 1, "locked_ops_per_sec": 10000.0,
            "zero_copy_ops_per_sec": 20000.0, "speedup": 2.0}
        }"#
        .to_owned()
    }

    #[test]
    fn accepts_minimal_read_report() {
        validate_read_report(&parse(&minimal_read()).unwrap()).unwrap();
    }

    #[test]
    fn rejects_bad_read_reports() {
        for (needle, replacement, expect) in [
            ("read_path_ablation", "other_bench", "benchmark"),
            (
                "\"mode\": \"locked_copy\"",
                "\"mode\": \"telepathy\"",
                "mode",
            ),
            (
                "\"mode\": \"lockfree_zero_copy\", \"lockfree\": 1000",
                "\"mode\": \"lockfree_zero_copy\", \"lockfree\": 0",
                "never took the fast path",
            ),
            (
                "\"mode\": \"locked_copy\", \"lockfree\": 0",
                "\"mode\": \"locked_copy\", \"lockfree\": 7",
                "locked run reports lock-free reads",
            ),
            (
                "\"mode\": \"lockfree_copy\"",
                "\"mode\": \"lockfree_zero_copy\"",
                "missing \"lockfree_copy\"",
            ),
            ("\"speedup\": 2.0", "\"speedup\": 9.0", "speedup"),
        ] {
            let doc = minimal_read().replace(needle, replacement);
            let err = validate_read_report(&parse(&doc).unwrap()).unwrap_err();
            assert!(err.contains(expect), "{expect}: got {err}");
        }
    }

    #[test]
    fn standalone_report_accepts_and_checks_read_path_block() {
        let with_block = minimal().replace(
            "\"read_latency_us\"",
            "\"read_path\": {\"mode\": \"lockfree_zero_copy\", \"lockfree\": 95, \"fallback_locked\": 0},
             \"read_latency_us\"",
        );
        validate_standalone_report(&parse(&with_block).unwrap()).unwrap();
        let bad = with_block.replace("\"lockfree\": 95", "\"lockfree\": 0");
        let err = validate_standalone_report(&parse(&bad).unwrap()).unwrap_err();
        assert!(err.contains("fast path"), "got {err}");
    }

    #[test]
    fn standalone_report_checks_stage_and_energy_blocks() {
        let with_blocks = minimal().replace(
            "\"read_latency_us\"",
            "\"stages\": {
               \"queue_wait_ns\": {\"count\": 3, \"mean_ns\": 900.0, \"p50_ns\": 800, \"p99_ns\": 1500, \"max_ns\": 1600},
               \"read_service_ns\": {\"count\": 3, \"mean_ns\": 700.0, \"p50_ns\": 650, \"p99_ns\": 900, \"max_ns\": 950},
               \"write_service_ns\": {\"count\": 1, \"mean_ns\": 1200.0, \"p50_ns\": 1200, \"p99_ns\": 1200, \"max_ns\": 1200},
               \"fallback_locked_ns\": {\"count\": 0, \"mean_ns\": 0.0, \"p50_ns\": 0, \"p99_ns\": 0, \"max_ns\": 0}},
             \"energy\": {\"total_joules\": 12.5, \"classes\": [
               {\"name\": \"read\", \"ops\": 95, \"joules\": 9.0, \"micro_joules_per_op\": 94736.8, \"ops_per_joule\": 10.6}]},
             \"read_latency_us\"",
        );
        validate_standalone_report(&parse(&with_blocks).unwrap()).unwrap();
        let bad = with_blocks.replace("\"joules\": 9.0", "\"joules\": -1.0");
        let err = validate_standalone_report(&parse(&bad).unwrap()).unwrap_err();
        assert!(err.contains("joules"), "got {err}");
        let missing = with_blocks.replace("\"write_service_ns\"", "\"write_service_zz\"");
        let err = validate_standalone_report(&parse(&missing).unwrap()).unwrap_err();
        assert!(err.contains("write_service_ns"), "got {err}");
    }

    fn minimal_cleaner() -> String {
        r#"{
          "schema_version": 1,
          "benchmark": "cleaner_ablation",
          "config": {"record_count": 2048, "ops_per_client": 2000, "clients": 2,
            "value_bytes": 64, "shards": 2, "worker_threads": 2,
            "memory_budget_bytes": 393216, "live_fraction": 0.58, "smoke": true},
          "results": [
            {"mode": "inline", "ops": 4000, "elapsed_secs": 0.8,
             "throughput_ops_per_sec": 5000.0,
             "write_latency_us": {"count": 4000, "mean": 10.0, "p50": 6.0, "p90": 20.0, "p99": 90.0, "max": 400.0},
             "cleanings": 40, "segments_freed": 40, "segments_compacted": 0,
             "survivor_bytes": 100000, "bytes_relocated": 100000,
             "tombstones_dropped": 0, "cleaner_passes": 0, "cleaner_busy_ns": 0},
            {"mode": "concurrent", "ops": 4000, "elapsed_secs": 0.4,
             "throughput_ops_per_sec": 10000.0,
             "write_latency_us": {"count": 4000, "mean": 6.0, "p50": 5.0, "p90": 12.0, "p99": 30.0, "max": 90.0},
             "cleanings": 50, "segments_freed": 45, "segments_compacted": 12,
             "survivor_bytes": 120000, "bytes_relocated": 120000,
             "tombstones_dropped": 0, "cleaner_passes": 50, "cleaner_busy_ns": 9000000}
          ],
          "comparison": {"inline_ops_per_sec": 5000.0,
            "concurrent_ops_per_sec": 10000.0, "speedup": 2.0}
        }"#
        .to_owned()
    }

    #[test]
    fn accepts_minimal_cleaner_report() {
        validate_cleaner_report(&parse(&minimal_cleaner()).unwrap()).unwrap();
    }

    #[test]
    fn rejects_bad_cleaner_reports() {
        for (needle, replacement, expect) in [
            ("cleaner_ablation", "other_bench", "benchmark"),
            ("\"mode\": \"inline\"", "\"mode\": \"magic\"", "mode"),
            (
                "\"mode\": \"concurrent\"",
                "\"mode\": \"concurrent_no_compaction\"",
                "missing \"concurrent\"",
            ),
            ("\"speedup\": 2.0", "\"speedup\": 1.0", "speedup"),
            (
                "\"segments_freed\": 40",
                "\"segments_freed\": 0",
                "never cleaned",
            ),
            (
                "\"cleaner_passes\": 0,",
                "\"cleaner_passes\": 3,",
                "background passes",
            ),
            (
                "\"live_fraction\": 0.58",
                "\"live_fraction\": 1.7",
                "live_fraction",
            ),
        ] {
            let doc = minimal_cleaner().replace(needle, replacement);
            let err = validate_cleaner_report(&parse(&doc).unwrap()).unwrap_err();
            assert!(err.contains(expect), "{expect}: got {err}");
        }
    }

    fn minimal_obs() -> String {
        r#"{
          "schema_version": 1,
          "benchmark": "obs_overhead",
          "config": {"record_count": 512, "ops_per_client": 10000, "value_bytes": 64,
            "shards": 16, "rounds": 2, "smoke": true},
          "results": [
            {"mode": "disabled", "round": 0, "ops": 10000, "elapsed_secs": 0.1,
             "throughput_ops_per_sec": 100000.0, "stage_samples": 0,
             "read_latency_us": {"count": 10000, "mean": 1.0, "p50": 0.9, "p90": 1.5, "p99": 2.0, "max": 9.0}},
            {"mode": "enabled", "round": 0, "ops": 10000, "elapsed_secs": 0.102,
             "throughput_ops_per_sec": 98039.2, "stage_samples": 313,
             "read_latency_us": {"count": 10000, "mean": 1.0, "p50": 0.9, "p90": 1.5, "p99": 2.1, "max": 9.0}}
          ],
          "comparison": {"disabled_ops_per_sec": 100000.0, "enabled_ops_per_sec": 98039.2,
            "overhead_percent": 1.9608, "budget_percent": 3.0}
        }"#
        .to_owned()
    }

    #[test]
    fn accepts_minimal_obs_report() {
        validate_obs_report(&parse(&minimal_obs()).unwrap()).unwrap();
    }

    #[test]
    fn rejects_bad_obs_reports() {
        for (needle, replacement, expect) in [
            ("obs_overhead", "other_bench", "benchmark"),
            ("\"mode\": \"disabled\"", "\"mode\": \"psychic\"", "mode"),
            (
                "\"stage_samples\": 313",
                "\"stage_samples\": 0",
                "no stage samples",
            ),
            (
                "\"stage_samples\": 0,",
                "\"stage_samples\": 5,",
                "disabled run",
            ),
            (
                "\"overhead_percent\": 1.9608",
                "\"overhead_percent\": 0.5",
                "inconsistent",
            ),
            (
                "\"budget_percent\": 3.0",
                "\"budget_percent\": 1.0",
                "exceeds",
            ),
        ] {
            let doc = minimal_obs().replace(needle, replacement);
            let err = validate_obs_report(&parse(&doc).unwrap()).unwrap_err();
            assert!(err.contains(expect), "{expect}: got {err}");
        }
        // Both arms of the ablation must be present: turn the disabled row
        // into a (sample-carrying) enabled one and expect the missing-mode
        // check to fire.
        let doc = minimal_obs()
            .replace("\"mode\": \"disabled\"", "\"mode\": \"enabled\"")
            .replace("\"stage_samples\": 0,", "\"stage_samples\": 7,");
        let err = validate_obs_report(&parse(&doc).unwrap()).unwrap_err();
        assert!(err.contains("missing \"disabled\""), "got {err}");
    }

    fn minimal_wire() -> String {
        r#"{
          "schema_version": 1,
          "benchmark": "wire_ycsb",
          "config": {"servers": 3, "replication": 2, "clients": 2,
            "record_count": 128, "ops_per_client": 50, "value_bytes": 64, "smoke": true},
          "results": [
            {"backend": "net_cluster", "mix": "read50", "read_fraction": 0.5,
             "clients": 2, "batch_size": 1, "ops": 100,
             "elapsed_secs": 0.2, "throughput_ops_per_sec": 500.0,
             "read_latency_us": {"count": 50, "mean": 90.0, "p50": 80.0, "p90": 120.0, "p99": 200.0, "max": 400.0},
             "write_latency_us": {"count": 50, "mean": 150.0, "p50": 130.0, "p90": 220.0, "p99": 380.0, "max": 900.0},
             "wire": {"connects": 8, "reconnects": 0, "frames_tx": 220, "frames_rx": 220, "decode_errors": 0},
             "stages": {"replication_ack_wait": {"count": 50, "worst_p50_ns": 40000, "worst_p99_ns": 90000, "max_ns": 200000}}},
            {"backend": "net_cluster", "mix": "read100", "read_fraction": 1.0,
             "clients": 2, "batch_size": 1, "ops": 100,
             "elapsed_secs": 0.1, "throughput_ops_per_sec": 1000.0,
             "read_latency_us": {"count": 100, "mean": 85.0, "p50": 78.0, "p90": 110.0, "p99": 160.0, "max": 300.0},
             "write_latency_us": {"count": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0},
             "wire": {"connects": 8, "reconnects": 0, "frames_tx": 210, "frames_rx": 210, "decode_errors": 0},
             "stages": {"replication_ack_wait": {"count": 0, "worst_p50_ns": 0, "worst_p99_ns": 0, "max_ns": 0}}}
          ],
          "comparison": {"clients": 2, "read50_ops_per_sec": 500.0,
            "read100_ops_per_sec": 1000.0, "speedup": 2.0}
        }"#
        .to_owned()
    }

    #[test]
    fn accepts_minimal_wire_report() {
        validate_wire_report(&parse(&minimal_wire()).unwrap()).unwrap();
    }

    #[test]
    fn rejects_bad_wire_reports() {
        for (needle, replacement, expect) in [
            ("wire_ycsb", "other_bench", "benchmark"),
            ("\"replication\": 2", "\"replication\": 3", "replication"),
            (
                "\"backend\": \"net_cluster\", \"mix\": \"read50\"",
                "\"backend\": \"carrier_pigeon\", \"mix\": \"read50\"",
                "backend",
            ),
            ("\"frames_tx\": 220", "\"frames_tx\": 0", "moved no frames"),
            (
                "\"decode_errors\": 0}",
                "\"decode_errors\": 3}",
                "decoded errors",
            ),
            (
                "\"worst_p99_ns\": 90000",
                "\"worst_p99_ns\": -1",
                "worst_p99_ns",
            ),
            ("\"speedup\": 2.0", "\"speedup\": 5.0", "speedup"),
        ] {
            let doc = minimal_wire().replacen(needle, replacement, 1);
            let err = validate_wire_report(&parse(&doc).unwrap()).unwrap_err();
            assert!(err.contains(expect), "{expect}: got {err}");
        }
        // A row without its wire block is not a wire row at all.
        let doc = minimal_wire().replacen("\"wire\":", "\"unwired\":", 1);
        let err = validate_wire_report(&parse(&doc).unwrap()).unwrap_err();
        assert!(err.contains("wire"), "got {err}");
    }

    fn recovery_row(engine: &str, case: &str, servers: u64, data: u64) -> String {
        let masters = servers - 1;
        let victim = data / servers;
        let secs = 0.5;
        format!(
            r#"{{"engine": "{engine}", "case": "{case}", "servers": {servers},
               "recovery_masters": {masters}, "records": 1024, "data_bytes": {data},
               "victim_bytes": {victim}, "detection_secs": 0.15, "recovery_secs": {secs},
               "throughput_ops_per_sec": {tp},
               "disk": {{"write_bytes": 9000, "fsyncs": 4, "crc_mismatch": 0}}}}"#,
            tp = victim as f64 / secs,
        )
    }

    fn minimal_recovery() -> String {
        let mut rows = Vec::new();
        for engine in ["memory", "file"] {
            for (servers, data) in [(4, 1 << 20), (4, 2 << 20), (4, 4 << 20), (8, 4 << 20)] {
                let case = format!("{engine}_s{servers}_d{data}");
                rows.push(recovery_row(engine, &case, servers, data));
            }
        }
        format!(
            r#"{{
              "schema_version": 1,
              "benchmark": "recovery_ablation",
              "config": {{"replication": 2, "value_bytes": 1024, "fsync": "batched:262144,50", "smoke": true}},
              "results": [{}],
              "comparison": {{"memory_bytes_per_sec": 2097152.0, "file_bytes_per_sec": 1048576.0,
                "file_over_memory": 0.5}}
            }}"#,
            rows.join(",\n")
        )
    }

    #[test]
    fn accepts_minimal_recovery_report() {
        validate_recovery_report(&parse(&minimal_recovery()).unwrap()).unwrap();
    }

    #[test]
    fn rejects_bad_recovery_reports() {
        for (needle, replacement, expect) in [
            ("recovery_ablation", "other_bench", "benchmark"),
            (
                "\"engine\": \"memory\"",
                "\"engine\": \"ramdisk\"",
                "engine",
            ),
            (
                "\"case\": \"file_s8_d4194304\"",
                "\"case\": \"file_s4_d1048576\"",
                "duplicate case",
            ),
            (
                "\"throughput_ops_per_sec\": 524288,",
                "\"throughput_ops_per_sec\": 999,",
                "inconsistent",
            ),
            (
                "\"file_over_memory\": 0.5",
                "\"file_over_memory\": 2.0",
                "file_over_memory",
            ),
        ] {
            let doc = minimal_recovery().replacen(needle, replacement, 1);
            let err = validate_recovery_report(&parse(&doc).unwrap()).unwrap_err();
            assert!(err.contains(expect), "{expect}: got {err}");
        }
        // Corrupt every disk block: only the file rows' blocks are checked,
        // but at least one file row must trip the corruption gate.
        let doc = minimal_recovery().replace("\"crc_mismatch\": 0", "\"crc_mismatch\": 2");
        let err = validate_recovery_report(&parse(&doc).unwrap()).unwrap_err();
        assert!(err.contains("corruption"), "got {err}");
        // Coverage gates: dropping the 8-server file row leaves one master
        // count; collapsing a size leaves two sizes.
        let doc = minimal_recovery().replacen(
            "\"engine\": \"file\", \"case\": \"file_s8",
            "\"engine\": \"memory\", \"case\": \"m8",
            1,
        );
        let err = validate_recovery_report(&parse(&doc).unwrap()).unwrap_err();
        assert!(err.contains("recovery-master counts"), "got {err}");
        let doc = minimal_recovery().replace("\"data_bytes\": 2097152", "\"data_bytes\": 1048576");
        let err = validate_recovery_report(&parse(&doc).unwrap()).unwrap_err();
        assert!(err.contains("data sizes"), "got {err}");
    }

    #[test]
    fn rejects_missing_fields_and_bad_values() {
        for (needle, replacement, expect) in [
            (
                "\"schema_version\": 1",
                "\"schema_version\": 2",
                "schema_version",
            ),
            ("standalone_ycsb", "other_bench", "benchmark"),
            (
                "\"results\": [{",
                "\"results\": [], \"ignored\": [{",
                "non-empty",
            ),
            ("shard_affinity", "mystery_mode", "dispatch"),
            (
                "\"read_fraction\": 0.95",
                "\"read_fraction\": 1.5",
                "read_fraction",
            ),
            ("\"speedup\": 2.0", "\"speedup\": 3.0", "speedup"),
            ("\"p99\": 9.0, \"max\": 11.0", "\"max\": 11.0", "p99"),
        ] {
            let doc = minimal().replace(needle, replacement);
            let err = validate_standalone_report(&parse(&doc).unwrap()).unwrap_err();
            assert!(err.contains(expect), "{expect}: got {err}");
        }
    }
}
