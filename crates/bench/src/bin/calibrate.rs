//! Calibration probe: prints model outputs against the paper's anchor
//! points. Used while fitting `rmc_core::Calibration`; kept as a deliverable
//! so future re-calibration is one command away.

use rmc_core::{Cluster, ClusterConfig};
use rmc_sim::{SimDuration, SimTime};
use rmc_ycsb::{StandardWorkload, WorkloadSpec};

fn run(
    servers: usize,
    clients: usize,
    w: StandardWorkload,
    repl: u32,
    ops: u64,
) -> rmc_core::RunReport {
    let workload = WorkloadSpec::standard(w)
        .with_record_count(20_000)
        .with_ops_per_client(ops);
    let cfg = ClusterConfig::new(servers, clients, workload).with_replication(repl);
    Cluster::new(cfg).run()
}

fn main() {
    println!("== Fig 1a anchors (read-only, no replication) ==");
    for (s, c, target) in [
        (1usize, 1usize, 25_000.0),
        (1, 10, 300_000.0),
        (1, 30, 372_000.0),
        (5, 30, 900_000.0),
        (10, 30, 950_000.0),
    ] {
        let r = run(s, c, StandardWorkload::C, 0, 20_000);
        println!(
            "  {s} srv {c} cli: {:>9.0} op/s (paper ~{target:>9.0})  power {:>6.1} W  cpu {:?}",
            r.throughput_ops,
            r.avg_node_watts(),
            r.cpu_min_max_pct()
        );
    }
    println!("== Table I CPU anchors (1 server) ==");
    for (c, target) in [
        (1usize, 49.8),
        (2, 74.2),
        (3, 79.7),
        (4, 89.8),
        (5, 94.3),
        (10, 98.4),
    ] {
        let r = run(1, c, StandardWorkload::C, 0, 10_000);
        let (lo, hi) = r.cpu_min_max_pct();
        println!("  {c} cli: cpu {lo:.1}-{hi:.1}% (paper {target}%)");
    }
    println!("== Table II anchors (10 servers, no replication) ==");
    for (w, c, target) in [
        (StandardWorkload::A, 10usize, 98_000.0),
        (StandardWorkload::A, 20, 106_000.0),
        (StandardWorkload::A, 30, 64_000.0),
        (StandardWorkload::A, 90, 64_000.0),
        (StandardWorkload::B, 10, 236_000.0),
        (StandardWorkload::B, 30, 622_000.0),
        (StandardWorkload::B, 90, 844_000.0),
        (StandardWorkload::C, 10, 236_000.0),
        (StandardWorkload::C, 90, 2_004_000.0),
    ] {
        let r = run(10, c, w, 0, 10_000);
        println!(
            "  {w:?} {c:>2} cli: {:>9.0} op/s (paper ~{target:>9.0})",
            r.throughput_ops
        );
    }
    println!("== Fig 5 anchors (20 servers, workload A, 10 clients) ==");
    for (repl, target) in [
        (1u32, 78_000.0),
        (2, 60_000.0),
        (3, 50_000.0),
        (4, 43_000.0),
    ] {
        let r = run(20, 10, StandardWorkload::A, repl, 10_000);
        println!(
            "  R={repl}: {:>8.0} op/s (paper ~{target:>8.0})  power {:>6.1} W",
            r.throughput_ops,
            r.avg_node_watts()
        );
    }
    println!("== Fig 11 anchor (9 servers, recovery, ~1.085 GB/server) ==");
    for repl in [1u32, 2, 3, 4] {
        // ~1.085 GB/server nominal: 9 servers × 1.085 GB / 1 KB ≈ 9.77 M records; scale 1/10 via 10 KB values.
        let mut workload = WorkloadSpec::standard(StandardWorkload::C)
            .with_record_count(1_000_000)
            .with_ops_per_client(0);
        workload.value_bytes = 10 * 1024;
        let cfg = ClusterConfig::new(9, 1, workload).with_replication(repl);
        let mut cl = Cluster::new(cfg);
        cl.plan_kill(SimTime::from_secs(60), Some(0));
        let r = cl.run_with_min_duration(SimDuration::from_secs(130));
        if let Some(rec) = &r.recovery {
            println!(
                "  R={repl}: recovery {:>6.1}s for {:.2} GB (paper ~{}s for 1.085GB)",
                rec.duration_secs,
                rec.replayed_gb,
                10 * repl
            );
        } else {
            println!("  R={repl}: NO RECOVERY REPORT");
        }
    }
}
