//! Compares two benchmark reports row by row and flags throughput
//! regressions — the guard between a freshly generated `BENCH_*.json` and
//! the committed baseline.
//!
//! Rows are matched by identity key: every string field of the row (e.g.
//! `dispatch`, `mix`, `mode`), the sweep-axis integers (`workers`,
//! `clients`, `batch_size`), and the nested `read_path.mode` when present.
//! That covers `BENCH_standalone.json`, `BENCH_read.json`, and
//! `BENCH_cleaner.json` without per-schema code. `throughput_ops_per_sec`
//! is then diffed per matched pair.
//!
//! By default regressions are warnings (benchmarks on shared CI hardware
//! are noisy) and the exit code stays 0; `--strict` turns any regression
//! beyond the threshold into a failure.
//!
//! With `--history FILE`, each comparison also appends one compact JSONL
//! record (timestamp, benchmark, per-row throughputs, regression count) to
//! `FILE` — a durable trend log (`results/bench_history.jsonl`) that
//! accumulates across runs where individual `BENCH_*.json` files only hold
//! the latest.
//!
//! Usage:
//!   bench_compare --baseline OLD.json --current NEW.json
//!                 [--threshold PCT] [--strict] [--history FILE]

use std::io::Write;
use std::process::ExitCode;
use std::time::{SystemTime, UNIX_EPOCH};

use rmc_bench::json::{self, Json};
use rmc_bench::kops;

/// Default allowed throughput drop, percent.
const DEFAULT_THRESHOLD: f64 = 15.0;

/// The sweep-axis integer fields that identify a row (alongside every
/// string field); other numbers are measurements, not identity.
const KEY_NUMBERS: [&str; 3] = ["workers", "clients", "batch_size"];

/// Builds the stable identity key of a result row.
fn row_key(row: &Json) -> String {
    let Json::Obj(fields) = row else {
        return String::from("<non-object row>");
    };
    let mut parts = Vec::new();
    for (name, value) in fields {
        match value {
            Json::Str(s) => parts.push(format!("{name}={s}")),
            Json::Num(n) if KEY_NUMBERS.contains(&name.as_str()) => {
                parts.push(format!("{name}={n}"));
            }
            _ => {}
        }
    }
    if let Some(mode) = row.get("read_path").and_then(|rp| rp.get("mode")) {
        if let Some(mode) = mode.as_str() {
            parts.push(format!("read_path={mode}"));
        }
    }
    parts.join(" ")
}

fn rows(doc: &Json) -> Vec<(String, f64)> {
    doc.get("results")
        .and_then(Json::as_array)
        .map(|results| {
            results
                .iter()
                .filter_map(|row| {
                    let throughput = row.get("throughput_ops_per_sec")?.as_f64()?;
                    Some((row_key(row), throughput))
                })
                .collect()
        })
        .unwrap_or_default()
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    json::parse(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn compare(baseline: &Json, current: &Json, threshold: f64) -> (Vec<String>, Vec<String>) {
    let base_rows = rows(baseline);
    let cur_rows = rows(current);
    let mut regressions = Vec::new();
    let mut notes = Vec::new();

    for (key, base) in &base_rows {
        let Some((_, cur)) = cur_rows.iter().find(|(k, _)| k == key) else {
            regressions.push(format!("row dropped from current report: [{key}]"));
            continue;
        };
        let delta_pct = (cur - base) / base * 100.0;
        let line = format!(
            "[{key}] {} -> {} ops/s ({delta_pct:+.1}%)",
            kops(*base),
            kops(*cur),
        );
        if -delta_pct > threshold {
            regressions.push(line);
        } else {
            notes.push(line);
        }
    }
    for (key, _) in &cur_rows {
        if !base_rows.iter().any(|(k, _)| k == key) {
            notes.push(format!("[{key}] new row (no baseline)"));
        }
    }
    (regressions, notes)
}

/// Appends one compact JSONL record of this comparison to `path`.
fn append_history(
    path: &str,
    benchmark: &str,
    current: &Json,
    regressions: usize,
) -> Result<(), String> {
    let unix_secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let row_entries: Vec<Json> = rows(current)
        .into_iter()
        .map(|(key, ops)| Json::obj(vec![("key", key.into()), ("ops_per_sec", ops.into())]))
        .collect();
    let record = Json::obj(vec![
        ("unix_secs", unix_secs.into()),
        ("benchmark", benchmark.into()),
        ("rows", Json::Arr(row_entries)),
        ("regressions", regressions.into()),
    ]);
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("open {path}: {e}"))?;
    writeln!(file, "{}", record.to_compact()).map_err(|e| format!("append {path}: {e}"))?;
    println!("history -> {path}");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path = None;
    let mut current_path = None;
    let mut threshold = DEFAULT_THRESHOLD;
    let mut strict = false;
    let mut history_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" if i + 1 < args.len() => {
                i += 1;
                baseline_path = Some(args[i].clone());
            }
            "--current" if i + 1 < args.len() => {
                i += 1;
                current_path = Some(args[i].clone());
            }
            "--threshold" if i + 1 < args.len() => {
                i += 1;
                threshold = match args[i].parse() {
                    Ok(t) => t,
                    Err(_) => {
                        eprintln!("--threshold must be a number, got {:?}", args[i]);
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--strict" => strict = true,
            "--history" if i + 1 < args.len() => {
                i += 1;
                history_path = Some(args[i].clone());
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: bench_compare --baseline OLD.json --current NEW.json \
                     [--threshold PCT] [--strict] [--history FILE]"
                );
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let (Some(baseline_path), Some(current_path)) = (baseline_path, current_path) else {
        eprintln!("--baseline and --current are both required");
        return ExitCode::FAILURE;
    };

    let outcome: Result<bool, String> = (|| {
        let baseline = load(&baseline_path)?;
        let current = load(&current_path)?;
        if baseline.get("benchmark").and_then(Json::as_str)
            != current.get("benchmark").and_then(Json::as_str)
        {
            return Err("reports are from different benchmarks".into());
        }
        let (regressions, notes) = compare(&baseline, &current, threshold);
        if rows(&baseline).is_empty() {
            return Err(format!("{baseline_path}: no comparable rows"));
        }
        println!("{current_path} vs {baseline_path} (threshold {threshold}%):");
        for line in &notes {
            println!("  ok   {line}");
        }
        for line in &regressions {
            println!("  SLOW {line}");
        }
        println!(
            "{} rows compared, {} regression(s)",
            notes.len() + regressions.len(),
            regressions.len()
        );
        if let Some(path) = &history_path {
            let benchmark = current
                .get("benchmark")
                .and_then(Json::as_str)
                .unwrap_or("unknown");
            append_history(path, benchmark, &current, regressions.len())?;
        }
        Ok(!regressions.is_empty())
    })();

    match outcome {
        Ok(regressed) => {
            if regressed && strict {
                ExitCode::FAILURE
            } else {
                if regressed {
                    println!("(warnings only; pass --strict to fail on regressions)");
                }
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
