//! Read-path ablation: what does the zero-copy lock-free read path buy?
//!
//! Three configurations of the same standalone server run the same
//! read-only YCSB workload:
//!
//! - `locked_copy` — the seed baseline: every read takes the shard
//!   `RwLock` and copies the value out of the log;
//! - `lockfree_copy` — the epoch-pinned seqlock-validated probe, but the
//!   value is still deep-copied (isolates lock elision from copy elision);
//! - `lockfree_zero_copy` — the full fast path: the read returns a
//!   `ValueView` borrowing the live segment buffer.
//!
//! Each mode runs at 1 and 4 closed-loop clients; the headline comparison
//! is single-client `lockfree_zero_copy` vs `locked_copy`. Results land in
//! `BENCH_read.json` (schema checked by `rmc_bench::report`, re-checked by
//! CI's smoke run).
//!
//! Usage:
//!   read_path [--smoke] [--out PATH]   run the ablation, write a report
//!   read_path --check PATH             validate an existing report

use std::process::ExitCode;
use std::sync::Arc;

use rmc_bench::json::{self, Json};
use rmc_bench::kops;
use rmc_bench::report::{validate_read_report, SCHEMA_VERSION};
use rmc_logstore::{LogConfig, TableId};
use rmc_standalone::{Client, ReadPath, ServerConfig, StandaloneServer};
use rmc_ycsb::runner::{self, KvBackend, LatencySummary, RunSummary, RunnerConfig};
use rmc_ycsb::{Distribution, Mix, WorkloadSpec};

const TABLE: TableId = TableId(1);
const SHARDS: usize = 16;
const CLIENT_COUNTS: &[usize] = &[1, 4];
/// The client count the acceptance comparison is quoted on.
const COMPARISON_CLIENTS: usize = 1;

/// Reads go through `read_view`, so the server's configured [`ReadPath`]
/// decides lock vs probe and copy vs borrow — the backend is identical
/// across all three modes.
struct ViewBackend {
    client: Client,
}

impl KvBackend for ViewBackend {
    fn read(&self, key: &[u8]) -> Result<bool, String> {
        self.client
            .read_view(TABLE, key)
            .map(|v| v.is_some())
            .map_err(|e| e.to_string())
    }

    fn write(&self, key: &[u8], value: &[u8]) -> Result<(), String> {
        self.client
            .write(TABLE, key, value)
            .map(|_| ())
            .map_err(|e| e.to_string())
    }

    fn multiread(&self, keys: &[Vec<u8>]) -> Result<usize, String> {
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        self.client
            .multiread_views(TABLE, &refs)
            .map(|vs| vs.iter().filter(|v| v.is_some()).count())
            .map_err(|e| e.to_string())
    }

    fn multiwrite(&self, ops: &[(Vec<u8>, Vec<u8>)]) -> Result<(), String> {
        let refs: Vec<(&[u8], &[u8])> = ops
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
            .collect();
        for outcome in self
            .client
            .multiwrite(TABLE, &refs)
            .map_err(|e| e.to_string())?
        {
            outcome.map_err(|e| e.to_string())?;
        }
        Ok(())
    }
}

#[derive(Clone, Copy)]
struct Scale {
    record_count: u64,
    ops_per_client: u64,
    value_bytes: usize,
    smoke: bool,
}

const FULL: Scale = Scale {
    record_count: 10_000,
    ops_per_client: 400_000,
    value_bytes: 256,
    smoke: false,
};

const SMOKE: Scale = Scale {
    record_count: 512,
    ops_per_client: 2_000,
    value_bytes: 64,
    smoke: true,
};

const MODES: &[ReadPath] = &[
    ReadPath::LockedCopy,
    ReadPath::LockFreeCopy,
    ReadPath::LockFreeZeroCopy,
];

fn path_name(path: ReadPath) -> &'static str {
    path.name()
}

fn latency_json(lat: &LatencySummary) -> Json {
    Json::obj(vec![
        ("count", lat.count.into()),
        ("mean", lat.mean_us.into()),
        ("p50", lat.p50_us.into()),
        ("p90", lat.p90_us.into()),
        ("p99", lat.p99_us.into()),
        ("max", lat.max_us.into()),
    ])
}

struct Measurement {
    path: ReadPath,
    clients: usize,
    summary: RunSummary,
    lockfree: u64,
    fallback_locked: u64,
}

fn run_one(path: ReadPath, clients: usize, scale: Scale) -> Result<Measurement, String> {
    let server = StandaloneServer::start(ServerConfig {
        worker_threads: clients,
        shards: SHARDS,
        log: LogConfig {
            segment_bytes: 1 << 20,
            max_segments: 256,
            ordered_index: false,
        },
        read_path: path,
        ..ServerConfig::default()
    });
    let spec = WorkloadSpec {
        name: format!("read100-{}", path_name(path)),
        mix: Mix {
            read: 1.0,
            update: 0.0,
            insert: 0.0,
            rmw: 0.0,
            scan: 0.0,
        },
        distribution: Distribution::Uniform,
        record_count: scale.record_count,
        value_bytes: scale.value_bytes,
        ops_per_client: scale.ops_per_client,
    };
    let backend = Arc::new(ViewBackend {
        client: server.client(),
    });
    runner::load(&*backend, &spec, 1)?;
    let summary = runner::run(
        &backend,
        &spec,
        &RunnerConfig {
            clients,
            batch_size: 1,
            seed: 42,
        },
    )?;
    let stats = server.store().stats();
    server.shutdown();
    println!(
        "  {:<19} clients={clients} {:>9} ops/s  read p99 {:>7.2} us  lockfree={} fallback={}",
        path_name(path),
        kops(summary.throughput_ops_per_sec),
        summary.reads.p99_us,
        stats.read_lockfree,
        stats.read_fallback_locked,
    );
    Ok(Measurement {
        path,
        clients,
        summary,
        lockfree: stats.read_lockfree,
        fallback_locked: stats.read_fallback_locked,
    })
}

fn report(measurements: &[Measurement], scale: Scale) -> Result<Json, String> {
    let results: Vec<Json> = measurements
        .iter()
        .map(|m| {
            Json::obj(vec![
                (
                    "read_path",
                    Json::obj(vec![
                        ("mode", path_name(m.path).into()),
                        ("lockfree", m.lockfree.into()),
                        ("fallback_locked", m.fallback_locked.into()),
                    ]),
                ),
                ("clients", m.clients.into()),
                ("ops", m.summary.ops.into()),
                ("elapsed_secs", m.summary.elapsed_secs.into()),
                (
                    "throughput_ops_per_sec",
                    m.summary.throughput_ops_per_sec.into(),
                ),
                ("read_latency_us", latency_json(&m.summary.reads)),
            ])
        })
        .collect();

    let pick = |path: ReadPath| {
        measurements
            .iter()
            .find(|m| m.path == path && m.clients == COMPARISON_CLIENTS)
            .map(|m| m.summary.throughput_ops_per_sec)
            .ok_or_else(|| format!("missing {} comparison run", path_name(path)))
    };
    let locked = pick(ReadPath::LockedCopy)?;
    let lockfree_copy = pick(ReadPath::LockFreeCopy)?;
    let zero_copy = pick(ReadPath::LockFreeZeroCopy)?;
    let speedup = zero_copy / locked;
    println!(
        "\ncomparison ({COMPARISON_CLIENTS} client): locked {} -> lockfree+copy {} -> zero-copy {} ops/s = {speedup:.2}x",
        kops(locked),
        kops(lockfree_copy),
        kops(zero_copy),
    );

    Ok(Json::obj(vec![
        ("schema_version", SCHEMA_VERSION.into()),
        ("benchmark", "read_path_ablation".into()),
        (
            "config",
            Json::obj(vec![
                ("record_count", scale.record_count.into()),
                ("ops_per_client", scale.ops_per_client.into()),
                ("value_bytes", scale.value_bytes.into()),
                ("shards", SHARDS.into()),
                ("smoke", scale.smoke.into()),
            ]),
        ),
        ("results", Json::Arr(results)),
        (
            "comparison",
            Json::obj(vec![
                ("clients", COMPARISON_CLIENTS.into()),
                ("locked_ops_per_sec", locked.into()),
                ("lockfree_copy_ops_per_sec", lockfree_copy.into()),
                ("zero_copy_ops_per_sec", zero_copy.into()),
                ("speedup", speedup.into()),
            ]),
        ),
    ]))
}

fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = json::parse(&text)?;
    validate_read_report(&doc)?;
    println!("{path}: valid read-path report");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = FULL;
    let mut out = String::from("BENCH_read.json");
    let mut check_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => scale = SMOKE,
            "--out" if i + 1 < args.len() => {
                i += 1;
                out = args[i].clone();
            }
            "--check" if i + 1 < args.len() => {
                i += 1;
                check_path = Some(args[i].clone());
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: read_path [--smoke] [--out PATH] | --check PATH");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    if let Some(path) = check_path {
        return match check(&path) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    println!(
        "read-path ablation ({}): {} records x {} B, read-only, clients {:?}",
        if scale.smoke { "smoke" } else { "full" },
        scale.record_count,
        scale.value_bytes,
        CLIENT_COUNTS,
    );
    let outcome: Result<(), String> = (|| {
        let mut measurements = Vec::new();
        for &path in MODES {
            for &clients in CLIENT_COUNTS {
                measurements.push(run_one(path, clients, scale)?);
            }
        }
        let doc = report(&measurements, scale)?;
        // Never emit a report CI's validator would reject.
        validate_read_report(&doc)?;
        std::fs::write(&out, format!("{doc}\n")).map_err(|e| format!("write {out}: {e}"))?;
        println!("-> {out}");
        Ok(())
    })();
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
