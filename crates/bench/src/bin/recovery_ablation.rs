//! Recovery ablation: crash-recovery time vs. data size vs. number of
//! recovery masters, with backup replicas staged in memory vs. on
//! CRC-framed segment files.
//!
//! Each case boots a threaded [`MiniCluster`] (real coordinator, master,
//! and backup threads over crossbeam channels), loads a known data volume
//! through the replicated write path, SIGKILL-equivalently kills one
//! master thread, and measures on the wall clock:
//!
//! - **detection**: kill → the coordinator notices the silence (heartbeat
//!   failure timeout) and broadcasts the death;
//! - **recovery**: detection → every partition of the victim's will has
//!   been replayed by its recovery master and the coordinator's
//!   `recoveries_pending` drops back to zero (polled over the live Stats
//!   RPC).
//!
//! Recovery masters scale with the cluster: the will partitions the
//! victim's buckets across all survivors, so an `S`-server cluster replays
//! on `S-1` masters in parallel — the paper's partitioned parallel
//! recovery (Fig 11, Finding 6). The `file` engine stages every backup
//! replica in `rmc_diskstore::FileStorage` (checksummed frames, batched
//! fsync by default), so its recovery serves segment bytes that really
//! round-tripped through files.
//!
//! Each row's `throughput_ops_per_sec` is the recovery bandwidth in
//! bytes/sec (victim's data over recovery seconds) — the number
//! `bench_compare` diffs against the committed smoke baseline.
//!
//! Usage:
//!   recovery_ablation [--smoke] [--fsync POLICY] [--out PATH]
//!   recovery_ablation --check PATH             validate an existing report

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rmc_bench::json::{self, Json};
use rmc_bench::report::{validate_recovery_report, SCHEMA_VERSION};
use rmc_core::coordinator::bucket_for;
use rmc_core::protocol::{coordinator_id, ProtocolConfig, PROTO_TABLE};
use rmc_diskstore::{DiskMetrics, FileStorage, FsyncPolicy};
use rmc_runtime::{MetricsRegistry, SimDuration};
use rmc_standalone::{MiniCluster, StorageFactory};

const REPLICATION: usize = 2;

#[derive(Clone)]
struct Scale {
    /// Total loaded data volumes (bytes), the x-axis of Fig 11-style rows.
    data_sizes: Vec<u64>,
    /// Cluster sizes; each contributes `servers - 1` recovery masters.
    server_counts: Vec<usize>,
    value_bytes: usize,
    smoke: bool,
}

fn full_scale() -> Scale {
    Scale {
        data_sizes: vec![2 << 20, 4 << 20, 8 << 20],
        server_counts: vec![4, 8],
        value_bytes: 4096,
        smoke: false,
    }
}

fn smoke_scale() -> Scale {
    Scale {
        data_sizes: vec![256 << 10, 1 << 20, 4 << 20],
        server_counts: vec![4, 8],
        value_bytes: 1024,
        smoke: true,
    }
}

struct Measurement {
    engine: &'static str,
    case: String,
    servers: usize,
    records: u64,
    data_bytes: u64,
    victim_bytes: u64,
    detection_secs: f64,
    recovery_secs: f64,
    /// `disk.*` totals across the cluster (file engine only).
    disk: Option<(u64, u64, u64)>, // (write_bytes, fsyncs, crc_mismatch)
}

fn key_of(i: u64) -> Vec<u8> {
    format!("rec{i:08}").into_bytes()
}

/// Runs one (engine, data size, cluster size) cell and measures its
/// recovery on the wall clock.
fn run_case(
    engine: &'static str,
    data_bytes: u64,
    servers: usize,
    value_bytes: usize,
    fsync: &str,
) -> Result<Measurement, String> {
    let case = format!("{engine}_s{servers}_d{}KiB", data_bytes >> 10);
    let mut cfg = ProtocolConfig::new(servers, 1, REPLICATION);
    cfg.heartbeat_interval = SimDuration::from_millis(15);
    // Wide enough that a server busy replaying its share of the will never
    // misses enough heartbeats to be falsely suspected: a cascaded round
    // would recover the busy server from replicas that don't yet hold its
    // just-replayed (not yet re-replicated) records. The data-size axis is
    // capped so per-master replay stays well under this timeout.
    cfg.failure_timeout = SimDuration::from_millis(600);
    cfg.retry_timeout = SimDuration::from_millis(50);
    let buckets = cfg.buckets;

    let base = std::env::temp_dir().join(format!("rmc_recovery_{}_{case}", std::process::id()));
    let disk_registry = MetricsRegistry::new();
    let (cluster, mut clients) = if engine == "file" {
        let policy = FsyncPolicy::parse(fsync)?;
        let factory: StorageFactory = {
            let base = base.clone();
            let registry = disk_registry.clone();
            Arc::new(move |index, epoch| {
                let dir = base.join(format!("s{index}"));
                let metrics = DiskMetrics::new(&registry.family("disk", index));
                Box::new(
                    FileStorage::open(dir, policy.clone(), epoch, metrics)
                        .expect("open backup file storage"),
                )
            })
        };
        MiniCluster::start_with_storage(cfg.clone(), factory)
    } else {
        MiniCluster::start(cfg.clone())
    };
    let client = &mut clients[0];
    client.set_op_budget(Duration::from_secs(30));

    // Load through the replicated write path; track the victim's share.
    let victim = servers / 2;
    let records = (data_bytes / value_bytes as u64).max(1);
    let mut victim_bytes = 0u64;
    let mut victim_keys = Vec::new();
    for i in 0..records {
        let key = key_of(i);
        let value = vec![(i % 251) as u8; value_bytes];
        client.put(&key, &value).map_err(|e| format!("load: {e}"))?;
        if bucket_for(PROTO_TABLE, &key, buckets) % servers == victim {
            victim_bytes += (key.len() + value.len()) as u64;
            victim_keys.push(key);
        }
    }
    if victim_keys.is_empty() {
        return Err(format!("{case}: victim owns no keys — data too small"));
    }

    let stat = |stats: &[(String, u64)], name: &str| {
        stats
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    let before = client
        .node_stats(coordinator_id())
        .map_err(|e| format!("pre-kill stats: {e}"))?;
    let map_v0 = stat(&before, "map_version");

    cluster.kill_server(victim);
    let t_kill = Instant::now();

    // Poll the coordinator's live stats: detection is the death broadcast
    // (map version bump / a pending recovery appears), completion is
    // `recoveries_pending` back at zero.
    let budget = Duration::from_secs(120);
    let mut t_detect: Option<Instant> = None;
    let t_done = loop {
        if t_kill.elapsed() > budget {
            return Err(format!("{case}: recovery did not finish within {budget:?}"));
        }
        let stats = client
            .node_stats(coordinator_id())
            .map_err(|e| format!("poll stats: {e}"))?;
        let pending = stat(&stats, "recoveries_pending");
        let map_v = stat(&stats, "map_version");
        if t_detect.is_none() && (pending > 0 || map_v > map_v0) {
            t_detect = Some(Instant::now());
        }
        if t_detect.is_some() && pending == 0 {
            break Instant::now();
        }
        std::thread::sleep(Duration::from_millis(2));
    };
    let t_detect = t_detect.expect("loop breaks only after detection");
    let detection_secs = (t_detect - t_kill).as_secs_f64();
    // Sub-poll-interval completions read as ~0; clamp to the poll period.
    let recovery_secs = (t_done - t_detect).as_secs_f64().max(0.002);

    // Prove the data actually came back: sample the victim's keys. A key
    // can transiently read as absent if replay load made the coordinator
    // falsely suspect another server and a follow-on recovery round is
    // still replaying it to yet another owner — retry before crying loss.
    let step = (victim_keys.len() / 64).max(1);
    for key in victim_keys.iter().step_by(step) {
        let read_deadline = Instant::now() + Duration::from_secs(20);
        loop {
            let got = client
                .get(key)
                .map_err(|e| format!("{case}: post-recovery read: {e}"))?;
            if got.is_some() {
                break;
            }
            if Instant::now() > read_deadline {
                return Err(format!("{case}: key {key:?} lost across recovery"));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    let disk = (engine == "file").then(|| {
        (
            disk_registry.sum("disk.", ".write_bytes"),
            disk_registry.sum("disk.", ".fsyncs"),
            disk_registry.sum("disk.", ".crc_mismatch"),
        )
    });

    let report = cluster.shutdown();
    if report.owners.contains(&victim) {
        return Err(format!("{case}: victim still owns buckets after recovery"));
    }
    if engine == "file" {
        let _ = std::fs::remove_dir_all(&base);
    }

    println!(
        "  {case:<24} masters={:<2} victim {:>7} KiB  detect {detection_secs:>6.3}s  recover {recovery_secs:>7.3}s  ({:.1} MB/s)",
        servers - 1,
        victim_bytes >> 10,
        victim_bytes as f64 / recovery_secs / 1e6,
    );
    Ok(Measurement {
        engine,
        case,
        servers,
        records,
        data_bytes,
        victim_bytes,
        detection_secs,
        recovery_secs,
        disk,
    })
}

fn report(measurements: &[Measurement], scale: &Scale, fsync: &str) -> Result<Json, String> {
    let results: Vec<Json> = measurements
        .iter()
        .map(|m| {
            let mut fields = vec![
                ("engine", m.engine.into()),
                ("case", m.case.clone().into()),
                ("servers", m.servers.into()),
                ("recovery_masters", (m.servers - 1).into()),
                ("records", m.records.into()),
                ("data_bytes", m.data_bytes.into()),
                ("victim_bytes", m.victim_bytes.into()),
                ("detection_secs", m.detection_secs.into()),
                ("recovery_secs", m.recovery_secs.into()),
                (
                    "throughput_ops_per_sec",
                    (m.victim_bytes as f64 / m.recovery_secs).into(),
                ),
            ];
            if let Some((write_bytes, fsyncs, crc_mismatch)) = m.disk {
                fields.push((
                    "disk",
                    Json::obj(vec![
                        ("write_bytes", write_bytes.into()),
                        ("fsyncs", fsyncs.into()),
                        ("crc_mismatch", crc_mismatch.into()),
                    ]),
                ));
            }
            Json::obj(fields)
        })
        .collect();

    // Headline comparison: both engines at the largest case.
    let headline = |engine: &str| {
        measurements
            .iter()
            .filter(|m| m.engine == engine)
            .max_by_key(|m| (m.data_bytes, m.servers))
            .map(|m| m.victim_bytes as f64 / m.recovery_secs)
            .ok_or_else(|| format!("missing {engine} runs"))
    };
    let memory = headline("memory")?;
    let file = headline("file")?;
    println!(
        "\ncomparison (largest case): memory {:.1} MB/s vs file {:.1} MB/s = {:.2}x",
        memory / 1e6,
        file / 1e6,
        file / memory
    );

    Ok(Json::obj(vec![
        ("schema_version", SCHEMA_VERSION.into()),
        ("benchmark", "recovery_ablation".into()),
        (
            "config",
            Json::obj(vec![
                ("replication", REPLICATION.into()),
                ("value_bytes", scale.value_bytes.into()),
                ("fsync", fsync.into()),
                ("smoke", scale.smoke.into()),
            ]),
        ),
        ("results", Json::Arr(results)),
        (
            "comparison",
            Json::obj(vec![
                ("memory_bytes_per_sec", memory.into()),
                ("file_bytes_per_sec", file.into()),
                ("file_over_memory", (file / memory).into()),
            ]),
        ),
    ]))
}

fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = json::parse(&text)?;
    validate_recovery_report(&doc)?;
    println!("{path}: valid recovery-ablation report");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = full_scale();
    let mut fsync = String::from("batched");
    let mut out = String::from("BENCH_recovery.json");
    let mut check_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => scale = smoke_scale(),
            "--fsync" if i + 1 < args.len() => {
                i += 1;
                fsync = args[i].clone();
            }
            "--out" if i + 1 < args.len() => {
                i += 1;
                out = args[i].clone();
            }
            "--check" if i + 1 < args.len() => {
                i += 1;
                check_path = Some(args[i].clone());
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: recovery_ablation [--smoke] [--fsync POLICY] [--out PATH] | --check PATH"
                );
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    if let Some(path) = check_path {
        return match check(&path) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    println!(
        "recovery ablation ({}): sizes {:?} KiB x servers {:?} x engines [memory, file], R{REPLICATION}, fsync={fsync}",
        if scale.smoke { "smoke" } else { "full" },
        scale.data_sizes.iter().map(|d| d >> 10).collect::<Vec<_>>(),
        scale.server_counts,
    );
    let outcome = (|| {
        let mut measurements = Vec::new();
        for engine in ["memory", "file"] {
            for &servers in &scale.server_counts {
                for &data in &scale.data_sizes {
                    measurements.push(run_case(engine, data, servers, scale.value_bytes, &fsync)?);
                }
            }
        }
        let doc = report(&measurements, &scale, &fsync)?;
        // Never emit a report CI's validator would reject.
        validate_recovery_report(&doc)?;
        std::fs::write(&out, format!("{doc}\n")).map_err(|e| format!("write {out}: {e}"))?;
        println!("-> {out}");
        Ok::<(), String>(())
    })();
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
