//! Regenerates every table and figure of *"Characterizing Performance and
//! Energy-Efficiency of the RAMCloud Storage System"* (ICDCS 2017) on the
//! simulated cluster.
//!
//! ```text
//! cargo run --release -p rmc-bench --bin experiments -- <exp> [--scale N] [--seed S] [--runs R]
//!
//! <exp>: fig1 table1 fig2 table2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10
//!        fig11 fig12 fig13 ablation-segment ablation-consistency
//!        ablation-cleaner ablation-copyset ablation-elastic
//!        extra-workloads all
//! ```
//!
//! `--scale N` divides the paper's per-client request counts (default 10;
//! `--scale 1` is paper-scale). Each driver prints the same rows/series the
//! paper reports and writes a CSV under `results/`.

use rmc_bench::chart::{bar_chart, line_chart, Series};
use rmc_bench::{kops, mean_err, ExpCtx};
use rmc_core::{
    ClientAffinity, Cluster, ClusterConfig, Consistency, ElasticPolicy, Placement, RunReport,
};
use rmc_sim::{SimDuration, SimTime};
use rmc_ycsb::{StandardWorkload, WorkloadSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ctx = ExpCtx::default();
    let mut exp = String::from("all");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                ctx.scale = args[i].parse().expect("--scale N");
            }
            "--seed" => {
                i += 1;
                ctx.seed = args[i].parse().expect("--seed S");
            }
            "--runs" => {
                i += 1;
                ctx.runs = args[i].parse().expect("--runs R");
            }
            "--full" => ctx.scale = 1,
            other => exp = other.to_owned(),
        }
        i += 1;
    }
    println!(
        "# RAMCloud characterization reproduction — experiment `{exp}` (scale 1/{}, seed {}, {} run(s))",
        ctx.scale, ctx.seed, ctx.runs
    );
    let all = exp == "all";
    let mut ran = false;
    macro_rules! run {
        ($name:literal, $f:ident) => {
            if all || exp == $name {
                println!("\n=== {} ===", $name);
                $f(&ctx);
                ran = true;
            }
        };
    }
    run!("fig1", fig1);
    run!("table1", table1);
    run!("fig2", fig2);
    run!("table2", table2);
    run!("fig3", fig3);
    run!("fig4", fig4);
    run!("fig5", fig5);
    run!("fig6", fig6);
    run!("fig7", fig7);
    run!("fig8", fig8);
    run!("fig9", fig9);
    run!("fig10", fig10);
    run!("fig11", fig11);
    run!("fig12", fig12);
    run!("fig13", fig13);
    run!("ablation-segment", ablation_segment);
    run!("ablation-consistency", ablation_consistency);
    run!("ablation-cleaner", ablation_cleaner);
    run!("ablation-copyset", ablation_copyset);
    run!("ablation-elastic", ablation_elastic);
    run!("extra-workloads", extra_workloads);
    if !ran {
        eprintln!("unknown experiment `{exp}`");
        std::process::exit(2);
    }
}

/// Section IV peak-performance workload: read-only, 5 M × 1 KB records,
/// 10 M requests per client (scaled). At reduced scale the record count is
/// also trimmed so load stays proportionate, never below Section V's 100 K.
fn peak_workload(ctx: &ExpCtx) -> WorkloadSpec {
    let records = (5_000_000 / ctx.scale).max(100_000);
    WorkloadSpec::peak_read_only()
        .with_record_count(records)
        .with_ops_per_client(ctx.ops(10_000_000) / 20) // 10M/client is ~4300s; /20 keeps minutes-scale runs at scale 1
}

/// Section V/VI workload: 100 K × 1 KB records, 100 K requests per client
/// (scaled).
fn section_v_workload(ctx: &ExpCtx, w: StandardWorkload) -> WorkloadSpec {
    WorkloadSpec::standard(w).with_ops_per_client(ctx.ops(100_000))
}

fn averaged<F: Fn(u64) -> RunReport>(ctx: &ExpCtx, f: F) -> Vec<RunReport> {
    (0..ctx.runs).map(|r| f(ctx.seed + r * 1000)).collect()
}

// ---------------------------------------------------------------------
// Fig 1: aggregated throughput (a) and average power per server (b) as a
// factor of cluster size; read-only, replication disabled.
// ---------------------------------------------------------------------
fn fig1(ctx: &ExpCtx) {
    let mut rows = Vec::new();
    println!(
        "{:>8} {:>8} | {:>12} | {:>10}",
        "servers", "clients", "throughput", "power/node"
    );
    for servers in [1usize, 5, 10] {
        for clients in [1usize, 10, 30] {
            let reports = averaged(ctx, |seed| {
                let cfg = ClusterConfig::new(servers, clients, peak_workload(ctx)).with_seed(seed);
                Cluster::new(cfg).run()
            });
            let (thr, thr_e) =
                mean_err(&reports.iter().map(|r| r.throughput_ops).collect::<Vec<_>>());
            let (pw, _) = mean_err(
                &reports
                    .iter()
                    .map(|r| r.avg_node_watts())
                    .collect::<Vec<_>>(),
            );
            println!(
                "{servers:>8} {clients:>8} | {:>9} ±{:>4.0}K | {pw:>8.1} W",
                kops(thr),
                thr_e / 1e3
            );
            rows.push(vec![
                servers.to_string(),
                clients.to_string(),
                format!("{thr:.0}"),
                format!("{pw:.2}"),
            ]);
        }
    }
    ctx.write_csv(
        "fig1",
        "servers,clients,throughput_ops,avg_node_watts",
        &rows,
    );
    let series: Vec<Series> = [1usize, 5, 10]
        .iter()
        .map(|&srv| {
            Series::new(
                &format!("{srv} servers"),
                rows.iter()
                    .filter(|r| r[0] == srv.to_string())
                    .map(|r| (r[1].parse().unwrap(), r[2].parse().unwrap()))
                    .collect(),
            )
        })
        .collect();
    println!(
        "{}",
        line_chart("Fig 1a — throughput vs clients", &series, 48, 12)
    );
    println!("paper: 1 srv saturates ~372K at 30 clients; 5 and 10 srv plateau together (client-limited); power ~92 W at 1 client vs 122-127 W loaded at every size");
}

// ---------------------------------------------------------------------
// Table I: min—max of per-node average CPU usage.
// ---------------------------------------------------------------------
fn table1(ctx: &ExpCtx) {
    let mut rows = Vec::new();
    println!(
        "{:>8} | {:>16} {:>16} {:>16}",
        "clients", "1 server", "5 servers", "10 servers"
    );
    for clients in [0usize, 1, 2, 3, 4, 5, 10, 30] {
        let mut cells = Vec::new();
        let mut csv = vec![clients.to_string()];
        for servers in [1usize, 5, 10] {
            let workload = if clients == 0 {
                peak_workload(ctx).with_ops_per_client(0)
            } else {
                peak_workload(ctx)
            };
            let cfg = ClusterConfig::new(servers, clients.max(1), workload).with_seed(ctx.seed);
            let report = Cluster::new(cfg)
                .run_with_min_duration(SimDuration::from_secs(if clients == 0 { 5 } else { 0 }));
            let (lo, hi) = report.cpu_min_max_pct();
            cells.push(format!("{lo:>6.2}—{hi:<6.2}"));
            csv.push(format!("{lo:.2}"));
            csv.push(format!("{hi:.2}"));
        }
        println!(
            "{clients:>8} | {:>16} {:>16} {:>16}",
            cells[0], cells[1], cells[2]
        );
        rows.push(csv);
    }
    ctx.write_csv(
        "table1",
        "clients,cpu1_min,cpu1_max,cpu5_min,cpu5_max,cpu10_min,cpu10_max",
        &rows,
    );
    println!("paper: 25% idle floor (polling); 49.8% at 1 client; 74% at 2; ≳95% from 10 clients");
}

// ---------------------------------------------------------------------
// Fig 2: energy efficiency (ops/joule) for the Fig 1 sweep.
// ---------------------------------------------------------------------
fn fig2(ctx: &ExpCtx) {
    let mut rows = Vec::new();
    println!("{:>8} {:>8} | {:>12}", "servers", "clients", "ops/joule");
    for servers in [1usize, 5, 10] {
        for clients in [1usize, 10, 30] {
            let cfg = ClusterConfig::new(servers, clients, peak_workload(ctx)).with_seed(ctx.seed);
            let report = Cluster::new(cfg).run();
            println!("{servers:>8} {clients:>8} | {:>10.0}", report.ops_per_joule);
            rows.push(vec![
                servers.to_string(),
                clients.to_string(),
                format!("{:.1}", report.ops_per_joule),
            ]);
        }
    }
    ctx.write_csv("fig2", "servers,clients,ops_per_joule", &rows);
    println!("paper: best ~3000 op/J at 1 server / 30 clients; ~2x lower at 5 servers; ~7.6x lower at 10");
}

// ---------------------------------------------------------------------
// Table II: throughput of 10 servers for workloads A, B, C.
// ---------------------------------------------------------------------
fn table2(ctx: &ExpCtx) {
    let mut rows = Vec::new();
    println!(
        "{:>8} | {:>14} {:>14} {:>14}",
        "clients", "A (50/50)", "B (95/5)", "C (read)"
    );
    for clients in [10usize, 20, 30, 60, 90] {
        let mut cells = Vec::new();
        let mut csv = vec![clients.to_string()];
        for w in [
            StandardWorkload::A,
            StandardWorkload::B,
            StandardWorkload::C,
        ] {
            let reports = averaged(ctx, |seed| {
                let cfg =
                    ClusterConfig::new(10, clients, section_v_workload(ctx, w)).with_seed(seed);
                Cluster::new(cfg).run()
            });
            let (thr, err) =
                mean_err(&reports.iter().map(|r| r.throughput_ops).collect::<Vec<_>>());
            cells.push(format!("{} ±{}", kops(thr), kops(err)));
            csv.push(format!("{thr:.0}"));
        }
        println!(
            "{clients:>8} | {:>14} {:>14} {:>14}",
            cells[0], cells[1], cells[2]
        );
        rows.push(csv);
    }
    ctx.write_csv("table2", "clients,A_ops,B_ops,C_ops", &rows);
    let series: Vec<Series> = ["A", "B", "C"]
        .iter()
        .enumerate()
        .map(|(i, name)| {
            Series::new(
                name,
                rows.iter()
                    .map(|r| (r[0].parse().unwrap(), r[i + 1].parse().unwrap()))
                    .collect(),
            )
        })
        .collect();
    println!(
        "{}",
        line_chart(
            "Table II — throughput vs clients (10 servers)",
            &series,
            48,
            12
        )
    );
    println!("paper: A peaks 106K @20 then falls to 64K; B saturates ~844K; C scales to 2004K");
}

// ---------------------------------------------------------------------
// Fig 3: scalability factor (baseline = 10 clients).
// ---------------------------------------------------------------------
fn fig3(ctx: &ExpCtx) {
    let mut base: Vec<f64> = Vec::new();
    let mut rows = Vec::new();
    println!(
        "{:>8} | {:>12} {:>12} {:>12} {:>10}",
        "clients", "read-only", "read-heavy", "update-heavy", "perfect"
    );
    for (ci, clients) in [10usize, 20, 30, 60, 90].iter().enumerate() {
        let mut factors = Vec::new();
        let mut csv = vec![clients.to_string()];
        for (wi, w) in [
            StandardWorkload::C,
            StandardWorkload::B,
            StandardWorkload::A,
        ]
        .iter()
        .enumerate()
        {
            let cfg =
                ClusterConfig::new(10, *clients, section_v_workload(ctx, *w)).with_seed(ctx.seed);
            let thr = Cluster::new(cfg).run().throughput_ops;
            if ci == 0 {
                base.push(thr);
            }
            let f = thr / base[wi];
            factors.push(f);
            csv.push(format!("{f:.2}"));
        }
        let perfect = *clients as f64 / 10.0;
        csv.push(format!("{perfect:.1}"));
        println!(
            "{clients:>8} | {:>12.2} {:>12.2} {:>12.2} {perfect:>10.1}",
            factors[0], factors[1], factors[2]
        );
        rows.push(csv);
    }
    ctx.write_csv(
        "fig3",
        "clients,read_only_factor,read_heavy_factor,update_heavy_factor,perfect",
        &rows,
    );
    println!("paper: read-only tracks perfect; read-heavy collapses between 30 and 60; update-heavy degrades below 1");
}

// ---------------------------------------------------------------------
// Fig 4: (a) avg power/node of 20 servers vs clients per workload;
//        (b) total energy at 90 clients per workload.
// ---------------------------------------------------------------------
fn fig4(ctx: &ExpCtx) {
    let mut rows = Vec::new();
    println!(
        "{:>8} | {:>12} {:>12} {:>12}   (avg W/node, 20 servers)",
        "clients", "read-only", "read-heavy", "update-heavy"
    );
    let mut energy90 = Vec::new();
    for clients in [10usize, 20, 30, 60, 90] {
        let mut cells = Vec::new();
        let mut csv = vec![clients.to_string()];
        for w in [
            StandardWorkload::C,
            StandardWorkload::B,
            StandardWorkload::A,
        ] {
            let cfg =
                ClusterConfig::new(20, clients, section_v_workload(ctx, w)).with_seed(ctx.seed);
            let report = Cluster::new(cfg).run();
            cells.push(report.avg_node_watts());
            csv.push(format!("{:.2}", report.avg_node_watts()));
            if clients == 90 {
                energy90.push((w, report.total_energy_kj() * ctx.scale as f64));
            }
        }
        println!(
            "{clients:>8} | {:>10.1} W {:>10.1} W {:>10.1} W",
            cells[0], cells[1], cells[2]
        );
        rows.push(csv);
    }
    ctx.write_csv("fig4a", "clients,C_watts,B_watts,A_watts", &rows);
    println!(
        "\nFig 4b — total energy at 90 clients (KJ, rescaled ×{} to paper request counts):",
        ctx.scale
    );
    let mut rows_b = Vec::new();
    for (w, kj) in &energy90 {
        println!("  workload {w}: {kj:>8.1} KJ");
        rows_b.push(vec![w.to_string(), format!("{kj:.2}")]);
    }
    if energy90.len() == 3 {
        let c = energy90[2].1 / energy90[0].1;
        println!("  A / C energy ratio: {c:.2}x (paper: 4.92x)");
    }
    ctx.write_csv("fig4b", "workload,total_energy_kj", &rows_b);
    println!("paper: C ~82→93 W, B ~92→100 W, A ~90→110 W; A consumes 4.92x C's total energy at 90 clients");
}

// ---------------------------------------------------------------------
// Fig 5: throughput of 20 servers vs replication factor (workload A).
// ---------------------------------------------------------------------
fn fig5(ctx: &ExpCtx) {
    let mut rows = Vec::new();
    println!(
        "{:>6} | {:>12} {:>12} {:>12}",
        "R", "10 clients", "30 clients", "60 clients"
    );
    for r in 1u32..=4 {
        let mut cells = Vec::new();
        let mut csv = vec![r.to_string()];
        for clients in [10usize, 30, 60] {
            let cfg = ClusterConfig::new(20, clients, section_v_workload(ctx, StandardWorkload::A))
                .with_replication(r)
                .with_seed(ctx.seed);
            let thr = Cluster::new(cfg).run().throughput_ops;
            cells.push(thr);
            csv.push(format!("{thr:.0}"));
        }
        println!(
            "{r:>6} | {:>12} {:>12} {:>12}",
            kops(cells[0]),
            kops(cells[1]),
            kops(cells[2])
        );
        rows.push(csv);
    }
    ctx.write_csv(
        "fig5",
        "replication,clients10_ops,clients30_ops,clients60_ops",
        &rows,
    );
    let series: Vec<Series> = ["10 clients", "30 clients", "60 clients"]
        .iter()
        .enumerate()
        .map(|(i, name)| {
            Series::new(
                name,
                rows.iter()
                    .map(|r| (r[0].parse().unwrap(), r[i + 1].parse().unwrap()))
                    .collect(),
            )
        })
        .collect();
    println!(
        "{}",
        line_chart(
            "Fig 5 — throughput vs replication factor (20 servers)",
            &series,
            44,
            10
        )
    );
    println!("paper: 10 clients: 78K@R1 → 43K@R4 (−45%); saturation at higher client counts");
}

// ---------------------------------------------------------------------
// Fig 6: (a) throughput and (b) total energy vs replication factor for
// 10-40 servers at 60 clients (workload A).
// ---------------------------------------------------------------------
fn fig6(ctx: &ExpCtx) {
    let mut rows = Vec::new();
    println!(
        "{:>6} | {:>14} {:>14} {:>14} {:>14}",
        "R", "10 srv", "20 srv", "30 srv", "40 srv"
    );
    for r in 1u32..=4 {
        let mut line = Vec::new();
        let mut csv = vec![r.to_string()];
        for servers in [10usize, 20, 30, 40] {
            let cfg = ClusterConfig::new(servers, 60, section_v_workload(ctx, StandardWorkload::A))
                .with_replication(r)
                .with_seed(ctx.seed);
            let report = Cluster::new(cfg).run();
            let crashed = report.crashed;
            line.push(format!(
                "{}{}",
                kops(report.throughput_ops),
                if crashed { "*" } else { "" }
            ));
            csv.push(format!("{:.0}", report.throughput_ops));
            csv.push(format!(
                "{:.2}",
                report.total_energy_kj() * ctx.scale as f64
            ));
        }
        println!(
            "{r:>6} | {:>14} {:>14} {:>14} {:>14}   (* = timeout-crashed)",
            line[0], line[1], line[2], line[3]
        );
        rows.push(csv);
    }
    ctx.write_csv(
        "fig6",
        "replication,srv10_ops,srv10_kj,srv20_ops,srv20_kj,srv30_ops,srv30_kj,srv40_ops,srv40_kj",
        &rows,
    );
    println!("paper (6a): R1 128K→237K from 10→40 servers; 10-server runs crash for R>2");
    println!("paper (6b): 20 servers 81 KJ@R1 → 285 KJ@R4 (+351%)");
}

// ---------------------------------------------------------------------
// Fig 7: average power per node of 40 servers vs replication factor.
// ---------------------------------------------------------------------
fn fig7(ctx: &ExpCtx) {
    let mut rows = Vec::new();
    println!("{:>6} | {:>12}", "R", "avg W/node");
    for r in 1u32..=4 {
        let cfg = ClusterConfig::new(40, 60, section_v_workload(ctx, StandardWorkload::A))
            .with_replication(r)
            .with_seed(ctx.seed);
        let report = Cluster::new(cfg).run();
        println!("{r:>6} | {:>10.1} W", report.avg_node_watts());
        rows.push(vec![
            r.to_string(),
            format!("{:.2}", report.avg_node_watts()),
        ]);
    }
    ctx.write_csv("fig7", "replication,avg_node_watts", &rows);
    println!("paper: 103 W at R1 rising to ~115 W at R4");
}

// ---------------------------------------------------------------------
// Fig 8: energy efficiency vs replication factor for 20/30/40 servers.
// ---------------------------------------------------------------------
fn fig8(ctx: &ExpCtx) {
    let mut rows = Vec::new();
    println!(
        "{:>6} | {:>12} {:>12} {:>12}   (Kop/joule)",
        "R", "20 srv", "30 srv", "40 srv"
    );
    for r in 1u32..=4 {
        let mut cells = Vec::new();
        let mut csv = vec![r.to_string()];
        for servers in [20usize, 30, 40] {
            let cfg = ClusterConfig::new(servers, 60, section_v_workload(ctx, StandardWorkload::A))
                .with_replication(r)
                .with_seed(ctx.seed);
            let report = Cluster::new(cfg).run();
            cells.push(report.ops_per_joule / 1e3);
            csv.push(format!("{:.4}", report.ops_per_joule / 1e3));
        }
        println!(
            "{r:>6} | {:>12.2} {:>12.2} {:>12.2}",
            cells[0], cells[1], cells[2]
        );
        rows.push(csv);
    }
    ctx.write_csv(
        "fig8",
        "replication,srv20_kop_per_j,srv30_kop_per_j,srv40_kop_per_j",
        &rows,
    );
    println!("paper: with replication, MORE servers are more efficient: 1.5/1.9/2.3 Kop/J at R1 for 20/30/40; gap narrows as R grows");
}

/// The Fig 9/10/11/12 recovery substrate: `servers` nodes pre-loaded with
/// ~`gb_total` of data (10 KB nominal values keep entry counts tractable),
/// a victim killed at 60 s.
fn recovery_cluster(
    ctx: &ExpCtx,
    servers: usize,
    gb_total: f64,
    replication: u32,
    clients: usize,
    ops_per_client: u64,
) -> Cluster {
    // 10 KB nominal values keep entry counts tractable at full data volume;
    // the compact payload keeps real memory modest. Entry size is NOT
    // scaled: chunk cadence and disk request sizes drive recovery timing.
    let value_bytes = 10 * 1024;
    let records = (gb_total * 1e9 / value_bytes as f64) as u64;
    let mut workload = WorkloadSpec::standard(StandardWorkload::C)
        .with_record_count(records)
        .with_ops_per_client(ops_per_client);
    workload.value_bytes = value_bytes;
    let cfg = ClusterConfig::new(servers, clients.max(1), workload)
        .with_replication(replication)
        .with_seed(ctx.seed);
    let mut cluster = Cluster::new(cfg);
    cluster.plan_kill(SimTime::from_secs(60), Some(servers / 2));
    cluster
}

// ---------------------------------------------------------------------
// Fig 9: CPU and power timelines of 10 idle servers across a crash.
// ---------------------------------------------------------------------
fn fig9(ctx: &ExpCtx) {
    // 10 servers, 10 M × 1 KB = 9.7 GB, R4, idle, kill at 60 s.
    let cluster = recovery_cluster(ctx, 10, 9.7, 4, 1, 0);
    let report = cluster.run_with_min_duration(SimDuration::from_secs(140));
    let rec = report.recovery.as_ref().expect("recovery must run");
    println!(
        "killed at {:.0}s, detected {:.2}s, finished {:.1}s (recovery {:.1}s, {:.2} GB replayed)",
        rec.killed_at_secs,
        rec.detected_at_secs,
        rec.finished_at_secs,
        rec.duration_secs,
        rec.replayed_gb
    );
    println!("{:>6} | {:>8} {:>10}", "t(s)", "cpu %", "W/node");
    let mut rows = Vec::new();
    for (t, cpu) in &report.cpu_timeline {
        let watts = report
            .power_timeline
            .iter()
            .find(|(pt, _)| pt == t)
            .map(|(_, w)| *w)
            .unwrap_or(0.0);
        if (*t as u64).is_multiple_of(10) || (*t > 55.0 && *t < rec.finished_at_secs + 10.0) {
            println!("{t:>6.0} | {:>7.1}% {watts:>9.1}", cpu * 100.0);
        }
        rows.push(vec![
            format!("{t}"),
            format!("{:.4}", cpu * 100.0),
            format!("{watts:.2}"),
        ]);
    }
    ctx.write_csv("fig9", "t_s,cpu_pct,watts_per_node", &rows);
    let cpu_series = Series::new(
        "cpu %",
        report
            .cpu_timeline
            .iter()
            .map(|&(t, c)| (t, c * 100.0))
            .collect(),
    );
    println!(
        "{}",
        line_chart("Fig 9a — cluster CPU % over time", &[cpu_series], 64, 10)
    );
    println!("paper: 25% CPU idle → 92% spike at crash, decaying over recovery; power ~→119 W");
}

// ---------------------------------------------------------------------
// Fig 10: per-op latency timelines of two clients across recovery; client 1
// targets exactly the victim's data.
// ---------------------------------------------------------------------
fn fig10(ctx: &ExpCtx) {
    let victim = 10usize / 2;
    // Two closed-loop read clients with enough ops to span the recovery
    // window (~160 s); client 0 requests only the victim's data.
    let ops = 4_000_000;
    let template = recovery_cluster(ctx, 10, 9.7, 4, 2, ops);
    let mut cfg = template.config().clone();
    cfg.client_affinity = Some(vec![
        ClientAffinity::On(victim),
        ClientAffinity::NotOn(victim),
    ]);
    let mut cluster = Cluster::new(cfg);
    cluster.plan_kill(SimTime::from_secs(60), Some(victim));
    let report = cluster.run_with_min_duration(SimDuration::from_secs(140));
    let rec = report.recovery.as_ref().expect("recovery must run");
    println!(
        "recovery {:.1}s (detected {:.1}s → finished {:.1}s)",
        rec.duration_secs, rec.detected_at_secs, rec.finished_at_secs
    );
    let mut rows = Vec::new();
    for (c, tl) in report.per_client_latency_timelines.iter().enumerate() {
        let label = if c == 0 {
            "client 1 (lost data)"
        } else {
            "client 2 (live data)"
        };
        println!("{label}: {} timeline points", tl.len());
        // Print the interesting region.
        for (t, us) in tl.iter().filter(|(t, _)| (50.0..130.0).contains(t)) {
            if (*t as u64).is_multiple_of(5) {
                println!("  t={t:>5.0}s  {us:>8.1} µs");
            }
            rows.push(vec![c.to_string(), format!("{t}"), format!("{us:.2}")]);
        }
        // Gap check: client 0 should have no completions during recovery.
        let gap: Vec<f64> = tl
            .iter()
            .map(|(t, _)| *t)
            .filter(|t| (rec.detected_at_secs + 1.0..rec.finished_at_secs - 1.0).contains(t))
            .collect();
        if c == 0 {
            println!(
                "  completions during recovery window: {} (paper: blocked, 0)",
                gap.len()
            );
        }
    }
    ctx.write_csv("fig10", "client,t_s,mean_latency_us", &rows);
    println!(
        "paper: lost-data client blocked ~40 s; live-data client latency 15 → 35 µs (1.4-2.4x)"
    );
}

// ---------------------------------------------------------------------
// Fig 11: recovery time (a) and single-node energy (b) vs replication
// factor; 9 nodes, 1.085 GB to recover.
// ---------------------------------------------------------------------
fn fig11(ctx: &ExpCtx) {
    let mut rows = Vec::new();
    println!(
        "{:>6} | {:>12} | {:>14} | {:>10}",
        "R", "recovery s", "node energy KJ", "GB"
    );
    for r in 1u32..=5 {
        let cluster = recovery_cluster(ctx, 9, 9.765, r, 1, 0);
        let report = cluster.run_with_min_duration(SimDuration::from_secs(150));
        let rec = report.recovery.as_ref().expect("recovery must run");
        // Single-node energy during recovery: average node power over the
        // recovery window × duration.
        let (from, to) = (rec.detected_at_secs, rec.finished_at_secs);
        let window: Vec<f64> = report
            .power_timeline
            .iter()
            .filter(|(t, _)| (from..to).contains(t))
            .map(|(_, w)| *w)
            .collect();
        let (avg_w, _) = mean_err(&window);
        let node_kj = avg_w * rec.duration_secs / 1e3;
        println!(
            "{r:>6} | {:>10.1} s | {node_kj:>12.2} KJ | {:>8.2}",
            rec.duration_secs, rec.replayed_gb
        );
        rows.push(vec![
            r.to_string(),
            format!("{:.2}", rec.duration_secs),
            format!("{node_kj:.3}"),
            format!("{avg_w:.1}"),
        ]);
    }
    ctx.write_csv(
        "fig11",
        "replication,recovery_s,node_energy_kj,avg_node_watts",
        &rows,
    );
    let bars: Vec<(String, f64)> = rows
        .iter()
        .map(|r| (format!("R={}", r[0]), r[1].parse().unwrap()))
        .collect();
    println!("{}", bar_chart("Fig 11a — recovery time (s)", &bars, 36));
    println!("paper: 10 s at R1 growing ~linearly to 55 s at R5; node energy grows linearly; 114-117 W during recovery");
}

// ---------------------------------------------------------------------
// Fig 12: aggregated disk read/write activity during recovery (9 nodes).
// ---------------------------------------------------------------------
fn fig12(ctx: &ExpCtx) {
    let cluster = recovery_cluster(ctx, 9, 9.765, 4, 1, 0);
    let report = cluster.run_with_min_duration(SimDuration::from_secs(150));
    let rec = report.recovery.as_ref().expect("recovery must run");
    println!(
        "recovery window: {:.1}s → {:.1}s",
        rec.detected_at_secs, rec.finished_at_secs
    );
    println!("{:>6} | {:>10} {:>10}", "t(s)", "read MB/s", "write MB/s");
    let mut rows = Vec::new();
    for (t, r, w) in &report.disk_timeline {
        if *t >= 55.0 && *t <= rec.finished_at_secs + 5.0 {
            println!("{t:>6.0} | {r:>10.1} {w:>10.1}");
        }
        rows.push(vec![format!("{t}"), format!("{r:.2}"), format!("{w:.2}")]);
    }
    ctx.write_csv("fig12", "t_s,read_mbps,write_mbps", &rows);
    println!("paper: small read bump after the crash, large write peak (~350 MB/s aggregate), reads and writes overlapping until the end");
}

// ---------------------------------------------------------------------
// Fig 13: throughput with client-side throttling; 10 servers, R2.
// ---------------------------------------------------------------------
fn fig13(ctx: &ExpCtx) {
    let mut rows = Vec::new();
    println!(
        "{:>8} | {:>14} {:>14}",
        "clients", "rate 200 r/s", "rate 500 r/s"
    );
    for clients in [10usize, 30, 60] {
        let mut cells = Vec::new();
        let mut csv = vec![clients.to_string()];
        for rate in [200.0f64, 500.0] {
            // Bound ops so each run covers ~20 s of paced traffic.
            let ops = (rate as u64) * 20;
            let workload = WorkloadSpec::standard(StandardWorkload::A).with_ops_per_client(ops);
            let cfg = ClusterConfig::new(10, clients, workload)
                .with_replication(2)
                .with_throttle(rate)
                .with_seed(ctx.seed);
            let report = Cluster::new(cfg).run();
            cells.push(report.throughput_ops);
            csv.push(format!("{:.0}", report.throughput_ops));
        }
        println!("{clients:>8} | {:>12.0} {:>14.0}", cells[0], cells[1]);
        rows.push(csv);
    }
    ctx.write_csv("fig13", "clients,rate200_ops,rate500_ops", &rows);
    println!(
        "paper: linear scaling (clients × rate), no crashes, even at 10 servers with replication"
    );
}

// ---------------------------------------------------------------------
// §IX ablation: segment size vs recovery time (8 MB best on HDD; SSD
// favours smaller segments).
// ---------------------------------------------------------------------
fn ablation_segment(ctx: &ExpCtx) {
    let mut rows = Vec::new();
    println!(
        "{:>10} | {:>12} {:>12}   (recovery seconds, R3)",
        "segment", "HDD", "SSD"
    );
    for mb in [1usize, 2, 4, 8, 16, 32] {
        let mut cells = Vec::new();
        let mut csv = vec![format!("{mb}")];
        for ssd in [false, true] {
            let mut cluster = recovery_cluster(ctx, 9, 4.0, 3, 1, 0);
            let mut cfg = cluster.config().clone();
            cfg.segment_bytes = mb << 20;
            if ssd {
                cfg.disk = rmc_disk::DiskProfile::commodity_ssd();
            }
            cluster = Cluster::new(cfg);
            cluster.plan_kill(SimTime::from_secs(60), Some(4));
            let report = cluster.run_with_min_duration(SimDuration::from_secs(120));
            let secs = report.recovery.map(|r| r.duration_secs).unwrap_or(f64::NAN);
            cells.push(secs);
            csv.push(format!("{secs:.2}"));
        }
        println!("{:>8}MB | {:>10.1} s {:>10.1} s", mb, cells[0], cells[1]);
        rows.push(csv);
    }
    ctx.write_csv(
        "ablation_segment",
        "segment_mb,hdd_recovery_s,ssd_recovery_s",
        &rows,
    );
    println!("paper (§IX): 8 MB gave the best recovery times on their HDDs; smaller segments pay off only with SSDs");
}

// ---------------------------------------------------------------------
// §IX-B ablation: strong vs relaxed write consistency.
// ---------------------------------------------------------------------
fn ablation_consistency(ctx: &ExpCtx) {
    let mut rows = Vec::new();
    println!(
        "{:>6} | {:>12} {:>12} | {:>10} {:>10}  (20 servers, 10 clients, A)",
        "R", "strong", "relaxed", "str W/node", "rlx W/node"
    );
    for r in 1u32..=4 {
        let mut thr = Vec::new();
        let mut pw = Vec::new();
        for consistency in [Consistency::Strong, Consistency::Relaxed] {
            let mut cfg = ClusterConfig::new(20, 10, section_v_workload(ctx, StandardWorkload::A))
                .with_replication(r)
                .with_seed(ctx.seed);
            cfg.consistency = consistency;
            let report = Cluster::new(cfg).run();
            thr.push(report.throughput_ops);
            pw.push(report.avg_node_watts());
        }
        println!(
            "{r:>6} | {:>12} {:>12} | {:>9.1}W {:>9.1}W",
            kops(thr[0]),
            kops(thr[1]),
            pw[0],
            pw[1]
        );
        rows.push(vec![
            r.to_string(),
            format!("{:.0}", thr[0]),
            format!("{:.0}", thr[1]),
            format!("{:.2}", pw[0]),
            format!("{:.2}", pw[1]),
        ]);
    }
    ctx.write_csv(
        "ablation_consistency",
        "replication,strong_ops,relaxed_ops,strong_watts,relaxed_watts",
        &rows,
    );
    println!(
        "§IX-B hypothesis: answering before backup acks removes most of the replication penalty"
    );
}

// ---------------------------------------------------------------------
// Extra ablation: the log cleaner's cost (the paper sized workloads to
// avoid it; this measures what they avoided).
// ---------------------------------------------------------------------
fn ablation_cleaner(ctx: &ExpCtx) {
    let mut rows = Vec::new();
    println!(
        "{:>14} | {:>12} | {:>16}",
        "memory budget", "throughput", "cleanings/node"
    );
    // Per-node volume here is tiny (≈25 MB appended nominal), so "tight"
    // budgets are a few segments — enough to force cleaning into the write
    // path without changing the workload.
    for (label, memory_gb) in [
        ("ample (10GB)", 10.0f64),
        ("tight (40MB)", 0.040),
        ("very tight (32MB)", 0.032),
    ] {
        let workload = WorkloadSpec::standard(StandardWorkload::A)
            .with_record_count(100_000)
            .with_ops_per_client(ctx.ops(100_000));
        let mut cfg = ClusterConfig::new(10, 30, workload).with_seed(ctx.seed);
        cfg.memory_bytes = (memory_gb * (1u64 << 30) as f64) as u64;
        let mut cluster = Cluster::new(cfg);
        cluster.preload();
        let cleanings_before: u64 = (0..10)
            .map(|n| cluster.node(n).store.stats().cleanings)
            .sum();
        let report = cluster.run();
        println!(
            "{label:>14} | {:>12} | (pre-run: {cleanings_before})",
            kops(report.throughput_ops)
        );
        rows.push(vec![
            label.to_owned(),
            format!("{:.0}", report.throughput_ops),
        ]);
    }
    ctx.write_csv("ablation_cleaner", "memory,throughput_ops", &rows);
    println!("note: per-node data is ~10MB of 100K records over 10 servers; the tight budgets force the cleaner into the write path");
}

// ---------------------------------------------------------------------
// Extra ablation: random vs copyset backup placement — probability of data
// loss under simultaneous failures (the Copysets trade-off the paper cites
// alongside its replication findings).
// ---------------------------------------------------------------------
fn ablation_copyset(ctx: &ExpCtx) {
    let servers = 20;
    let r = 3u32;
    let trials = 200u64;
    let mut rows = Vec::new();
    println!(
        "{:>10} | {:>14} {:>14}   ({} servers, R={r}, {} trials)",
        "dead", "random", "copyset", servers, trials
    );
    for dead_count in [3usize, 4, 5] {
        let mut csv = vec![dead_count.to_string()];
        let mut cells = Vec::new();
        for placement in [Placement::Random, Placement::Copyset] {
            let mut losses = 0u64;
            for t in 0..trials {
                let workload = WorkloadSpec::standard(StandardWorkload::C)
                    .with_record_count(2_000)
                    .with_ops_per_client(0);
                let mut cfg = ClusterConfig::new(servers, 1, workload)
                    .with_replication(r)
                    .with_seed(ctx.seed + t);
                cfg.placement = placement;
                let mut cluster = Cluster::new(cfg);
                cluster.preload();
                // Deterministic pseudo-random victim set per trial.
                let mut dead = Vec::new();
                let mut x = t.wrapping_mul(0x9E3779B97F4A7C15);
                while dead.len() < dead_count {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let v = (x >> 33) as usize % servers;
                    if !dead.contains(&v) {
                        dead.push(v);
                    }
                }
                if cluster.would_lose_data(&dead) {
                    losses += 1;
                }
            }
            cells.push(losses as f64 / trials as f64);
            csv.push(format!("{:.4}", losses as f64 / trials as f64));
        }
        println!(
            "{dead_count:>10} | {:>13.1}% {:>13.1}%",
            cells[0] * 100.0,
            cells[1] * 100.0
        );
        rows.push(csv);
    }
    ctx.write_csv(
        "ablation_copyset",
        "simultaneous_failures,random_loss_prob,copyset_loss_prob",
        &rows,
    );
    println!("expected: copyset placement loses data in far fewer failure combinations (Cidon et al., cited as [28])");
}

// ---------------------------------------------------------------------
// Extra ablation: §IX-A elastic cluster sizing — energy saved by draining
// idle servers under light load.
// ---------------------------------------------------------------------
fn ablation_elastic(ctx: &ExpCtx) {
    let mut rows = Vec::new();
    println!(
        "{:>10} | {:>12} {:>12} | {:>12} {:>12} | {:>9}",
        "clients", "static op/s", "elast op/s", "static KJ", "elast KJ", "saved"
    );
    for clients in [1usize, 2, 6] {
        // Sustained light load: throttled clients for a ~60 s window (the
        // Sierra-style "low I/O activity period" the paper's §IX-A cites).
        let run = |elastic: Option<ElasticPolicy>| {
            let workload = WorkloadSpec::standard(StandardWorkload::C)
                .with_record_count(20_000)
                .with_ops_per_client(ctx.ops(300_000));
            let mut cfg = ClusterConfig::new(10, clients, workload)
                .with_seed(ctx.seed)
                .with_throttle(500.0);
            cfg.elastic = elastic;
            Cluster::new(cfg).run()
        };
        let st = run(None);
        let el = run(Some(ElasticPolicy::default()));
        let saved = 1.0 - el.energy.total_energy_joules / st.energy.total_energy_joules;
        println!(
            "{clients:>10} | {:>12} {:>12} | {:>10.2}KJ {:>10.2}KJ | {:>8.1}%",
            kops(st.throughput_ops),
            kops(el.throughput_ops),
            st.total_energy_kj(),
            el.total_energy_kj(),
            saved * 100.0
        );
        rows.push(vec![
            clients.to_string(),
            format!("{:.0}", st.throughput_ops),
            format!("{:.0}", el.throughput_ops),
            format!("{:.3}", st.total_energy_kj()),
            format!("{:.3}", el.total_energy_kj()),
            format!("{:.4}", saved),
        ]);
    }
    ctx.write_csv(
        "ablation_elastic",
        "clients,static_ops,elastic_ops,static_kj,elastic_kj,energy_saved_frac",
        &rows,
    );
    println!("§IX-A hypothesis: adapting the number of servers to the workload recovers the energy-proportionality lost to polling");
}

// ---------------------------------------------------------------------
// Extra coverage the paper names as future work: YCSB workloads D (read
// latest, 5 % inserts) and F (read-modify-write) next to A/B/C.
// ---------------------------------------------------------------------
fn extra_workloads(ctx: &ExpCtx) {
    let mut rows = Vec::new();
    println!(
        "{:>10} | {:>12} | {:>10} | {:>10}   (10 servers, 30 clients)",
        "workload", "throughput", "W/node", "op/J"
    );
    for w in [
        StandardWorkload::A,
        StandardWorkload::B,
        StandardWorkload::C,
        StandardWorkload::D,
        StandardWorkload::F,
    ] {
        let cfg = ClusterConfig::new(10, 30, section_v_workload(ctx, w)).with_seed(ctx.seed);
        let report = Cluster::new(cfg).run();
        println!(
            "{:>10} | {:>12} | {:>8.1} W | {:>10.0}",
            w.to_string(),
            kops(report.throughput_ops),
            report.avg_node_watts(),
            report.ops_per_joule
        );
        rows.push(vec![
            w.to_string(),
            format!("{:.0}", report.throughput_ops),
            format!("{:.2}", report.avg_node_watts()),
            format!("{:.1}", report.ops_per_joule),
        ]);
    }
    ctx.write_csv(
        "extra_workloads",
        "workload,throughput_ops,avg_node_watts,ops_per_joule",
        &rows,
    );
    println!("expectation: D behaves like B (reads dominate; inserts are writes); F behaves like A (RMW pays the update path)");
}
