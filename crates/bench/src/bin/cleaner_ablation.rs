//! Cleaner-ablation benchmark: what does moving log cleaning off the
//! write path buy under memory pressure?
//!
//! Three configurations of the standalone server run the same write-heavy
//! workload with the live set sized at ~2/3 of the log budget — the regime
//! the paper's log-structured memory is designed for, where every segment
//! of new writes forces a segment's worth of cleaning:
//!
//! - **inline** — the seed design: no cleaner threads, the writer that
//!   crosses the free-slot threshold runs a full cleaning pass while
//!   holding the shard's write lock;
//! - **concurrent** — background per-shard cleaner threads drive the
//!   two-level cleaner (in-memory compaction + combined cost-benefit
//!   cleaning) concurrently with service threads;
//! - **concurrent_no_compaction** — same threads, compaction level
//!   disabled: every pass is a full combined clean.
//!
//! Emits `BENCH_cleaner.json` (schema checked by
//! `rmc_bench::report::validate_cleaner_report`; CI's cleaner-smoke job
//! re-validates it).
//!
//! Usage:
//!   cleaner_ablation [--smoke] [--out PATH]   run, write the report
//!   cleaner_ablation --check PATH             validate an existing report

use std::process::ExitCode;
use std::sync::Arc;

use rmc_bench::json::{self, Json};
use rmc_bench::kops;
use rmc_bench::report::{validate_cleaner_report, SCHEMA_VERSION};
use rmc_logstore::{CleanerConfig, LogConfig, TableId};
use rmc_standalone::{Client, ServerConfig, StandaloneServer};
use rmc_ycsb::runner::{self, KvBackend, LatencySummary, RunSummary, RunnerConfig};
use rmc_ycsb::{Distribution, Mix, WorkloadSpec};

const TABLE: TableId = TableId(1);

struct StandaloneBackend {
    client: Client,
}

impl KvBackend for StandaloneBackend {
    fn read(&self, key: &[u8]) -> Result<bool, String> {
        self.client
            .read(TABLE, key)
            .map(|r| r.is_some())
            .map_err(|e| e.to_string())
    }

    fn write(&self, key: &[u8], value: &[u8]) -> Result<(), String> {
        self.client
            .write(TABLE, key, value)
            .map(|_| ())
            .map_err(|e| e.to_string())
    }

    fn multiread(&self, keys: &[Vec<u8>]) -> Result<usize, String> {
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        self.client
            .multiread(TABLE, &refs)
            .map(|rs| rs.iter().filter(|r| r.is_some()).count())
            .map_err(|e| e.to_string())
    }

    fn multiwrite(&self, ops: &[(Vec<u8>, Vec<u8>)]) -> Result<(), String> {
        let refs: Vec<(&[u8], &[u8])> = ops
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
            .collect();
        for outcome in self
            .client
            .multiwrite(TABLE, &refs)
            .map_err(|e| e.to_string())?
        {
            outcome.map_err(|e| e.to_string())?;
        }
        Ok(())
    }
}

#[derive(Clone, Copy)]
struct Scale {
    record_count: u64,
    ops_per_client: u64,
    clients: usize,
    value_bytes: usize,
    segment_bytes: usize,
    max_segments: usize,
    shards: usize,
    worker_threads: usize,
    smoke: bool,
}

/// Live set ≈ 2/3 of the log budget (see `live_fraction` in the report):
/// the overwrite-only workload then churns several budgets' worth of data
/// through the log, so throughput is cleaner-bound.
const FULL: Scale = Scale {
    record_count: 8192,
    ops_per_client: 30_000,
    clients: 2,
    value_bytes: 256,
    segment_bytes: 64 << 10,
    max_segments: 32,
    shards: 2,
    worker_threads: 2,
    smoke: false,
};

const SMOKE: Scale = Scale {
    record_count: 2048,
    ops_per_client: 2_000,
    clients: 2,
    value_bytes: 64,
    segment_bytes: 16 << 10,
    max_segments: 12,
    shards: 2,
    worker_threads: 2,
    smoke: true,
};

impl Scale {
    fn budget_bytes(&self) -> u64 {
        (self.segment_bytes * self.max_segments * self.shards) as u64
    }

    /// Approximate live-set fraction of the budget (entry overhead is
    /// key + ~40 B of header/checksum on top of the value).
    fn live_fraction(&self) -> f64 {
        let entry = self.value_bytes as u64 + 48;
        (self.record_count * entry) as f64 / self.budget_bytes() as f64
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Variant {
    Inline,
    Concurrent,
    ConcurrentNoCompaction,
}

const VARIANTS: &[Variant] = &[
    Variant::Inline,
    Variant::Concurrent,
    Variant::ConcurrentNoCompaction,
];

impl Variant {
    fn name(self) -> &'static str {
        match self {
            Variant::Inline => "inline",
            Variant::Concurrent => "concurrent",
            Variant::ConcurrentNoCompaction => "concurrent_no_compaction",
        }
    }

    fn server_config(self, scale: Scale) -> ServerConfig {
        ServerConfig {
            worker_threads: scale.worker_threads,
            shards: scale.shards,
            log: LogConfig {
                segment_bytes: scale.segment_bytes,
                max_segments: scale.max_segments,
                ordered_index: false,
            },
            concurrent_cleaning: self != Variant::Inline,
            cleaner: CleanerConfig {
                compaction: self != Variant::ConcurrentNoCompaction,
                ..CleanerConfig::default()
            },
            ..ServerConfig::default()
        }
    }
}

struct Measurement {
    variant: Variant,
    summary: RunSummary,
    /// Engine-side cleaner counters, aggregated across shards.
    cleanings: u64,
    segments_freed: u64,
    segments_compacted: u64,
    survivor_bytes: u64,
    bytes_relocated: u64,
    tombstones_dropped: u64,
    /// Background-thread counters (zero in inline mode).
    cleaner_passes: u64,
    cleaner_busy_ns: u64,
}

fn run_variant(variant: Variant, scale: Scale) -> Result<Measurement, String> {
    let server = StandaloneServer::start(variant.server_config(scale));
    let spec = WorkloadSpec {
        name: format!("cleaner-{}", variant.name()),
        // Overwrite-only: the workload that exists to exercise cleaning.
        mix: Mix {
            read: 0.0,
            update: 1.0,
            insert: 0.0,
            rmw: 0.0,
            scan: 0.0,
        },
        distribution: Distribution::Uniform,
        record_count: scale.record_count,
        value_bytes: scale.value_bytes,
        ops_per_client: scale.ops_per_client,
    };
    let backend = Arc::new(StandaloneBackend {
        client: server.client(),
    });
    runner::load(&*backend, &spec, 1)?;
    let summary = runner::run(
        &backend,
        &spec,
        &RunnerConfig {
            clients: scale.clients,
            batch_size: 1,
            seed: 42,
        },
    )?;
    let stats = server.store().stats();
    let metrics = server.metrics();
    let m = Measurement {
        variant,
        summary,
        cleanings: stats.cleanings,
        segments_freed: stats.segments_freed,
        segments_compacted: stats.segments_compacted,
        survivor_bytes: stats.survivor_bytes,
        bytes_relocated: stats.bytes_relocated,
        tombstones_dropped: stats.tombstones_dropped,
        cleaner_passes: metrics.sum("cleaner.", ".passes"),
        cleaner_busy_ns: metrics.sum("cleaner.", ".busy_ns"),
    };
    server.shutdown();
    println!(
        "  {:<26} {:>9} ops/s  write p99 {:>8.1} us  cleanings={} freed={} compacted={}",
        variant.name(),
        kops(m.summary.throughput_ops_per_sec),
        m.summary.writes.p99_us,
        m.cleanings,
        m.segments_freed,
        m.segments_compacted,
    );
    Ok(m)
}

fn latency_json(lat: &LatencySummary) -> Json {
    Json::obj(vec![
        ("count", lat.count.into()),
        ("mean", lat.mean_us.into()),
        ("p50", lat.p50_us.into()),
        ("p90", lat.p90_us.into()),
        ("p99", lat.p99_us.into()),
        ("max", lat.max_us.into()),
    ])
}

fn report(measurements: &[Measurement], scale: Scale) -> Result<Json, String> {
    let results: Vec<Json> = measurements
        .iter()
        .map(|m| {
            Json::obj(vec![
                ("mode", m.variant.name().into()),
                ("ops", m.summary.ops.into()),
                ("elapsed_secs", m.summary.elapsed_secs.into()),
                (
                    "throughput_ops_per_sec",
                    m.summary.throughput_ops_per_sec.into(),
                ),
                ("write_latency_us", latency_json(&m.summary.writes)),
                ("cleanings", m.cleanings.into()),
                ("segments_freed", m.segments_freed.into()),
                ("segments_compacted", m.segments_compacted.into()),
                ("survivor_bytes", m.survivor_bytes.into()),
                ("bytes_relocated", m.bytes_relocated.into()),
                ("tombstones_dropped", m.tombstones_dropped.into()),
                ("cleaner_passes", m.cleaner_passes.into()),
                ("cleaner_busy_ns", m.cleaner_busy_ns.into()),
            ])
        })
        .collect();

    let pick = |v: Variant| {
        measurements
            .iter()
            .find(|m| m.variant == v)
            .map(|m| m.summary.throughput_ops_per_sec)
            .ok_or_else(|| format!("missing {} run", v.name()))
    };
    let inline = pick(Variant::Inline)?;
    let concurrent = pick(Variant::Concurrent)?;
    let speedup = concurrent / inline;
    println!(
        "\ncomparison (write-only, live set {:.0}% of budget): inline {} -> concurrent {} ops/s = {speedup:.2}x",
        scale.live_fraction() * 100.0,
        kops(inline),
        kops(concurrent),
    );

    Ok(Json::obj(vec![
        ("schema_version", SCHEMA_VERSION.into()),
        ("benchmark", "cleaner_ablation".into()),
        (
            "config",
            Json::obj(vec![
                ("record_count", scale.record_count.into()),
                ("ops_per_client", scale.ops_per_client.into()),
                ("clients", scale.clients.into()),
                ("value_bytes", scale.value_bytes.into()),
                ("shards", scale.shards.into()),
                ("worker_threads", scale.worker_threads.into()),
                ("memory_budget_bytes", scale.budget_bytes().into()),
                ("live_fraction", scale.live_fraction().into()),
                ("smoke", scale.smoke.into()),
            ]),
        ),
        ("results", Json::Arr(results)),
        (
            "comparison",
            Json::obj(vec![
                ("inline_ops_per_sec", inline.into()),
                ("concurrent_ops_per_sec", concurrent.into()),
                ("speedup", speedup.into()),
            ]),
        ),
    ]))
}

fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = json::parse(&text)?;
    validate_cleaner_report(&doc)?;
    println!("{path}: valid cleaner-ablation report");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = FULL;
    let mut out = String::from("BENCH_cleaner.json");
    let mut check_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => scale = SMOKE,
            "--out" if i + 1 < args.len() => {
                i += 1;
                out = args[i].clone();
            }
            "--check" if i + 1 < args.len() => {
                i += 1;
                check_path = Some(args[i].clone());
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: cleaner_ablation [--smoke] [--out PATH] | --check PATH");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    if let Some(path) = check_path {
        return match check(&path) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    println!(
        "cleaner ablation ({}): {} records x {} B over {} KiB budget ({:.0}% live), {} clients x {} ops",
        if scale.smoke { "smoke" } else { "full" },
        scale.record_count,
        scale.value_bytes,
        scale.budget_bytes() >> 10,
        scale.live_fraction() * 100.0,
        scale.clients,
        scale.ops_per_client,
    );
    let outcome = (|| {
        let measurements: Vec<Measurement> = VARIANTS
            .iter()
            .map(|&v| run_variant(v, scale))
            .collect::<Result<_, _>>()?;
        let doc = report(&measurements, scale)?;
        // Never emit a report CI's validator would reject.
        validate_cleaner_report(&doc)?;
        std::fs::write(&out, format!("{doc}\n")).map_err(|e| format!("write {out}: {e}"))?;
        println!("-> {out}");
        Ok::<(), String>(())
    })();
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
