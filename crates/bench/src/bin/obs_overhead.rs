//! Observability ablation: what does always-on instrumentation cost?
//!
//! The `rmc-obs` design brief is "cheap enough to leave on": sampled stage
//! timing, lock-free TimeTrace records, one relaxed load on every
//! unsampled op. This bench proves the budget on the worst case — the
//! zero-copy read-path hot loop, where a single extra clock read would
//! already cost ~10 %:
//!
//! - `disabled` — the kill switch ([`rmc_obs::set_enabled`]) off: every
//!   record point reduces to a relaxed load + branch;
//! - `enabled` — the default shipping configuration: 1-in-32 stage
//!   sampling, TimeTrace on.
//!
//! Both modes run against the **same server instance** (memory layout,
//! allocator state, and cache geometry are per-instance and vary by
//! several percent — more than the effect under test), in interleaved
//! rounds (disabled, enabled, disabled, …) so slow drift hits both
//! alike (and alternating order within each round so run-after-run
//! effects cancel); the headline overhead is the 25 %-trimmed mean of the
//! per-round paired deltas, which shrugs off one-off stalls in either
//! direction on shared hardware.
//! The report validator enforces `overhead_percent <= budget_percent`
//! (3 %), so CI's `--check` pass doubles as the acceptance gate.
//!
//! Usage:
//!   obs_overhead [--smoke] [--out PATH]   run the ablation, write a report
//!   obs_overhead --check PATH             validate an existing report

use std::process::ExitCode;
use std::sync::Arc;

use rmc_bench::json::{self, Json};
use rmc_bench::kops;
use rmc_bench::report::{paired_overhead_percent, validate_obs_report, SCHEMA_VERSION};
use rmc_logstore::{LogConfig, TableId};
use rmc_standalone::{Client, ServerConfig, StandaloneServer};
use rmc_ycsb::runner::{self, KvBackend, LatencySummary, RunSummary, RunnerConfig};
use rmc_ycsb::{Distribution, Mix, WorkloadSpec};

const TABLE: TableId = TableId(1);
const SHARDS: usize = 16;
/// The acceptance bound: enabled instrumentation may cost at most this
/// much read throughput versus the kill-switch baseline.
const BUDGET_PERCENT: f64 = 3.0;

/// Reads go through `read_view` — the zero-copy fast path where the
/// instrumentation's sampled `Instant::now()` pair is proportionally most
/// expensive.
struct ViewBackend {
    client: Client,
}

impl KvBackend for ViewBackend {
    fn read(&self, key: &[u8]) -> Result<bool, String> {
        self.client
            .read_view(TABLE, key)
            .map(|v| v.is_some())
            .map_err(|e| e.to_string())
    }

    fn write(&self, key: &[u8], value: &[u8]) -> Result<(), String> {
        self.client
            .write(TABLE, key, value)
            .map(|_| ())
            .map_err(|e| e.to_string())
    }

    fn multiread(&self, keys: &[Vec<u8>]) -> Result<usize, String> {
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        self.client
            .multiread_views(TABLE, &refs)
            .map(|vs| vs.iter().filter(|v| v.is_some()).count())
            .map_err(|e| e.to_string())
    }

    fn multiwrite(&self, ops: &[(Vec<u8>, Vec<u8>)]) -> Result<(), String> {
        let refs: Vec<(&[u8], &[u8])> = ops
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
            .collect();
        for outcome in self
            .client
            .multiwrite(TABLE, &refs)
            .map_err(|e| e.to_string())?
        {
            outcome.map_err(|e| e.to_string())?;
        }
        Ok(())
    }
}

#[derive(Clone, Copy)]
struct Scale {
    record_count: u64,
    ops_per_client: u64,
    value_bytes: usize,
    /// Interleaved (disabled, enabled) round pairs. The full scale's
    /// working set sits near the cache-capacity boundary, where run-to-run
    /// throughput is noisier, so it buys extra rounds for the trimmed mean.
    rounds: usize,
    smoke: bool,
}

const FULL: Scale = Scale {
    record_count: 10_000,
    ops_per_client: 400_000,
    value_bytes: 256,
    rounds: 48,
    smoke: false,
};

const SMOKE: Scale = Scale {
    record_count: 512,
    ops_per_client: 300_000,
    value_bytes: 64,
    rounds: 16,
    smoke: true,
};

fn mode_name(enabled: bool) -> &'static str {
    if enabled {
        "enabled"
    } else {
        "disabled"
    }
}

fn latency_json(lat: &LatencySummary) -> Json {
    Json::obj(vec![
        ("count", lat.count.into()),
        ("mean", lat.mean_us.into()),
        ("p50", lat.p50_us.into()),
        ("p90", lat.p90_us.into()),
        ("p99", lat.p99_us.into()),
        ("max", lat.max_us.into()),
    ])
}

struct Measurement {
    enabled: bool,
    round: usize,
    summary: RunSummary,
    /// `stage.read_service_ns` samples taken during the run — proof the
    /// switch was actually in the claimed position.
    stage_samples: u64,
}

fn run_measured(
    backend: &Arc<ViewBackend>,
    spec: &WorkloadSpec,
    hist: &rmc_runtime::HistogramHandle,
    enabled: bool,
    round: usize,
) -> Result<Measurement, String> {
    rmc_obs::set_enabled(enabled);
    let before = hist.count();
    let summary = runner::run(
        backend,
        spec,
        &RunnerConfig {
            clients: 1,
            batch_size: 1,
            seed: 42,
        },
    );
    rmc_obs::set_enabled(true);
    let summary = summary?;
    let stage_samples = hist.count() - before;
    println!(
        "  round {round} {:<8} {:>9} ops/s  read p99 {:>7.2} us  stage samples {}",
        mode_name(enabled),
        kops(summary.throughput_ops_per_sec),
        summary.reads.p99_us,
        stage_samples,
    );
    Ok(Measurement {
        enabled,
        round,
        summary,
        stage_samples,
    })
}

/// Runs the full interleaved ablation against one shared server instance.
fn run_ablation(scale: Scale) -> Result<Vec<Measurement>, String> {
    let server = StandaloneServer::start(ServerConfig {
        worker_threads: 1,
        shards: SHARDS,
        log: LogConfig {
            segment_bytes: 1 << 20,
            max_segments: 256,
            ordered_index: false,
        },
        ..ServerConfig::default()
    });
    let spec = WorkloadSpec {
        name: "read100-obs".to_owned(),
        mix: Mix {
            read: 1.0,
            update: 0.0,
            insert: 0.0,
            rmw: 0.0,
            scan: 0.0,
        },
        distribution: Distribution::Uniform,
        record_count: scale.record_count,
        value_bytes: scale.value_bytes,
        ops_per_client: scale.ops_per_client,
    };
    let backend = Arc::new(ViewBackend {
        client: server.client(),
    });
    runner::load(&*backend, &spec, 1)?;
    let hist = server.metrics().histogram("stage.read_service_ns");

    // Unrecorded warmup: first-touch page faults and allocator growth land
    // here, not in round 0.
    run_measured(&backend, &spec, &hist, false, 0)?;
    let mut measurements = Vec::new();
    for round in 0..scale.rounds {
        // Interleave so drift lands on both modes symmetrically, and
        // alternate which mode goes first so any run-after-run order
        // effect (cache state left by the previous run) cancels too.
        let first = round % 2 == 0;
        measurements.push(run_measured(&backend, &spec, &hist, first, round)?);
        measurements.push(run_measured(&backend, &spec, &hist, !first, round)?);
    }
    server.shutdown();
    Ok(measurements)
}

fn report(measurements: &[Measurement], scale: Scale) -> Result<Json, String> {
    let results: Vec<Json> = measurements
        .iter()
        .map(|m| {
            Json::obj(vec![
                ("mode", mode_name(m.enabled).into()),
                ("round", m.round.into()),
                ("ops", m.summary.ops.into()),
                ("elapsed_secs", m.summary.elapsed_secs.into()),
                (
                    "throughput_ops_per_sec",
                    m.summary.throughput_ops_per_sec.into(),
                ),
                ("stage_samples", m.stage_samples.into()),
                ("read_latency_us", latency_json(&m.summary.reads)),
            ])
        })
        .collect();

    // Headline statistic: the trimmed mean of per-round paired overheads
    // (shared with the validator, which recomputes it from these rows).
    // The per-mode medians are informational context.
    let mut pairs = Vec::new();
    for round in 0..scale.rounds {
        let pick = |enabled: bool| {
            measurements
                .iter()
                .find(|m| m.round == round && m.enabled == enabled)
                .map(|m| m.summary.throughput_ops_per_sec)
                .ok_or_else(|| format!("round {round} is missing a mode"))
        };
        pairs.push((pick(false)?, pick(true)?));
    }
    let overhead = paired_overhead_percent(&pairs)?;
    let median = |enabled: bool| {
        let mut v: Vec<f64> = measurements
            .iter()
            .filter(|m| m.enabled == enabled)
            .map(|m| m.summary.throughput_ops_per_sec)
            .collect();
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let disabled = median(false);
    let enabled = median(true);
    println!(
        "\ncomparison (trimmed paired mean over {} rounds): disabled median {} -> enabled median {} ops/s, overhead {overhead:+.2}% (budget {BUDGET_PERCENT}%)",
        scale.rounds,
        kops(disabled),
        kops(enabled),
    );

    Ok(Json::obj(vec![
        ("schema_version", SCHEMA_VERSION.into()),
        ("benchmark", "obs_overhead".into()),
        (
            "config",
            Json::obj(vec![
                ("record_count", scale.record_count.into()),
                ("ops_per_client", scale.ops_per_client.into()),
                ("value_bytes", scale.value_bytes.into()),
                ("shards", SHARDS.into()),
                ("rounds", scale.rounds.into()),
                ("smoke", scale.smoke.into()),
            ]),
        ),
        ("results", Json::Arr(results)),
        (
            "comparison",
            Json::obj(vec![
                ("disabled_ops_per_sec", disabled.into()),
                ("enabled_ops_per_sec", enabled.into()),
                ("overhead_percent", overhead.into()),
                ("budget_percent", BUDGET_PERCENT.into()),
            ]),
        ),
    ]))
}

fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = json::parse(&text)?;
    validate_obs_report(&doc)?;
    println!("{path}: valid obs-overhead report (within budget)");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = FULL;
    let mut out = String::from("BENCH_obs.json");
    let mut check_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => scale = SMOKE,
            "--out" if i + 1 < args.len() => {
                i += 1;
                out = args[i].clone();
            }
            "--check" if i + 1 < args.len() => {
                i += 1;
                check_path = Some(args[i].clone());
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: obs_overhead [--smoke] [--out PATH] | --check PATH");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    if let Some(path) = check_path {
        return match check(&path) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    println!(
        "observability ablation ({}): {} records x {} B, read-only, {} ops x {} interleaved rounds",
        if scale.smoke { "smoke" } else { "full" },
        scale.record_count,
        scale.value_bytes,
        scale.ops_per_client,
        scale.rounds,
    );
    let outcome: Result<(), String> = (|| {
        let measurements = run_ablation(scale)?;
        let doc = report(&measurements, scale)?;
        // The validator enforces the overhead budget — never emit a report
        // CI's `--check` would reject.
        validate_obs_report(&doc)?;
        std::fs::write(&out, format!("{doc}\n")).map_err(|e| format!("write {out}: {e}"))?;
        println!("-> {out}");
        Ok(())
    })();
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
