//! YCSB-driven throughput harness for the standalone server.
//!
//! Binds the wall-clock YCSB runner (`rmc_ycsb::runner`) to
//! `rmc_standalone` and sweeps worker counts × read/write mixes × dispatch
//! architectures (shard affinity vs the seed's global queue) × batch sizes,
//! emitting a machine-readable `BENCH_standalone.json` (schema validated by
//! `rmc_bench::report`, which CI's smoke run re-checks).
//!
//! A second backend drives the same workloads through the replicated
//! mini-cluster (`rmc_standalone::MiniCluster`): coordinator + masters +
//! backups as real threads, every write paying the primary-backup
//! replication round trip. Its numbers land in the report's
//! `mini_cluster` section — the wall-clock cost of durability next to the
//! unreplicated single-server rows.
//!
//! A third backend (`--backend net_cluster`) takes the cluster out of
//! process: it spawns one `rmcd` coordinator and [`NET_SERVERS`] server
//! processes on loopback TCP, drives them through `rmc-wire` framed
//! connections, and emits a separate `BENCH_wire.json` with wire-health
//! counters and the servers' replication ack-wait decomposition fetched
//! over the live Stats RPC.
//!
//! Usage:
//!   standalone_ycsb [--smoke] [--out PATH]   run the sweep, write a report
//!   standalone_ycsb --backend net_cluster [--smoke] [--out PATH]
//!                                            spawn rmcd processes, write BENCH_wire.json
//!   standalone_ycsb --check PATH             validate an existing report (any schema)

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Arc;

use crossbeam::channel::{Receiver, Sender};
use rmc_bench::json::{self, Json};
use rmc_bench::kops;
use rmc_bench::report::{validate_standalone_report, validate_wire_report, SCHEMA_VERSION};
use rmc_core::protocol::{server_id, ProtocolConfig};
use rmc_energy::{attribute_energy, EnergyAttribution, NodeActivity, OpClassUsage, PowerProfile};
use rmc_logstore::{LogConfig, TableId};
use rmc_runtime::{MetricsRegistry, SimDuration};
use rmc_standalone::{
    reserve_addrs, rmcd_sibling_path, Client, DispatchMode, FleetConfig, MiniClient, MiniCluster,
    NetClient, RmcdFleet, ServerConfig, StandaloneServer, STAGE_SAMPLE,
};
use rmc_wire::AddressBook;
use rmc_ycsb::runner::{self, KvBackend, LatencySummary, RunSummary, RunnerConfig};
use rmc_ycsb::{Distribution, Mix, WorkloadSpec};

const TABLE: TableId = TableId(1);

/// Adapts a standalone-server client to the runner's backend trait.
struct StandaloneBackend {
    client: Client,
}

impl KvBackend for StandaloneBackend {
    fn read(&self, key: &[u8]) -> Result<bool, String> {
        self.client
            .read(TABLE, key)
            .map(|r| r.is_some())
            .map_err(|e| e.to_string())
    }

    fn write(&self, key: &[u8], value: &[u8]) -> Result<(), String> {
        self.client
            .write(TABLE, key, value)
            .map(|_| ())
            .map_err(|e| e.to_string())
    }

    fn multiread(&self, keys: &[Vec<u8>]) -> Result<usize, String> {
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        self.client
            .multiread(TABLE, &refs)
            .map(|rs| rs.iter().filter(|r| r.is_some()).count())
            .map_err(|e| e.to_string())
    }

    fn multiwrite(&self, ops: &[(Vec<u8>, Vec<u8>)]) -> Result<(), String> {
        let refs: Vec<(&[u8], &[u8])> = ops
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
            .collect();
        for outcome in self
            .client
            .multiwrite(TABLE, &refs)
            .map_err(|e| e.to_string())?
        {
            outcome.map_err(|e| e.to_string())?;
        }
        Ok(())
    }
}

/// Adapts the replicated mini-cluster to the runner's backend trait.
///
/// `MiniClient` ops take `&mut self` (they own a reply channel), so the
/// backend keeps a pool of clients in a channel: each op checks one out,
/// runs against it, and returns it. Pool size matches the runner's thread
/// count, so checkout never blocks in steady state.
struct MiniClusterBackend {
    ret: Sender<MiniClient>,
    pool: Receiver<MiniClient>,
}

impl MiniClusterBackend {
    fn new(clients: Vec<MiniClient>) -> Self {
        let (ret, pool) = crossbeam::channel::unbounded();
        for c in clients {
            ret.send(c).expect("pool channel open");
        }
        MiniClusterBackend { ret, pool }
    }

    fn with_client<T>(
        &self,
        f: impl FnOnce(&mut MiniClient) -> Result<T, String>,
    ) -> Result<T, String> {
        let mut client = self
            .pool
            .recv()
            .map_err(|_| "mini-cluster client pool closed".to_string())?;
        let result = f(&mut client);
        let _ = self.ret.send(client);
        result
    }
}

impl KvBackend for MiniClusterBackend {
    fn read(&self, key: &[u8]) -> Result<bool, String> {
        self.with_client(|c| c.get(key).map(|r| r.is_some()))
    }

    fn write(&self, key: &[u8], value: &[u8]) -> Result<(), String> {
        self.with_client(|c| c.put(key, value))
    }

    fn multiread(&self, keys: &[Vec<u8>]) -> Result<usize, String> {
        self.with_client(|c| {
            let mut found = 0;
            for key in keys {
                if c.get(key)?.is_some() {
                    found += 1;
                }
            }
            Ok(found)
        })
    }

    fn multiwrite(&self, ops: &[(Vec<u8>, Vec<u8>)]) -> Result<(), String> {
        self.with_client(|c| {
            for (key, value) in ops {
                c.put(key, value)?;
            }
            Ok(())
        })
    }
}

#[derive(Clone, Copy)]
struct Scale {
    record_count: u64,
    ops_per_client: u64,
    clients: usize,
    value_bytes: usize,
    worker_counts: &'static [usize],
    smoke: bool,
}

const FULL: Scale = Scale {
    record_count: 10_000,
    ops_per_client: 25_000,
    clients: 4,
    value_bytes: 256,
    worker_counts: &[1, 2, 4],
    smoke: false,
};

const SMOKE: Scale = Scale {
    record_count: 512,
    ops_per_client: 500,
    clients: 2,
    value_bytes: 64,
    worker_counts: &[2],
    smoke: true,
};

/// The read/write mixes swept (names are stable schema values).
const MIXES: &[(&str, f64)] = &[("read50", 0.50), ("read95", 0.95), ("read100", 1.0)];
const BATCH_SIZES: &[usize] = &[1, 16];
/// The mix and batch size the acceptance comparison is quoted on.
const COMPARISON_MIX: &str = "read95";

fn spec_for(name: &str, read_fraction: f64, scale: Scale) -> WorkloadSpec {
    WorkloadSpec {
        name: name.to_owned(),
        mix: Mix {
            read: read_fraction,
            update: 1.0 - read_fraction,
            insert: 0.0,
            rmw: 0.0,
            scan: 0.0,
        },
        distribution: Distribution::Uniform,
        record_count: scale.record_count,
        value_bytes: scale.value_bytes,
        ops_per_client: scale.ops_per_client,
    }
}

fn dispatch_name(mode: DispatchMode) -> &'static str {
    match mode {
        DispatchMode::ShardAffinity => "shard_affinity",
        DispatchMode::GlobalQueue => "global_queue",
    }
}

fn latency_json(lat: &LatencySummary) -> Json {
    Json::obj(vec![
        ("count", lat.count.into()),
        ("mean", lat.mean_us.into()),
        ("p50", lat.p50_us.into()),
        ("p90", lat.p90_us.into()),
        ("p99", lat.p99_us.into()),
        ("max", lat.max_us.into()),
    ])
}

struct Measurement {
    dispatch: DispatchMode,
    workers: usize,
    mix: &'static str,
    read_fraction: f64,
    batch_size: usize,
    summary: RunSummary,
    /// Background-cleaner counters snapshotted before shutdown.
    cleaner: Json,
    /// Read-path mode and fast-path counters snapshotted before shutdown.
    read_path: Json,
    /// Per-stage latency decomposition (`stage.*` histograms).
    stages: Json,
    /// Per-op-class energy attribution derived from the stage busy times.
    energy: Json,
}

/// One `stage.*` histogram rendered as the report's summary block.
fn stage_summary(m: &MetricsRegistry, name: &str) -> Json {
    let h = m.histogram(name).snapshot();
    Json::obj(vec![
        ("count", h.count().into()),
        ("mean_ns", h.mean().into()),
        ("p50_ns", h.quantile(0.5).into()),
        ("p99_ns", h.quantile(0.99).into()),
        ("max_ns", h.max().into()),
    ])
}

/// The per-stage latency decomposition block: where a sampled op's time
/// went — dispatch-queue wait, shard service, and (for reads that lost the
/// lock-free race) fallback-lock dwell.
fn stages_json(server: &StandaloneServer) -> Json {
    let m = server.metrics();
    Json::obj(vec![
        ("sample_period", STAGE_SAMPLE.into()),
        ("queue_wait_ns", stage_summary(m, "stage.queue_wait_ns")),
        ("read_service_ns", stage_summary(m, "stage.read_service_ns")),
        (
            "write_service_ns",
            stage_summary(m, "stage.write_service_ns"),
        ),
        (
            "fallback_locked_ns",
            stage_summary(m, "stage.fallback_locked_ns"),
        ),
    ])
}

/// Splits the run's modelled node energy across op classes using the
/// decomposed stage busy times (sampled sums scaled back up by the
/// sampling period; cleaner busy time is tracked unsampled).
fn energy_json(server: &StandaloneServer, summary: &RunSummary) -> Json {
    let m = server.metrics();
    let sampled_busy = |name: &str| {
        let h = m.histogram(name).snapshot();
        (h.mean() * h.count() as f64) as u64 * STAGE_SAMPLE
    };
    let read_busy = sampled_busy("stage.read_service_ns");
    let write_busy = sampled_busy("stage.write_service_ns");
    let cleaner_busy = m.sum("cleaner.", ".busy_ns");
    let classes = vec![
        OpClassUsage::new("read", summary.reads.count, read_busy),
        OpClassUsage::new("write", summary.writes.count, write_busy),
        OpClassUsage::new("cleaner", 0, cleaner_busy),
    ];
    let elapsed = summary.elapsed_secs.max(1e-9);
    let total_busy = (read_busy + write_busy + cleaner_busy) as f64;
    let profile = PowerProfile::grid5000_nancy();
    let activity = NodeActivity {
        cpu: (total_busy / (elapsed * 1e9)).clamp(0.0, 1.0),
        ..NodeActivity::idle()
    };
    let split = attribute_energy(&profile, activity, elapsed, &classes);
    energy_split_json(&split)
}

/// Renders an energy attribution as the report's `energy` block.
fn energy_split_json(split: &[EnergyAttribution]) -> Json {
    let total: f64 = split.iter().map(|a| a.joules).sum();
    Json::obj(vec![
        ("profile", "grid5000_nancy".into()),
        ("total_joules", total.into()),
        (
            "classes",
            Json::Arr(
                split
                    .iter()
                    .map(|a| {
                        Json::obj(vec![
                            ("name", a.name.as_str().into()),
                            ("ops", a.ops.into()),
                            ("joules", a.joules.into()),
                            ("micro_joules_per_op", a.micro_joules_per_op.into()),
                            ("ops_per_joule", a.ops_per_joule.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Sums the per-shard `cleaner.{shard}.*` counters into the report's
/// cleaner block. Near-zero under this sweep's roomy log budget — the
/// block exists so operators see cleaning activity (or its absence) next
/// to the throughput it might explain; `cleaner_ablation` is the bench
/// that forces real pressure.
fn cleaner_json(server: &StandaloneServer) -> Json {
    let m = server.metrics();
    let sum = |name: &str| m.sum("cleaner.", &format!(".{name}"));
    Json::obj(vec![
        ("passes", sum("passes").into()),
        ("segments_freed", sum("segments_freed").into()),
        ("segments_compacted", sum("segments_compacted").into()),
        ("bytes_relocated", sum("bytes_relocated").into()),
        ("tombstones_dropped", sum("tombstones_dropped").into()),
        ("busy_ns", sum("busy_ns").into()),
    ])
}

/// The report's per-row `read_path` block: which read path served the run
/// plus the engine's fast-path counters — so every throughput number says
/// whether (and how often) reads actually took the lock-free path.
fn read_path_json(server: &StandaloneServer) -> Json {
    let stats = server.store().stats();
    Json::obj(vec![
        ("mode", server.store().read_path().name().into()),
        ("lockfree", stats.read_lockfree.into()),
        ("fallback_locked", stats.read_fallback_locked.into()),
    ])
}

fn run_one(
    dispatch: DispatchMode,
    workers: usize,
    mix: &'static str,
    read_fraction: f64,
    batch_size: usize,
    scale: Scale,
) -> Result<Measurement, String> {
    let server = StandaloneServer::start(ServerConfig {
        worker_threads: workers,
        shards: 16,
        log: LogConfig {
            segment_bytes: 1 << 20,
            max_segments: 256,
            ordered_index: false,
        },
        queue_capacity: 1024,
        dispatch,
        ..ServerConfig::default()
    });
    let spec = spec_for(mix, read_fraction, scale);
    let backend = Arc::new(StandaloneBackend {
        client: server.client(),
    });
    runner::load(&*backend, &spec, 1)?;
    let summary = runner::run(
        &backend,
        &spec,
        &RunnerConfig {
            clients: scale.clients,
            batch_size,
            seed: 42,
        },
    )?;
    let cleaner = cleaner_json(&server);
    let read_path = read_path_json(&server);
    let stages = stages_json(&server);
    let energy = energy_json(&server, &summary);
    let p50_us =
        |name: &str| server.metrics().histogram(name).snapshot().quantile(0.5) as f64 / 1000.0;
    let queue_p50 = p50_us("stage.queue_wait_ns");
    let read_svc_p50 = p50_us("stage.read_service_ns");
    let write_svc_p50 = p50_us("stage.write_service_ns");
    server.shutdown();
    println!(
        "  {:<14} workers={workers} mix={mix:<8} batch={batch_size:<3} {:>9} ops/s  read p99 {:>8.1} us",
        dispatch_name(dispatch),
        kops(summary.throughput_ops_per_sec),
        summary.reads.p99_us,
    );
    // The sampled decomposition next to the end-to-end figures it must
    // stay consistent with: each stage p50 can only be a part of — never
    // exceed by much — the matching op class's end-to-end p50.
    println!(
        "      stages (1/{STAGE_SAMPLE} sampled): queue p50 {queue_p50:.1} us | read svc p50 {read_svc_p50:.1} us (e2e {:.1}) | write svc p50 {write_svc_p50:.1} us (e2e {:.1})",
        summary.reads.p50_us,
        summary.writes.p50_us,
    );
    Ok(Measurement {
        dispatch,
        workers,
        mix,
        read_fraction,
        batch_size,
        summary,
        cleaner,
        read_path,
        stages,
        energy,
    })
}

/// Mini-cluster shape: small enough that the channel-bound replicated
/// path finishes promptly, big enough to exercise bucket spread.
const MINI_SERVERS: usize = 4;
const MINI_REPLICATION: usize = 2;

/// Runs the comparison mix through the replicated mini-cluster: real
/// coordinator/master/backup threads, every write acked only after its
/// replicas are staged. Returns the report's `mini_cluster` section.
fn run_mini(scale: Scale) -> Result<Json, String> {
    let pool = scale.clients;
    let mut cfg = ProtocolConfig::new(MINI_SERVERS, pool, MINI_REPLICATION);
    // Wall-clock-safe control-plane timings (scheduler jitter must not
    // masquerade as a missed heartbeat).
    cfg.heartbeat_interval = SimDuration::from_millis(15);
    cfg.failure_timeout = SimDuration::from_millis(150);
    cfg.retry_timeout = SimDuration::from_millis(50);

    let mut spec = spec_for(COMPARISON_MIX, 0.95, scale);
    // Every op is a cross-thread RPC (writes add a replication round
    // trip), so run a slice of the single-server volume.
    spec.record_count = (scale.record_count / 4).max(64);
    spec.ops_per_client = (scale.ops_per_client / 10).max(100);

    let (cluster, clients) = MiniCluster::start(cfg);
    let backend = Arc::new(MiniClusterBackend::new(clients));
    runner::load(&*backend, &spec, 1)?;
    let summary = runner::run(
        &backend,
        &spec,
        &RunnerConfig {
            clients: pool,
            batch_size: 1,
            seed: 42,
        },
    )?;
    drop(backend);
    let report = cluster.shutdown();
    // Replication-ack wait: how long masters sat on a committed write
    // waiting for backup acks — the decomposed cost of durability, next to
    // the end-to-end write latency it explains. Counts sum over servers;
    // quantiles quote the worst server.
    let ack_count = report.metrics.sum("server.", ".ack_wait_count");
    let snap = report.metrics.snapshot();
    let worst = |suffix: &str| {
        snap.iter()
            .filter(|(k, _)| k.starts_with("server.") && k.ends_with(suffix))
            .map(|(_, &v)| v)
            .max()
            .unwrap_or(0)
    };
    println!(
        "  {:<14} servers={MINI_SERVERS} r={MINI_REPLICATION} mix={COMPARISON_MIX:<8} {:>9} ops/s  write p99 {:>8.1} us",
        "mini_cluster",
        kops(summary.throughput_ops_per_sec),
        summary.writes.p99_us,
    );
    println!(
        "      ack wait: {} waits | worst-server p99 {:.1} us (write e2e p99 {:.1}) | {} span events",
        ack_count,
        worst(".ack_wait_p99_ns") as f64 / 1000.0,
        summary.writes.p99_us,
        report.spans.len(),
    );
    Ok(Json::obj(vec![
        (
            "replication_ack_wait",
            Json::obj(vec![
                ("count", ack_count.into()),
                ("worst_p50_ns", worst(".ack_wait_p50_ns").into()),
                ("worst_p99_ns", worst(".ack_wait_p99_ns").into()),
                ("max_ns", worst(".ack_wait_max_ns").into()),
            ]),
        ),
        ("span_events", report.spans.len().into()),
        ("servers", MINI_SERVERS.into()),
        ("replication", MINI_REPLICATION.into()),
        ("mix", COMPARISON_MIX.into()),
        ("record_count", spec.record_count.into()),
        ("ops", summary.ops.into()),
        ("elapsed_secs", summary.elapsed_secs.into()),
        (
            "throughput_ops_per_sec",
            summary.throughput_ops_per_sec.into(),
        ),
        ("read_latency_us", latency_json(&summary.reads)),
        ("write_latency_us", latency_json(&summary.writes)),
    ]))
}

/// Socket-engine fleet shape: one coordinator + three server processes,
/// every write replicated to two backups over real loopback TCP.
const NET_SERVERS: usize = 3;
const NET_REPLICATION: usize = 2;

/// Adapts the socket-engine client to the runner's backend trait — the
/// wire twin of [`MiniClusterBackend`]: `NetClient` ops take `&mut self`,
/// so a channel pool checks one out per op.
struct NetClusterBackend {
    ret: Sender<NetClient>,
    pool: Receiver<NetClient>,
}

impl NetClusterBackend {
    fn new(clients: Vec<NetClient>) -> Self {
        let (ret, pool) = crossbeam::channel::unbounded();
        for c in clients {
            ret.send(c).expect("pool channel open");
        }
        NetClusterBackend { ret, pool }
    }

    fn with_client<T>(
        &self,
        f: impl FnOnce(&mut NetClient) -> Result<T, String>,
    ) -> Result<T, String> {
        let mut client = self
            .pool
            .recv()
            .map_err(|_| "net-cluster client pool closed".to_string())?;
        let result = f(&mut client);
        let _ = self.ret.send(client);
        result
    }
}

impl KvBackend for NetClusterBackend {
    fn read(&self, key: &[u8]) -> Result<bool, String> {
        self.with_client(|c| c.get(key).map(|r| r.is_some()))
    }

    fn write(&self, key: &[u8], value: &[u8]) -> Result<(), String> {
        self.with_client(|c| c.put(key, value))
    }

    fn multiread(&self, keys: &[Vec<u8>]) -> Result<usize, String> {
        self.with_client(|c| {
            let mut found = 0;
            for key in keys {
                if c.get(key)?.is_some() {
                    found += 1;
                }
            }
            Ok(found)
        })
    }

    fn multiwrite(&self, ops: &[(Vec<u8>, Vec<u8>)]) -> Result<(), String> {
        self.with_client(|c| {
            for (key, value) in ops {
                c.put(key, value)?;
            }
            Ok(())
        })
    }
}

// Fleet lifecycle plumbing (spawn with ready-line sync, graceful join on
// shutdown, SIGKILL on drop) lives in `rmc_standalone::RmcdFleet` now,
// shared with the recovery ablation bench and the kill-9 durability test.

struct WireMeasurement {
    mix: &'static str,
    read_fraction: f64,
    batch_size: usize,
    summary: RunSummary,
    /// `wire.*` health counters summed over every client fabric.
    wire: Json,
    /// Replication ack-wait decomposition from the servers' Stats RPC.
    stages: Json,
    /// Energy modelled from client-observed service times.
    energy: Json,
}

/// Models the run's energy from the only vantage a separate-process
/// cluster offers without a sampling daemon: each op class's busy time is
/// its client-observed mean latency times its count — network wait
/// included, so this is the whole-request envelope, not server CPU alone.
fn wire_energy_json(summary: &RunSummary) -> Json {
    let busy = |lat: &LatencySummary| (lat.mean_us * 1000.0 * lat.count as f64) as u64;
    let read_busy = busy(&summary.reads);
    let write_busy = busy(&summary.writes);
    let classes = vec![
        OpClassUsage::new("read", summary.reads.count, read_busy),
        OpClassUsage::new("write", summary.writes.count, write_busy),
    ];
    let elapsed = summary.elapsed_secs.max(1e-9);
    let profile = PowerProfile::grid5000_nancy();
    let activity = NodeActivity {
        cpu: ((read_busy + write_busy) as f64 / (elapsed * 1e9)).clamp(0.0, 1.0),
        ..NodeActivity::idle()
    };
    energy_split_json(&attribute_energy(&profile, activity, elapsed, &classes))
}

/// One wire row: a fresh `rmcd` fleet on fresh ports, loaded and driven
/// over TCP, with wire health and server-side stage decomposition
/// snapshotted before teardown (so shutdown races can't leak into the
/// counters). A fleet per row keeps each row's connects/frames
/// attributable to that row alone.
fn run_wire_row(
    mix: &'static str,
    read_fraction: f64,
    scale: Scale,
) -> Result<WireMeasurement, String> {
    let addrs = reserve_addrs(1 + NET_SERVERS)?;
    let cluster = RmcdFleet::spawn(FleetConfig::new(
        rmcd_sibling_path()?,
        addrs.clone(),
        NET_SERVERS,
        NET_REPLICATION,
    ))?;
    let book_addrs: Vec<Option<SocketAddr>> = addrs.iter().copied().map(Some).collect();
    let mut clients = Vec::new();
    let mut registries = Vec::new();
    for i in 0..scale.clients {
        let mut cfg = ProtocolConfig::new(NET_SERVERS, scale.clients, NET_REPLICATION);
        cfg.retry_timeout = SimDuration::from_millis(50);
        let client = NetClient::connect(cfg, i, AddressBook::new(book_addrs.clone()));
        registries.push(client.fabric().registry().clone());
        clients.push(client);
    }

    let mut spec = spec_for(mix, read_fraction, scale);
    // Every op is a framed TCP round trip (writes add a replication round
    // trip on top), so run the mini-cluster's reduced volume.
    spec.record_count = (scale.record_count / 4).max(64);
    spec.ops_per_client = (scale.ops_per_client / 10).max(100);

    let backend = Arc::new(NetClusterBackend::new(clients));
    runner::load(&*backend, &spec, 1)?;
    let summary = runner::run(
        &backend,
        &spec,
        &RunnerConfig {
            clients: scale.clients,
            batch_size: 1,
            seed: 42,
        },
    )?;

    // Replication ack-wait from the servers' live Stats RPC: counts sum
    // over servers, quantiles quote the worst one.
    let mut ack = (0u64, 0u64, 0u64, 0u64);
    for s in 0..NET_SERVERS {
        let stats = backend.with_client(|c| c.node_stats(server_id(s)))?;
        let stat = |key: &str| {
            stats
                .iter()
                .find(|(name, _)| name.as_str() == key)
                .map_or(0, |(_, v)| *v)
        };
        ack.0 += stat("ack_wait_count");
        ack.1 = ack.1.max(stat("ack_wait_p50_ns"));
        ack.2 = ack.2.max(stat("ack_wait_p99_ns"));
        ack.3 = ack.3.max(stat("ack_wait_max_ns"));
    }
    let wire_sum = |name: &str| registries.iter().map(|r| r.get(name)).sum::<u64>();
    let wire = Json::obj(vec![
        ("connects", wire_sum("wire.connects").into()),
        ("reconnects", wire_sum("wire.reconnects").into()),
        ("frames_tx", wire_sum("wire.frames_tx").into()),
        ("frames_rx", wire_sum("wire.frames_rx").into()),
        ("decode_errors", wire_sum("wire.decode_errors").into()),
    ]);
    let stages = Json::obj(vec![(
        "replication_ack_wait",
        Json::obj(vec![
            ("count", ack.0.into()),
            ("worst_p50_ns", ack.1.into()),
            ("worst_p99_ns", ack.2.into()),
            ("max_ns", ack.3.into()),
        ]),
    )]);
    let energy = wire_energy_json(&summary);
    drop(backend); // closes every client fabric
                   // Graceful teardown: each node flushes on stdin-EOF, and the processes
                   // are joined rather than abandoned (escalates to SIGKILL only if one
                   // hangs past the deadline).
    let _ = cluster.shutdown(std::time::Duration::from_secs(10));

    println!(
        "  {:<14} servers={NET_SERVERS} r={NET_REPLICATION} mix={mix:<8} batch=1   {:>9} ops/s  read p99 {:>8.1} us",
        "net_cluster",
        kops(summary.throughput_ops_per_sec),
        summary.reads.p99_us,
    );
    println!(
        "      wire: {} connects | {} tx / {} rx frames | ack wait {} (worst p99 {:.1} us)",
        wire_sum("wire.connects"),
        wire_sum("wire.frames_tx"),
        wire_sum("wire.frames_rx"),
        ack.0,
        ack.2 as f64 / 1000.0,
    );
    Ok(WireMeasurement {
        mix,
        read_fraction,
        batch_size: 1,
        summary,
        wire,
        stages,
        energy,
    })
}

/// Runs every mix through real `rmcd` processes and assembles the
/// `BENCH_wire.json` document (`benchmark: "wire_ycsb"`). The comparison
/// quotes read100 over read50 — what write replication over the wire
/// costs end to end.
fn run_net(scale: Scale) -> Result<Json, String> {
    let mut rows = Vec::new();
    for &(mix, read_fraction) in MIXES {
        rows.push(run_wire_row(mix, read_fraction, scale)?);
    }

    let pick = |mix: &str| {
        rows.iter()
            .find(|r| r.mix == mix)
            .map(|r| r.summary.throughput_ops_per_sec)
            .ok_or_else(|| format!("missing {mix} wire run"))
    };
    let read50 = pick("read50")?;
    let read100 = pick("read100")?;
    let speedup = read100 / read50;
    println!(
        "\nwire comparison (read100 vs read50, {} clients): {} -> {} ops/s = {speedup:.2}x",
        scale.clients,
        kops(read50),
        kops(read100),
    );

    let results: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("backend", "net_cluster".into()),
                ("mix", r.mix.into()),
                ("read_fraction", r.read_fraction.into()),
                ("clients", scale.clients.into()),
                ("batch_size", r.batch_size.into()),
                ("ops", r.summary.ops.into()),
                ("elapsed_secs", r.summary.elapsed_secs.into()),
                (
                    "throughput_ops_per_sec",
                    r.summary.throughput_ops_per_sec.into(),
                ),
                ("read_latency_us", latency_json(&r.summary.reads)),
                ("write_latency_us", latency_json(&r.summary.writes)),
                ("wire", r.wire.clone()),
                ("stages", r.stages.clone()),
                ("energy", r.energy.clone()),
            ])
        })
        .collect();

    Ok(Json::obj(vec![
        ("schema_version", SCHEMA_VERSION.into()),
        ("benchmark", "wire_ycsb".into()),
        (
            "config",
            Json::obj(vec![
                ("servers", NET_SERVERS.into()),
                ("replication", NET_REPLICATION.into()),
                ("clients", scale.clients.into()),
                ("record_count", (scale.record_count / 4).max(64).into()),
                (
                    "ops_per_client",
                    (scale.ops_per_client / 10).max(100).into(),
                ),
                ("value_bytes", scale.value_bytes.into()),
                ("smoke", scale.smoke.into()),
            ]),
        ),
        ("results", Json::Arr(results)),
        (
            "comparison",
            Json::obj(vec![
                ("clients", scale.clients.into()),
                ("read50_ops_per_sec", read50.into()),
                ("read100_ops_per_sec", read100.into()),
                ("speedup", speedup.into()),
            ]),
        ),
    ]))
}

fn sweep(scale: Scale) -> Result<Vec<Measurement>, String> {
    let mut all = Vec::new();
    for &dispatch in &[DispatchMode::GlobalQueue, DispatchMode::ShardAffinity] {
        for &workers in scale.worker_counts {
            for &(mix, read_fraction) in MIXES {
                for &batch_size in BATCH_SIZES {
                    all.push(run_one(
                        dispatch,
                        workers,
                        mix,
                        read_fraction,
                        batch_size,
                        scale,
                    )?);
                }
            }
        }
    }
    Ok(all)
}

fn report(measurements: &[Measurement], mini: Json, scale: Scale) -> Result<Json, String> {
    let results: Vec<Json> = measurements
        .iter()
        .map(|m| {
            Json::obj(vec![
                ("dispatch", dispatch_name(m.dispatch).into()),
                ("workers", m.workers.into()),
                ("mix", m.mix.into()),
                ("read_fraction", m.read_fraction.into()),
                ("batch_size", m.batch_size.into()),
                ("ops", m.summary.ops.into()),
                ("elapsed_secs", m.summary.elapsed_secs.into()),
                (
                    "throughput_ops_per_sec",
                    m.summary.throughput_ops_per_sec.into(),
                ),
                ("read_latency_us", latency_json(&m.summary.reads)),
                ("write_latency_us", latency_json(&m.summary.writes)),
                ("cleaner", m.cleaner.clone()),
                ("read_path", m.read_path.clone()),
                ("stages", m.stages.clone()),
                ("energy", m.energy.clone()),
            ])
        })
        .collect();

    // The headline comparison: affinity vs the seed's global queue at the
    // largest swept worker count, single ops, on the read-heavy mix.
    let workers = *scale.worker_counts.iter().max().expect("non-empty sweep");
    let pick = |dispatch: DispatchMode| {
        measurements
            .iter()
            .find(|m| {
                m.dispatch == dispatch
                    && m.workers == workers
                    && m.mix == COMPARISON_MIX
                    && m.batch_size == 1
            })
            .map(|m| m.summary.throughput_ops_per_sec)
            .ok_or_else(|| format!("missing {} comparison run", dispatch_name(dispatch)))
    };
    let baseline = pick(DispatchMode::GlobalQueue)?;
    let affinity = pick(DispatchMode::ShardAffinity)?;
    let speedup = affinity / baseline;
    println!(
        "\ncomparison ({COMPARISON_MIX}, {workers} workers, batch=1): \
         {} -> {} ops/s = {speedup:.2}x",
        kops(baseline),
        kops(affinity),
    );

    Ok(Json::obj(vec![
        ("schema_version", SCHEMA_VERSION.into()),
        ("benchmark", "standalone_ycsb".into()),
        (
            "config",
            Json::obj(vec![
                ("record_count", scale.record_count.into()),
                ("ops_per_client", scale.ops_per_client.into()),
                ("clients", scale.clients.into()),
                ("value_bytes", scale.value_bytes.into()),
                ("smoke", scale.smoke.into()),
            ]),
        ),
        ("results", Json::Arr(results)),
        (
            "comparison",
            Json::obj(vec![
                ("workers", workers.into()),
                ("mix", COMPARISON_MIX.into()),
                ("baseline_ops_per_sec", baseline.into()),
                ("affinity_ops_per_sec", affinity.into()),
                ("speedup", speedup.into()),
            ]),
        ),
        ("mini_cluster", mini),
    ]))
}

fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = json::parse(&text)?;
    // Dispatch on the document's own benchmark tag so one --check flag
    // validates whichever report this binary can emit.
    let kind = doc
        .get("benchmark")
        .and_then(Json::as_str)
        .unwrap_or("standalone_ycsb")
        .to_owned();
    match kind.as_str() {
        "wire_ycsb" => validate_wire_report(&doc)?,
        _ => validate_standalone_report(&doc)?,
    }
    println!("{path}: valid {kind} report");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = FULL;
    let mut backend = String::from("standalone");
    let mut out: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => scale = SMOKE,
            "--backend" if i + 1 < args.len() => {
                i += 1;
                backend = args[i].clone();
            }
            "--out" if i + 1 < args.len() => {
                i += 1;
                out = Some(args[i].clone());
            }
            "--check" if i + 1 < args.len() => {
                i += 1;
                check_path = Some(args[i].clone());
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: standalone_ycsb [--backend standalone|net_cluster] [--smoke] \
                     [--out PATH] | --check PATH"
                );
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    if let Some(path) = check_path {
        return match check(&path) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let outcome = match backend.as_str() {
        "net_cluster" => {
            let out = out.unwrap_or_else(|| "BENCH_wire.json".to_owned());
            println!(
                "wire YCSB over rmcd processes ({}): {} servers r={}, {} clients",
                if scale.smoke { "smoke" } else { "full" },
                NET_SERVERS,
                NET_REPLICATION,
                scale.clients,
            );
            run_net(scale).and_then(|doc| {
                // Never emit a report CI's validator would reject.
                validate_wire_report(&doc)?;
                std::fs::write(&out, format!("{doc}\n"))
                    .map_err(|e| format!("write {out}: {e}"))?;
                println!("-> {out}");
                Ok(())
            })
        }
        "standalone" => {
            let out = out.unwrap_or_else(|| "BENCH_standalone.json".to_owned());
            println!(
                "standalone YCSB sweep ({}): {} records x {} B, {} clients x {} ops",
                if scale.smoke { "smoke" } else { "full" },
                scale.record_count,
                scale.value_bytes,
                scale.clients,
                scale.ops_per_client,
            );
            sweep(scale).and_then(|measurements| {
                let mini = run_mini(scale)?;
                let doc = report(&measurements, mini, scale)?;
                // Never emit a report CI's validator would reject.
                validate_standalone_report(&doc)?;
                std::fs::write(&out, format!("{doc}\n"))
                    .map_err(|e| format!("write {out}: {e}"))?;
                println!("-> {out}");
                Ok(())
            })
        }
        other => Err(format!(
            "unknown backend {other:?} (expected standalone or net_cluster)"
        )),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
