//! Minimal JSON value, serializer, and parser.
//!
//! The bench drivers emit machine-readable results (`BENCH_standalone.json`)
//! and CI re-parses them to validate the schema. The workspace builds
//! offline with no JSON dependency, so this is a small self-contained
//! implementation: enough JSON for flat benchmark reports (no unicode
//! escapes beyond `\uXXXX` parsing, numbers as `f64`).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Builder shorthand for an object.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Serializes on a single line with no whitespace — one JSONL record.
    ///
    /// The `Display` impl pretty-prints for human-diffed `BENCH_*.json`
    /// files; history logs (`bench_history.jsonl`) need exactly one line
    /// per entry instead.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => escape_into(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn fmt_indented(value: &Json, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
    let pad = "  ".repeat(depth);
    let inner = "  ".repeat(depth + 1);
    match value {
        Json::Null => f.write_str("null"),
        Json::Bool(b) => write!(f, "{b}"),
        Json::Num(n) => {
            // Integral values print without a fraction so the output is
            // stable and diff-friendly.
            if n.fract() == 0.0 && n.abs() < 9e15 {
                write!(f, "{}", *n as i64)
            } else {
                write!(f, "{n}")
            }
        }
        Json::Str(s) => write_escaped(f, s),
        Json::Arr(items) if items.is_empty() => f.write_str("[]"),
        Json::Arr(items) => {
            f.write_str("[\n")?;
            for (i, item) in items.iter().enumerate() {
                f.write_str(&inner)?;
                fmt_indented(item, f, depth + 1)?;
                f.write_str(if i + 1 < items.len() { ",\n" } else { "\n" })?;
            }
            write!(f, "{pad}]")
        }
        Json::Obj(fields) if fields.is_empty() => f.write_str("{}"),
        Json::Obj(fields) => {
            f.write_str("{\n")?;
            for (i, (k, v)) in fields.iter().enumerate() {
                f.write_str(&inner)?;
                write_escaped(f, k)?;
                f.write_str(": ")?;
                fmt_indented(v, f, depth + 1)?;
                f.write_str(if i + 1 < fields.len() { ",\n" } else { "\n" })?;
            }
            write!(f, "{pad}}}")
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_indented(self, f, 0)
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// A human-readable message with the byte offset of the problem.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // on char boundaries is safe via chars()).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_document() {
        let doc = Json::obj(vec![
            ("name", "standalone \"ycsb\"".into()),
            ("count", 42u64.into()),
            ("rate", 1234.5.into()),
            ("ok", true.into()),
            ("nothing", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::obj(vec![("p50", 1.5.into())]), 7u64.into()]),
            ),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = doc.to_string();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let parsed = parse(" { \"a\\n\" : [ 1 , -2.5e1 , \"\\u0041\" ] } ").unwrap();
        let arr = parsed.get("a\n").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert_eq!(arr[2].as_str(), Some("A"));
    }

    #[test]
    fn compact_form_is_one_line_and_roundtrips() {
        let doc = Json::obj(vec![
            ("name", "a \"b\"\n".into()),
            ("n", 3u64.into()),
            ("xs", Json::Arr(vec![1u64.into(), Json::Null, false.into()])),
            ("o", Json::obj(vec![("p50", 1.5.into())])),
        ]);
        let line = doc.to_compact();
        assert!(!line.contains('\n'), "got {line:?}");
        assert!(!line.contains(": "), "got {line:?}");
        assert_eq!(parse(&line).unwrap(), doc);
        assert_eq!(
            line,
            r#"{"name":"a \"b\"\n","n":3,"xs":[1,null,false],"o":{"p50":1.5}}"#
        );
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(5.0).to_string(), "5");
        assert_eq!(Json::Num(5.25).to_string(), "5.25");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn accessors() {
        let doc = parse("{\"x\": 3, \"s\": \"v\"}").unwrap();
        assert_eq!(doc.get("x").unwrap().as_f64(), Some(3.0));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("v"));
        assert!(doc.get("missing").is_none());
        assert!(doc.get("x").unwrap().as_str().is_none());
    }
}
