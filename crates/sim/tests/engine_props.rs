//! Property tests for the simulation kernel: causal ordering and
//! determinism hold for arbitrary event schedules.

use proptest::prelude::*;
use rmc_sim::{SimRng, SimTime, Simulation};

proptest! {
    /// Events always execute in non-decreasing time order, with FIFO
    /// tie-breaking among equal timestamps.
    #[test]
    fn execution_order_is_causal(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut sim = Simulation::new(Vec::<(u64, usize)>::new());
        for (seq, &t) in times.iter().enumerate() {
            sim.scheduler_mut().schedule_at(
                SimTime::from_micros(t),
                move |log: &mut Vec<(u64, usize)>, _| log.push((t, seq)),
            );
        }
        sim.run();
        let log = sim.into_state();
        prop_assert_eq!(log.len(), times.len());
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated: {:?}", w);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated among equal times: {:?}", w);
            }
        }
    }

    /// Chained handlers observe a monotone clock.
    #[test]
    fn nested_scheduling_is_monotone(seed in any::<u64>()) {
        struct S {
            rng: SimRng,
            last: SimTime,
            count: u32,
            violations: u32,
        }
        let mut sim = Simulation::new(S {
            rng: SimRng::seed_from_u64(seed),
            last: SimTime::ZERO,
            count: 0,
            violations: 0,
        });
        fn step(s: &mut S, sched: &mut rmc_sim::Scheduler<S>) {
            let now = sched.now();
            if now < s.last {
                s.violations += 1;
            }
            s.last = now;
            s.count += 1;
            if s.count < 300 {
                let d = s.rng.gen_below(1_000);
                sched.schedule_after(rmc_sim::SimDuration::from_nanos(d), step);
            }
        }
        sim.scheduler_mut().schedule_at(SimTime::ZERO, step);
        sim.run();
        prop_assert_eq!(sim.state().violations, 0);
        prop_assert_eq!(sim.state().count, 300);
    }

    /// Cancellation removes exactly the cancelled events, regardless of
    /// interleaving.
    #[test]
    fn cancellation_is_exact(
        times in proptest::collection::vec(0u64..100, 2..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 2..100),
    ) {
        let mut sim = Simulation::new(Vec::<usize>::new());
        let mut expected = Vec::new();
        let mut ids = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            let id = sim.scheduler_mut().schedule_at(
                SimTime::from_millis(t),
                move |log: &mut Vec<usize>, _| log.push(i),
            );
            ids.push((i, t, id));
        }
        for (i, _, id) in &ids {
            if *cancel_mask.get(*i).unwrap_or(&false) {
                sim.scheduler_mut().cancel(*id);
            } else {
                expected.push(*i);
            }
        }
        sim.run();
        let mut log = sim.into_state();
        log.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(log, expected);
    }
}
