//! # rmc-sim — deterministic discrete-event simulation kernel
//!
//! Substrate for the reproduction of *"Characterizing Performance and
//! Energy-Efficiency of the RAMCloud Storage System"* (ICDCS 2017). The paper
//! measured a real 131-node Grid'5000 cluster; this workspace reproduces the
//! study on a simulated cluster, and `rmc-sim` provides the clock, the event
//! queue, deterministic randomness, and measurement primitives everything
//! else builds on.
//!
//! ## Example
//!
//! ```
//! use rmc_sim::{Simulation, SimDuration, SimRng};
//!
//! struct World {
//!     rng: SimRng,
//!     arrivals: u32,
//! }
//!
//! let mut sim = Simulation::new(World { rng: SimRng::seed_from_u64(1), arrivals: 0 });
//!
//! fn arrival(w: &mut World, sched: &mut rmc_sim::Scheduler<World>) {
//!     w.arrivals += 1;
//!     if w.arrivals < 100 {
//!         let gap = SimDuration::from_micros_f64(w.rng.gen_exp(30.0));
//!         sched.schedule_after(gap, arrival);
//!     }
//! }
//!
//! sim.scheduler_mut().schedule_after(SimDuration::ZERO, arrival);
//! sim.run();
//! assert_eq!(sim.state().arrivals, 100);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;

pub use engine::{EventId, Scheduler, Simulation};
// Time, randomness, and measurement primitives live in `rmc-runtime` (they
// are shared with the threaded engine); re-exported here so simulator-facing
// code keeps importing them from `rmc_sim`.
pub use rmc_runtime::{
    BinnedUsage, Histogram, RateMeter, SimDuration, SimRng, SimTime, Summary, TimeSeries,
};
