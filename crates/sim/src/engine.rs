//! The discrete-event simulation engine.
//!
//! A [`Simulation`] owns user state `S` and a [`Scheduler`]. Events are boxed
//! closures `FnOnce(&mut S, &mut Scheduler<S>)` ordered by `(time, sequence)`
//! so that same-instant events run in scheduling order (FIFO), which keeps
//! runs deterministic. Handlers receive the scheduler and may schedule or
//! cancel further events.
//!
//! # Examples
//!
//! ```
//! use rmc_sim::{Simulation, SimDuration};
//!
//! let mut sim = Simulation::new(0u32);
//! sim.scheduler_mut().schedule_after(SimDuration::from_secs(1), |count, sched| {
//!     *count += 1;
//!     sched.schedule_after(SimDuration::from_secs(1), |count, _| *count += 10);
//! });
//! sim.run();
//! assert_eq!(*sim.state(), 11);
//! assert_eq!(sim.now().as_secs_f64(), 2.0);
//! ```

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::fmt;

use rmc_runtime::{SimDuration, SimTime};

/// Identifies a scheduled event so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

type EventFn<S> = Box<dyn FnOnce(&mut S, &mut Scheduler<S>)>;

struct Scheduled<S> {
    at: SimTime,
    seq: u64,
    run: EventFn<S>,
}

// Ordering intentionally ignores the closure: `(at, seq)` is a total order
// because `seq` is unique.
impl<S> PartialEq for Scheduled<S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<S> Eq for Scheduled<S> {}
impl<S> PartialOrd for Scheduled<S> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Scheduled<S> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Schedules and cancels events; tracks the current simulated instant.
///
/// Obtained from [`Simulation::scheduler_mut`] or passed into event handlers.
pub struct Scheduler<S> {
    now: SimTime,
    queue: BinaryHeap<Reverse<Scheduled<S>>>,
    next_seq: u64,
    cancelled: HashSet<EventId>,
    executed: u64,
}

impl<S> fmt::Debug for Scheduler<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

impl<S> Scheduler<S> {
    fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            next_seq: 0,
            cancelled: HashSet::new(),
            executed: 0,
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed_events(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending (including cancelled ones not yet
    /// reaped).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `f` to run at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current instant: the simulator
    /// cannot travel backwards.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        f: impl FnOnce(&mut S, &mut Scheduler<S>) + 'static,
    ) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={} at={}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse(Scheduled {
            at,
            seq,
            run: Box::new(f),
        }));
        EventId(seq)
    }

    /// Schedules `f` to run `delay` after the current instant.
    pub fn schedule_after(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut S, &mut Scheduler<S>) + 'static,
    ) -> EventId {
        let at = self.now.saturating_add(delay);
        self.schedule_at(at, f)
    }

    /// Cancels a pending event. Cancelling an already-executed or unknown id
    /// is a no-op (the id space is never reused, so this is safe).
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id);
    }

    /// Pops the next runnable event, skipping cancelled ones.
    fn pop_next(&mut self) -> Option<Scheduled<S>> {
        while let Some(Reverse(ev)) = self.queue.pop() {
            if self.cancelled.remove(&EventId(ev.seq)) {
                continue;
            }
            return Some(ev);
        }
        None
    }

    /// The time of the next runnable event, if any.
    pub fn peek_next_time(&mut self) -> Option<SimTime> {
        loop {
            let seq = match self.queue.peek() {
                Some(Reverse(ev)) => {
                    if !self.cancelled.contains(&EventId(ev.seq)) {
                        return Some(ev.at);
                    }
                    ev.seq
                }
                None => return None,
            };
            self.queue.pop();
            self.cancelled.remove(&EventId(seq));
        }
    }
}

/// A discrete-event simulation over user state `S`.
pub struct Simulation<S> {
    state: S,
    sched: Scheduler<S>,
}

impl<S: fmt::Debug> fmt::Debug for Simulation<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("state", &self.state)
            .field("sched", &self.sched)
            .finish()
    }
}

impl<S> Simulation<S> {
    /// Creates a simulation at time zero with the given initial state.
    pub fn new(state: S) -> Self {
        Simulation {
            state,
            sched: Scheduler::new(),
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Shared access to the user state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Exclusive access to the user state.
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// Exclusive access to the scheduler, e.g. for seeding initial events.
    pub fn scheduler_mut(&mut self) -> &mut Scheduler<S> {
        &mut self.sched
    }

    /// Shared access to the scheduler.
    pub fn scheduler(&self) -> &Scheduler<S> {
        &self.sched
    }

    /// Executes the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.sched.pop_next() {
            Some(ev) => {
                debug_assert!(ev.at >= self.sched.now);
                self.sched.now = ev.at;
                self.sched.executed += 1;
                (ev.run)(&mut self.state, &mut self.sched);
                true
            }
            None => false,
        }
    }

    /// Runs until the event queue drains. Returns the final instant.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.sched.now
    }

    /// Runs events strictly before `deadline`, then advances the clock to
    /// `deadline` (if it is later than the last event). Events at or after
    /// `deadline` stay queued.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            match self.sched.peek_next_time() {
                Some(t) if t < deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.sched.now < deadline {
            self.sched.now = deadline;
        }
    }

    /// Consumes the simulation and returns the final user state.
    pub fn into_state(self) -> S {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Simulation::new(Vec::<u32>::new());
        let s = sim.scheduler_mut();
        s.schedule_at(SimTime::from_secs(3), |v: &mut Vec<u32>, _| v.push(3));
        s.schedule_at(SimTime::from_secs(1), |v, _| v.push(1));
        s.schedule_at(SimTime::from_secs(2), |v, _| v.push(2));
        sim.run();
        assert_eq!(sim.state(), &vec![1, 2, 3]);
    }

    #[test]
    fn same_instant_events_run_fifo() {
        let mut sim = Simulation::new(Vec::<u32>::new());
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            sim.scheduler_mut()
                .schedule_at(t, move |v: &mut Vec<u32>, _| v.push(i));
        }
        sim.run();
        assert_eq!(sim.state(), &(0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_chain_events() {
        let mut sim = Simulation::new(0u64);
        fn tick(count: &mut u64, sched: &mut Scheduler<u64>) {
            *count += 1;
            if *count < 5 {
                sched.schedule_after(SimDuration::from_millis(10), tick);
            }
        }
        sim.scheduler_mut().schedule_at(SimTime::ZERO, tick);
        sim.run();
        assert_eq!(*sim.state(), 5);
        assert_eq!(sim.now(), SimTime::from_millis(40));
    }

    #[test]
    fn cancelled_events_do_not_run() {
        let mut sim = Simulation::new(0u32);
        let id = sim
            .scheduler_mut()
            .schedule_at(SimTime::from_secs(1), |c: &mut u32, _| *c += 1);
        sim.scheduler_mut()
            .schedule_at(SimTime::from_secs(2), |c, _| *c += 10);
        sim.scheduler_mut().cancel(id);
        sim.run();
        assert_eq!(*sim.state(), 10);
    }

    #[test]
    fn cancel_from_within_handler() {
        let mut sim = Simulation::new(0u32);
        let later = sim
            .scheduler_mut()
            .schedule_at(SimTime::from_secs(5), |c: &mut u32, _| *c += 100);
        sim.scheduler_mut()
            .schedule_at(SimTime::from_secs(1), move |_, sched| sched.cancel(later));
        sim.run();
        assert_eq!(*sim.state(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulation::new(());
        sim.scheduler_mut()
            .schedule_at(SimTime::from_secs(2), |_, sched| {
                sched.schedule_at(SimTime::from_secs(1), |_, _| {});
            });
        sim.run();
    }

    #[test]
    fn run_until_stops_before_deadline_events() {
        let mut sim = Simulation::new(0u32);
        sim.scheduler_mut()
            .schedule_at(SimTime::from_secs(1), |c: &mut u32, _| *c += 1);
        sim.scheduler_mut()
            .schedule_at(SimTime::from_secs(3), |c, _| *c += 10);
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(*sim.state(), 1);
        assert_eq!(sim.now(), SimTime::from_secs(2));
        sim.run();
        assert_eq!(*sim.state(), 11);
    }

    #[test]
    fn run_until_deadline_exclusive() {
        let mut sim = Simulation::new(0u32);
        sim.scheduler_mut()
            .schedule_at(SimTime::from_secs(2), |c: &mut u32, _| *c += 1);
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(
            *sim.state(),
            0,
            "event exactly at the deadline must not run"
        );
    }

    #[test]
    fn executed_counter_counts() {
        let mut sim = Simulation::new(());
        for i in 0..7 {
            sim.scheduler_mut()
                .schedule_at(SimTime::from_secs(i), |_, _| {});
        }
        sim.run();
        assert_eq!(sim.scheduler().executed_events(), 7);
    }

    #[test]
    fn drop_of_unrun_closures_is_clean() {
        // Closures capturing Rc must drop when the simulation drops.
        let marker = Rc::new(RefCell::new(0));
        {
            let mut sim = Simulation::new(());
            let m = Rc::clone(&marker);
            sim.scheduler_mut()
                .schedule_at(SimTime::from_secs(1), move |_, _| {
                    *m.borrow_mut() += 1;
                });
        }
        assert_eq!(*marker.borrow(), 0);
        assert_eq!(Rc::strong_count(&marker), 1);
    }
}
