//! Per-client and per-run measurement containers.

use rmc_sim::{Histogram, SimDuration, SimTime};

/// Latency/throughput statistics for one client (or aggregated).
#[derive(Debug, Clone)]
pub struct ClientStats {
    /// Completed operations.
    pub completed: u64,
    /// Completed reads.
    pub reads: u64,
    /// Completed writes (updates + inserts + RMW).
    pub writes: u64,
    /// Operation latency distribution (nanoseconds).
    pub latency: Histogram,
    /// Windowed mean latency timeline (for Fig 10).
    timeline: WindowedMean,
    /// First and last completion instants.
    pub first_completion: Option<SimTime>,
    /// Last completion instant.
    pub last_completion: Option<SimTime>,
}

impl Default for ClientStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ClientStats {
    /// Empty statistics with a 1-second latency-timeline window.
    pub fn new() -> Self {
        ClientStats::with_timeline_window(SimDuration::from_secs(1))
    }

    /// Empty statistics with a custom latency-timeline window.
    pub fn with_timeline_window(window: SimDuration) -> Self {
        ClientStats {
            completed: 0,
            reads: 0,
            writes: 0,
            latency: Histogram::new(),
            timeline: WindowedMean::new(window),
            first_completion: None,
            last_completion: None,
        }
    }

    /// Records one completed operation.
    pub fn record(&mut self, completed_at: SimTime, latency: SimDuration, is_write: bool) {
        self.completed += 1;
        if is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        self.latency.record_duration(latency);
        self.timeline.add(completed_at, latency.as_micros_f64());
        if self.first_completion.is_none() {
            self.first_completion = Some(completed_at);
        }
        self.last_completion = Some(completed_at);
    }

    /// Mean latency in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        self.latency.mean() / 1e3
    }

    /// Observed throughput: completed ops over the completion span.
    pub fn throughput_ops(&self) -> f64 {
        match (self.first_completion, self.last_completion) {
            (Some(a), Some(b)) if b > a => {
                self.completed as f64 / (b - a).as_secs_f64()
            }
            (Some(_), Some(_)) => self.completed as f64, // all in one instant
            _ => 0.0,
        }
    }

    /// The latency timeline as `(window_start_seconds, mean_latency_us)`;
    /// windows with no completions are omitted (they render as gaps — a
    /// blocked client in Fig 10).
    pub fn latency_timeline(&self) -> Vec<(f64, f64)> {
        self.timeline.points()
    }

    /// Merges another client's stats into this one (for aggregation).
    pub fn merge(&mut self, other: &ClientStats) {
        self.completed += other.completed;
        self.reads += other.reads;
        self.writes += other.writes;
        self.latency.merge(&other.latency);
        self.timeline.merge(&other.timeline);
        self.first_completion = match (self.first_completion, other.first_completion) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.last_completion = match (self.last_completion, other.last_completion) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

/// Mean-per-window accumulator for timeline plots.
#[derive(Debug, Clone)]
struct WindowedMean {
    window: SimDuration,
    sums: Vec<f64>,
    counts: Vec<u64>,
}

impl WindowedMean {
    fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        WindowedMean {
            window,
            sums: Vec::new(),
            counts: Vec::new(),
        }
    }

    fn add(&mut self, t: SimTime, value: f64) {
        let bin = (t.as_nanos() / self.window.as_nanos()) as usize;
        if self.sums.len() <= bin {
            self.sums.resize(bin + 1, 0.0);
            self.counts.resize(bin + 1, 0);
        }
        self.sums[bin] += value;
        self.counts[bin] += 1;
    }

    fn merge(&mut self, other: &WindowedMean) {
        if other.sums.len() > self.sums.len() {
            self.sums.resize(other.sums.len(), 0.0);
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, (&s, &c)) in other.sums.iter().zip(&other.counts).enumerate() {
            self.sums[i] += s;
            self.counts[i] += c;
        }
    }

    fn points(&self) -> Vec<(f64, f64)> {
        let w = self.window.as_secs_f64();
        self.sums
            .iter()
            .zip(&self.counts)
            .enumerate()
            .filter(|(_, (_, &c))| c > 0)
            .map(|(i, (&s, &c))| (i as f64 * w, s / c as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let mut s = ClientStats::new();
        s.record(SimTime::from_secs(1), SimDuration::from_micros(10), false);
        s.record(SimTime::from_secs(2), SimDuration::from_micros(30), true);
        assert_eq!(s.completed, 2);
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert!((s.mean_latency_us() - 20.0).abs() < 0.5);
    }

    #[test]
    fn throughput_over_span() {
        let mut s = ClientStats::new();
        for i in 0..101u64 {
            s.record(
                SimTime::from_millis(i * 10),
                SimDuration::from_micros(5),
                false,
            );
        }
        // 101 ops over 1 second.
        assert!((s.throughput_ops() - 101.0).abs() < 2.0);
    }

    #[test]
    fn timeline_has_gaps_for_blocked_windows() {
        let mut s = ClientStats::new();
        s.record(SimTime::from_millis(500), SimDuration::from_micros(15), false);
        // 3-second silence (blocked client), then recovery.
        s.record(SimTime::from_millis(4500), SimDuration::from_micros(35), false);
        let tl = s.latency_timeline();
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0].0, 0.0);
        assert_eq!(tl[1].0, 4.0);
        assert!((tl[0].1 - 15.0).abs() < 1e-9);
        assert!((tl[1].1 - 35.0).abs() < 1e-9);
    }

    #[test]
    fn merge_aggregates() {
        let mut a = ClientStats::new();
        let mut b = ClientStats::new();
        a.record(SimTime::from_secs(1), SimDuration::from_micros(10), false);
        b.record(SimTime::from_secs(3), SimDuration::from_micros(20), true);
        a.merge(&b);
        assert_eq!(a.completed, 2);
        assert_eq!(a.first_completion, Some(SimTime::from_secs(1)));
        assert_eq!(a.last_completion, Some(SimTime::from_secs(3)));
        assert_eq!(a.latency_timeline().len(), 2);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = ClientStats::new();
        assert_eq!(s.throughput_ops(), 0.0);
        assert_eq!(s.mean_latency_us(), 0.0);
        assert!(s.latency_timeline().is_empty());
    }
}
