//! Per-client and per-run measurement containers.
//!
//! Both engines report through this module: the simulated clients record
//! into [`ClientStats`] histograms, the wall-clock runner collects raw
//! sample vectors, and both collapse into the same [`LatencySummary`] so a
//! sim row and a thread row in a results table are directly comparable.

use rmc_runtime::{Histogram, SimDuration, SimTime};
use serde::Serialize;

/// Latency/throughput statistics for one client (or aggregated).
#[derive(Debug, Clone)]
pub struct ClientStats {
    /// Completed operations.
    pub completed: u64,
    /// Completed reads.
    pub reads: u64,
    /// Completed writes (updates + inserts + RMW).
    pub writes: u64,
    /// Operation latency distribution (nanoseconds).
    pub latency: Histogram,
    /// Windowed mean latency timeline (for Fig 10).
    timeline: WindowedMean,
    /// First and last completion instants.
    pub first_completion: Option<SimTime>,
    /// Last completion instant.
    pub last_completion: Option<SimTime>,
}

impl Default for ClientStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ClientStats {
    /// Empty statistics with a 1-second latency-timeline window.
    pub fn new() -> Self {
        ClientStats::with_timeline_window(SimDuration::from_secs(1))
    }

    /// Empty statistics with a custom latency-timeline window.
    pub fn with_timeline_window(window: SimDuration) -> Self {
        ClientStats {
            completed: 0,
            reads: 0,
            writes: 0,
            latency: Histogram::new(),
            timeline: WindowedMean::new(window),
            first_completion: None,
            last_completion: None,
        }
    }

    /// Records one completed operation.
    pub fn record(&mut self, completed_at: SimTime, latency: SimDuration, is_write: bool) {
        self.completed += 1;
        if is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        self.latency.record_duration(latency);
        self.timeline.add(completed_at, latency.as_micros_f64());
        if self.first_completion.is_none() {
            self.first_completion = Some(completed_at);
        }
        self.last_completion = Some(completed_at);
    }

    /// Mean latency in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        self.latency.mean() / 1e3
    }

    /// Percentile summary of the latency distribution — the same container
    /// the wall-clock runner reports, so simulated and threaded runs print
    /// through one code path.
    pub fn latency_summary(&self) -> LatencySummary {
        LatencySummary::from_histogram(&self.latency)
    }

    /// Observed throughput: completed ops over the completion span.
    pub fn throughput_ops(&self) -> f64 {
        match (self.first_completion, self.last_completion) {
            (Some(a), Some(b)) if b > a => self.completed as f64 / (b - a).as_secs_f64(),
            (Some(_), Some(_)) => self.completed as f64, // all in one instant
            _ => 0.0,
        }
    }

    /// The latency timeline as `(window_start_seconds, mean_latency_us)`;
    /// windows with no completions are omitted (they render as gaps — a
    /// blocked client in Fig 10).
    pub fn latency_timeline(&self) -> Vec<(f64, f64)> {
        self.timeline.points()
    }

    /// Merges another client's stats into this one (for aggregation).
    pub fn merge(&mut self, other: &ClientStats) {
        self.completed += other.completed;
        self.reads += other.reads;
        self.writes += other.writes;
        self.latency.merge(&other.latency);
        self.timeline.merge(&other.timeline);
        self.first_completion = match (self.first_completion, other.first_completion) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.last_completion = match (self.last_completion, other.last_completion) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

/// Latency percentiles over one operation class, in microseconds.
///
/// For batched runs each operation in a batch is charged the batch's
/// amortized per-op latency (batch time ÷ batch length), so single-op and
/// batched runs are comparable per operation served.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LatencySummary {
    /// Operations measured.
    pub count: u64,
    /// Mean latency (µs).
    pub mean_us: f64,
    /// Median latency (µs).
    pub p50_us: f64,
    /// 90th percentile (µs).
    pub p90_us: f64,
    /// 99th percentile (µs).
    pub p99_us: f64,
    /// Worst observed (µs).
    pub max_us: f64,
}

impl LatencySummary {
    fn empty() -> Self {
        LatencySummary {
            count: 0,
            mean_us: 0.0,
            p50_us: 0.0,
            p90_us: 0.0,
            p99_us: 0.0,
            max_us: 0.0,
        }
    }

    /// Summarizes a set of latency samples (µs). Samples are consumed
    /// (sorted in place).
    pub fn from_samples(samples: &mut [f64]) -> Self {
        if samples.is_empty() {
            return Self::empty();
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let count = samples.len() as u64;
        let mean = samples.iter().sum::<f64>() / count as f64;
        LatencySummary {
            count,
            mean_us: mean,
            p50_us: percentile(samples, 50.0),
            p90_us: percentile(samples, 90.0),
            p99_us: percentile(samples, 99.0),
            max_us: *samples.last().expect("nonempty"),
        }
    }

    /// Summarizes a nanosecond latency [`Histogram`] (the simulated
    /// clients' container). Percentiles carry the histogram's bucket
    /// resolution (±~0.5% per octave sub-bucket).
    pub fn from_histogram(latency_ns: &Histogram) -> Self {
        if latency_ns.count() == 0 {
            return Self::empty();
        }
        let us = |ns: u64| ns as f64 / 1e3;
        LatencySummary {
            count: latency_ns.count(),
            mean_us: latency_ns.mean() / 1e3,
            p50_us: us(latency_ns.quantile(0.50)),
            p90_us: us(latency_ns.quantile(0.90)),
            p99_us: us(latency_ns.quantile(0.99)),
            max_us: us(latency_ns.max()),
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample set");
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

/// Mean-per-window accumulator for timeline plots.
#[derive(Debug, Clone)]
struct WindowedMean {
    window: SimDuration,
    sums: Vec<f64>,
    counts: Vec<u64>,
}

impl WindowedMean {
    fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        WindowedMean {
            window,
            sums: Vec::new(),
            counts: Vec::new(),
        }
    }

    fn add(&mut self, t: SimTime, value: f64) {
        let bin = (t.as_nanos() / self.window.as_nanos()) as usize;
        if self.sums.len() <= bin {
            self.sums.resize(bin + 1, 0.0);
            self.counts.resize(bin + 1, 0);
        }
        self.sums[bin] += value;
        self.counts[bin] += 1;
    }

    fn merge(&mut self, other: &WindowedMean) {
        if other.sums.len() > self.sums.len() {
            self.sums.resize(other.sums.len(), 0.0);
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, (&s, &c)) in other.sums.iter().zip(&other.counts).enumerate() {
            self.sums[i] += s;
            self.counts[i] += c;
        }
    }

    fn points(&self) -> Vec<(f64, f64)> {
        let w = self.window.as_secs_f64();
        self.sums
            .iter()
            .zip(&self.counts)
            .enumerate()
            .filter(|(_, (_, &c))| c > 0)
            .map(|(i, (&s, &c))| (i as f64 * w, s / c as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let mut s = ClientStats::new();
        s.record(SimTime::from_secs(1), SimDuration::from_micros(10), false);
        s.record(SimTime::from_secs(2), SimDuration::from_micros(30), true);
        assert_eq!(s.completed, 2);
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert!((s.mean_latency_us() - 20.0).abs() < 0.5);
    }

    #[test]
    fn throughput_over_span() {
        let mut s = ClientStats::new();
        for i in 0..101u64 {
            s.record(
                SimTime::from_millis(i * 10),
                SimDuration::from_micros(5),
                false,
            );
        }
        // 101 ops over 1 second.
        assert!((s.throughput_ops() - 101.0).abs() < 2.0);
    }

    #[test]
    fn timeline_has_gaps_for_blocked_windows() {
        let mut s = ClientStats::new();
        s.record(
            SimTime::from_millis(500),
            SimDuration::from_micros(15),
            false,
        );
        // 3-second silence (blocked client), then recovery.
        s.record(
            SimTime::from_millis(4500),
            SimDuration::from_micros(35),
            false,
        );
        let tl = s.latency_timeline();
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0].0, 0.0);
        assert_eq!(tl[1].0, 4.0);
        assert!((tl[0].1 - 15.0).abs() < 1e-9);
        assert!((tl[1].1 - 35.0).abs() < 1e-9);
    }

    #[test]
    fn merge_aggregates() {
        let mut a = ClientStats::new();
        let mut b = ClientStats::new();
        a.record(SimTime::from_secs(1), SimDuration::from_micros(10), false);
        b.record(SimTime::from_secs(3), SimDuration::from_micros(20), true);
        a.merge(&b);
        assert_eq!(a.completed, 2);
        assert_eq!(a.first_completion, Some(SimTime::from_secs(1)));
        assert_eq!(a.last_completion, Some(SimTime::from_secs(3)));
        assert_eq!(a.latency_timeline().len(), 2);
    }

    #[test]
    fn percentile_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 50.0), 51.0);
        assert_eq!(percentile(&sorted, 99.0), 99.0);
        assert_eq!(percentile(&sorted, 100.0), 100.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
    }

    #[test]
    fn summary_from_samples() {
        let mut samples = vec![4.0, 1.0, 3.0, 2.0];
        let s = LatencySummary::from_samples(&mut samples);
        assert_eq!(s.count, 4);
        assert_eq!(s.mean_us, 2.5);
        assert_eq!(s.max_us, 4.0);
        let empty = LatencySummary::from_samples(&mut Vec::new());
        assert_eq!(empty.count, 0);
    }

    #[test]
    fn summary_from_histogram_matches_samples() {
        // The same latencies through both paths must agree to within the
        // histogram's bucket resolution.
        let latencies_us = [10.0_f64, 20.0, 40.0, 80.0, 160.0];
        let mut hist = Histogram::new();
        for &us in &latencies_us {
            hist.record_duration(SimDuration::from_nanos((us * 1e3) as u64));
        }
        let from_hist = LatencySummary::from_histogram(&hist);
        let mut samples = latencies_us.to_vec();
        let from_samples = LatencySummary::from_samples(&mut samples);
        assert_eq!(from_hist.count, from_samples.count);
        let close = |a: f64, b: f64| (a - b).abs() / b < 0.05;
        assert!(close(from_hist.mean_us, from_samples.mean_us));
        assert!(close(from_hist.p50_us, from_samples.p50_us));
        assert!(close(from_hist.max_us, from_samples.max_us));
        assert_eq!(LatencySummary::from_histogram(&Histogram::new()).count, 0);
    }

    #[test]
    fn client_stats_summary_uses_shared_path() {
        let mut s = ClientStats::new();
        s.record(SimTime::from_secs(1), SimDuration::from_micros(10), false);
        s.record(SimTime::from_secs(2), SimDuration::from_micros(30), true);
        let sum = s.latency_summary();
        assert_eq!(sum.count, 2);
        assert!((sum.mean_us - s.mean_latency_us()).abs() < 1e-9);
        assert!(sum.p99_us >= sum.p50_us);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = ClientStats::new();
        assert_eq!(s.throughput_ops(), 0.0);
        assert_eq!(s.mean_latency_us(), 0.0);
        assert!(s.latency_timeline().is_empty());
    }
}
