//! Wall-clock closed-loop benchmark runner.
//!
//! Everything else in this crate generates workloads for the deterministic
//! simulator; this module drives a *real* key-value backend (the standalone
//! server, or anything implementing [`KvBackend`]) with the same YCSB
//! streams and measures actual throughput and latency percentiles, the way
//! the paper's YCSB clients measure RAMCloud.
//!
//! Clients are closed-loop (one outstanding request each, as in the paper);
//! with `batch_size > 1` a client instead groups consecutive operations
//! into multi-read/multi-write batches, modeling RAMCloud's multi-ops.

use std::sync::Arc;
use std::time::Instant;

use crate::client::RequestGenerator;
use crate::workload::{OpKind, WorkloadSpec};

// Summaries live with the other measurement containers so the sim-time
// client model and this runner report through one code path; re-exported
// here for the runner's historical callers.
pub use crate::stats::{percentile, LatencySummary};

/// A real key-value store the runner can drive.
///
/// Errors are stringly typed so backends with different error enums plug in
/// without a shared error hierarchy; any error aborts the run.
pub trait KvBackend: Send + Sync + 'static {
    /// Reads one key; `true` if it was found.
    fn read(&self, key: &[u8]) -> Result<bool, String>;
    /// Writes one key.
    fn write(&self, key: &[u8], value: &[u8]) -> Result<(), String>;
    /// Reads a batch of keys; returns the number found.
    fn multiread(&self, keys: &[Vec<u8>]) -> Result<usize, String>;
    /// Writes a batch of key/value pairs.
    fn multiwrite(&self, ops: &[(Vec<u8>, Vec<u8>)]) -> Result<(), String>;
}

/// Runner knobs.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Concurrent closed-loop client threads.
    pub clients: usize,
    /// Operations grouped per multi-op batch; `1` issues single ops.
    pub batch_size: usize,
    /// Base RNG seed; client `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            clients: 1,
            batch_size: 1,
            seed: 42,
        }
    }
}

/// Results of one measured run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Logical operations completed (an RMW counts once).
    pub ops: u64,
    /// Wall-clock duration of the measured phase, seconds.
    pub elapsed_secs: f64,
    /// `ops / elapsed_secs`.
    pub throughput_ops_per_sec: f64,
    /// Read-path latency percentiles.
    pub reads: LatencySummary,
    /// Write-path latency percentiles.
    pub writes: LatencySummary,
}

/// Preloads the workload's records into the backend in multi-write chunks.
///
/// # Errors
///
/// Propagates the first backend error.
pub fn load<B: KvBackend>(backend: &B, spec: &WorkloadSpec, seed: u64) -> Result<(), String> {
    let mut generator = RequestGenerator::new(spec.clone(), seed);
    let mut chunk = Vec::with_capacity(128);
    for index in 0..spec.record_count {
        chunk.push((spec.key_for(index), generator.value_for(index)));
        if chunk.len() == 128 {
            backend.multiwrite(&chunk)?;
            chunk.clear();
        }
    }
    if !chunk.is_empty() {
        backend.multiwrite(&chunk)?;
    }
    Ok(())
}

/// Runs the workload's measured phase: `config.clients` closed-loop client
/// threads each issuing `spec.ops_per_client` operations.
///
/// # Errors
///
/// Propagates the first backend error from any client.
///
/// # Panics
///
/// Panics if `config.clients` or `config.batch_size` is zero.
pub fn run<B: KvBackend>(
    backend: &Arc<B>,
    spec: &WorkloadSpec,
    config: &RunnerConfig,
) -> Result<RunSummary, String> {
    assert!(config.clients > 0, "need at least one client");
    assert!(config.batch_size > 0, "batch size must be positive");
    let start = Instant::now();
    let clients: Vec<_> = (0..config.clients)
        .map(|i| {
            let backend = Arc::clone(backend);
            let spec = spec.clone();
            let batch = config.batch_size;
            let seed = config.seed + i as u64;
            std::thread::spawn(move || client_loop(&*backend, &spec, batch, seed))
        })
        .collect();

    let mut ops = 0u64;
    let mut read_samples = Vec::new();
    let mut write_samples = Vec::new();
    for handle in clients {
        let outcome = handle.join().expect("client thread panicked")?;
        ops += outcome.ops;
        read_samples.extend(outcome.read_us);
        write_samples.extend(outcome.write_us);
    }
    let elapsed = start.elapsed().as_secs_f64();
    Ok(RunSummary {
        ops,
        elapsed_secs: elapsed,
        throughput_ops_per_sec: ops as f64 / elapsed,
        reads: LatencySummary::from_samples(&mut read_samples),
        writes: LatencySummary::from_samples(&mut write_samples),
    })
}

struct ClientOutcome {
    ops: u64,
    read_us: Vec<f64>,
    write_us: Vec<f64>,
}

fn client_loop<B: KvBackend>(
    backend: &B,
    spec: &WorkloadSpec,
    batch_size: usize,
    seed: u64,
) -> Result<ClientOutcome, String> {
    let mut generator = RequestGenerator::new(spec.clone(), seed);
    let mut outcome = ClientOutcome {
        ops: 0,
        read_us: Vec::with_capacity(spec.ops_per_client as usize),
        write_us: Vec::new(),
    };
    let mut read_batch: Vec<Vec<u8>> = Vec::with_capacity(batch_size);
    let mut write_batch: Vec<(Vec<u8>, Vec<u8>)> = Vec::with_capacity(batch_size);

    while let Some(request) = generator.next_request() {
        let key = generator.key_for(request.key_index);
        outcome.ops += 1;
        match request.kind {
            // Scan never appears in the mixes used here (the paper excludes
            // it); treat a custom mix's scans as reads of the start key.
            OpKind::Read | OpKind::Scan => {
                if batch_size == 1 {
                    let t = Instant::now();
                    backend.read(&key)?;
                    outcome.read_us.push(t.elapsed().as_secs_f64() * 1e6);
                } else {
                    read_batch.push(key);
                    if read_batch.len() == batch_size {
                        flush_reads(backend, &mut read_batch, &mut outcome.read_us)?;
                    }
                }
            }
            OpKind::Update | OpKind::Insert => {
                let value = generator.value_for(request.key_index);
                if batch_size == 1 {
                    let t = Instant::now();
                    backend.write(&key, &value)?;
                    outcome.write_us.push(t.elapsed().as_secs_f64() * 1e6);
                } else {
                    write_batch.push((key, value));
                    if write_batch.len() == batch_size {
                        flush_writes(backend, &mut write_batch, &mut outcome.write_us)?;
                    }
                }
            }
            OpKind::ReadModifyWrite => {
                // Always closed-loop: the write depends on the read.
                let t = Instant::now();
                backend.read(&key)?;
                outcome.read_us.push(t.elapsed().as_secs_f64() * 1e6);
                let value = generator.value_for(request.key_index);
                let t = Instant::now();
                backend.write(&key, &value)?;
                outcome.write_us.push(t.elapsed().as_secs_f64() * 1e6);
            }
        }
    }
    flush_reads(backend, &mut read_batch, &mut outcome.read_us)?;
    flush_writes(backend, &mut write_batch, &mut outcome.write_us)?;
    Ok(outcome)
}

fn flush_reads<B: KvBackend>(
    backend: &B,
    batch: &mut Vec<Vec<u8>>,
    samples: &mut Vec<f64>,
) -> Result<(), String> {
    if batch.is_empty() {
        return Ok(());
    }
    let t = Instant::now();
    backend.multiread(batch)?;
    let per_op = t.elapsed().as_secs_f64() * 1e6 / batch.len() as f64;
    samples.extend(std::iter::repeat_n(per_op, batch.len()));
    batch.clear();
    Ok(())
}

fn flush_writes<B: KvBackend>(
    backend: &B,
    batch: &mut Vec<(Vec<u8>, Vec<u8>)>,
    samples: &mut Vec<f64>,
) -> Result<(), String> {
    if batch.is_empty() {
        return Ok(());
    }
    let t = Instant::now();
    backend.multiwrite(batch)?;
    let per_op = t.elapsed().as_secs_f64() * 1e6 / batch.len() as f64;
    samples.extend(std::iter::repeat_n(per_op, batch.len()));
    batch.clear();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::StandardWorkload;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    #[derive(Default)]
    struct MapBackend {
        map: Mutex<HashMap<Vec<u8>, Vec<u8>>>,
        single_calls: AtomicU64,
        batch_calls: AtomicU64,
    }

    impl KvBackend for MapBackend {
        fn read(&self, key: &[u8]) -> Result<bool, String> {
            self.single_calls.fetch_add(1, Ordering::Relaxed);
            Ok(self.map.lock().unwrap().contains_key(key))
        }
        fn write(&self, key: &[u8], value: &[u8]) -> Result<(), String> {
            self.single_calls.fetch_add(1, Ordering::Relaxed);
            self.map
                .lock()
                .unwrap()
                .insert(key.to_vec(), value.to_vec());
            Ok(())
        }
        fn multiread(&self, keys: &[Vec<u8>]) -> Result<usize, String> {
            self.batch_calls.fetch_add(1, Ordering::Relaxed);
            let map = self.map.lock().unwrap();
            Ok(keys.iter().filter(|k| map.contains_key(*k)).count())
        }
        fn multiwrite(&self, ops: &[(Vec<u8>, Vec<u8>)]) -> Result<(), String> {
            self.batch_calls.fetch_add(1, Ordering::Relaxed);
            let mut map = self.map.lock().unwrap();
            for (k, v) in ops {
                map.insert(k.clone(), v.clone());
            }
            Ok(())
        }
    }

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec::standard(StandardWorkload::A)
            .with_record_count(64)
            .with_ops_per_client(200)
    }

    #[test]
    fn load_preloads_every_record() {
        let backend = MapBackend::default();
        load(&backend, &small_spec(), 1).unwrap();
        assert_eq!(backend.map.lock().unwrap().len(), 64);
    }

    #[test]
    fn run_counts_every_operation() {
        let backend = Arc::new(MapBackend::default());
        load(&*backend, &small_spec(), 1).unwrap();
        let summary = run(
            &backend,
            &small_spec(),
            &RunnerConfig {
                clients: 3,
                ..RunnerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(summary.ops, 3 * 200);
        // Workload A is 50/50, so both classes must have samples and the
        // class totals must cover every op.
        assert!(summary.reads.count > 0 && summary.writes.count > 0);
        assert_eq!(summary.reads.count + summary.writes.count, 600);
        assert!(summary.throughput_ops_per_sec > 0.0);
    }

    #[test]
    fn batched_run_uses_multi_ops_and_flushes_remainders() {
        let backend = Arc::new(MapBackend::default());
        load(&*backend, &small_spec(), 1).unwrap();
        let before = backend.batch_calls.load(Ordering::Relaxed);
        let summary = run(
            &backend,
            &small_spec(),
            &RunnerConfig {
                clients: 2,
                batch_size: 7, // does not divide 200: remainders must flush
                ..RunnerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(summary.ops, 400);
        assert_eq!(summary.reads.count + summary.writes.count, 400);
        assert!(backend.batch_calls.load(Ordering::Relaxed) > before);
        assert_eq!(backend.single_calls.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn rmw_measures_both_sides() {
        let backend = Arc::new(MapBackend::default());
        let spec = WorkloadSpec::standard(StandardWorkload::F)
            .with_record_count(32)
            .with_ops_per_client(100);
        load(&*backend, &spec, 1).unwrap();
        let summary = run(&backend, &spec, &RunnerConfig::default()).unwrap();
        assert_eq!(summary.ops, 100);
        // ~50 reads + ~50 RMWs (each contributing one read and one write).
        assert!(summary.reads.count >= 90, "reads={}", summary.reads.count);
        assert_eq!(
            summary.reads.count + summary.writes.count - summary.ops,
            summary.writes.count,
            "every write sample comes from an RMW's write half"
        );
    }

    #[test]
    fn backend_errors_propagate() {
        struct Failing;
        impl KvBackend for Failing {
            fn read(&self, _: &[u8]) -> Result<bool, String> {
                Err("boom".into())
            }
            fn write(&self, _: &[u8], _: &[u8]) -> Result<(), String> {
                Err("boom".into())
            }
            fn multiread(&self, _: &[Vec<u8>]) -> Result<usize, String> {
                Err("boom".into())
            }
            fn multiwrite(&self, _: &[(Vec<u8>, Vec<u8>)]) -> Result<(), String> {
                Err("boom".into())
            }
        }
        let backend = Arc::new(Failing);
        let err = run(&backend, &small_spec(), &RunnerConfig::default()).unwrap_err();
        assert_eq!(err, "boom");
    }
}
