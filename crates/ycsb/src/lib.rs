//! # rmc-ycsb — YCSB-style workload generation
//!
//! Reimplements the slice of the Yahoo! Cloud Serving Benchmark the paper
//! uses to drive RAMCloud: the standard workload mixes
//! ([A/B/C plus D and F](crate::StandardWorkload)), key-request
//! [distributions](crate::Distribution) (uniform as in the paper, zipfian
//! and latest as extensions), deterministic per-client
//! [request streams](crate::RequestGenerator), client-side
//! [throttling](crate::Throttle) (Fig 13), and measurement containers
//! ([`ClientStats`]).
//!
//! ## Example
//!
//! ```
//! use rmc_ycsb::{RequestGenerator, StandardWorkload, WorkloadSpec};
//!
//! let spec = WorkloadSpec::standard(StandardWorkload::A).with_ops_per_client(10);
//! let mut client = RequestGenerator::new(spec, /*seed=*/1);
//! let mut ops = 0;
//! while let Some(req) = client.next_request() {
//!     let _key = client.key_for(req.key_index);
//!     ops += 1;
//! }
//! assert_eq!(ops, 10);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod client;
mod distribution;
pub mod runner;
mod stats;
mod workload;

pub use client::{Request, RequestGenerator, Throttle};
pub use distribution::{Distribution, KeyChooser};
pub use runner::{KvBackend, RunSummary, RunnerConfig};
pub use stats::{percentile, ClientStats, LatencySummary};
pub use workload::{Mix, OpKind, StandardWorkload, WorkloadSpec};
