//! YCSB workload definitions.
//!
//! The paper uses the three stock YCSB workloads:
//!
//! - **A** — update-heavy: 50 % reads, 50 % updates,
//! - **B** — read-heavy: 95 % reads, 5 % updates,
//! - **C** — read-only: 100 % reads,
//!
//! all with 1 KB records and a uniform request distribution. Workloads D and
//! F are included for completeness (the paper lists broader coverage as
//! future work); E (scans) is declared but not exercised by the reproduction,
//! matching the paper's explicit exclusion of scans.

use rmc_runtime::SimRng;
use serde::{Deserialize, Serialize};

use crate::distribution::Distribution;

/// One client operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Read one record.
    Read,
    /// Overwrite one record.
    Update,
    /// Insert a new record (grows the key space).
    Insert,
    /// Read-modify-write one record.
    ReadModifyWrite,
    /// Range scan (declared for API completeness; unscheduled by the stock
    /// mixes used here, matching the paper).
    Scan,
}

/// Operation mix of a workload (proportions sum to 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mix {
    /// Fraction of reads.
    pub read: f64,
    /// Fraction of updates.
    pub update: f64,
    /// Fraction of inserts.
    pub insert: f64,
    /// Fraction of read-modify-writes.
    pub rmw: f64,
    /// Fraction of scans.
    pub scan: f64,
}

impl Mix {
    fn validated(self) -> Self {
        let sum = self.read + self.update + self.insert + self.rmw + self.scan;
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "workload mix must sum to 1, got {sum}"
        );
        self
    }

    /// Samples an operation kind.
    pub fn sample(&self, rng: &mut SimRng) -> OpKind {
        let mut x = rng.next_f64();
        for (p, kind) in [
            (self.read, OpKind::Read),
            (self.update, OpKind::Update),
            (self.insert, OpKind::Insert),
            (self.rmw, OpKind::ReadModifyWrite),
        ] {
            if x < p {
                return kind;
            }
            x -= p;
        }
        OpKind::Scan
    }

    /// Fraction of operations that mutate state (updates + inserts + RMW).
    pub fn write_fraction(&self) -> f64 {
        self.update + self.insert + self.rmw
    }
}

/// A named standard workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StandardWorkload {
    /// Update-heavy: 50 % reads / 50 % updates.
    A,
    /// Read-heavy: 95 % reads / 5 % updates.
    B,
    /// Read-only.
    C,
    /// Read-latest: 95 % reads / 5 % inserts over a `Latest` distribution.
    D,
    /// Read-modify-write: 50 % reads / 50 % RMW.
    F,
}

impl std::fmt::Display for StandardWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            StandardWorkload::A => "A",
            StandardWorkload::B => "B",
            StandardWorkload::C => "C",
            StandardWorkload::D => "D",
            StandardWorkload::F => "F",
        };
        write!(f, "{name}")
    }
}

/// Full workload specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Human-readable name ("A", "B", "C", or custom).
    pub name: String,
    /// Operation mix.
    pub mix: Mix,
    /// Request distribution over keys.
    pub distribution: Distribution,
    /// Number of pre-loaded records.
    pub record_count: u64,
    /// Value size in bytes (1 KB throughout the paper).
    pub value_bytes: usize,
    /// Operations each client issues.
    pub ops_per_client: u64,
}

impl WorkloadSpec {
    /// Builds a standard workload with the paper's Section-V parameters
    /// (100 K records × 1 KB, 100 K requests per client, uniform).
    pub fn standard(w: StandardWorkload) -> Self {
        let (mix, distribution) = match w {
            StandardWorkload::A => (
                Mix {
                    read: 0.5,
                    update: 0.5,
                    insert: 0.0,
                    rmw: 0.0,
                    scan: 0.0,
                },
                Distribution::Uniform,
            ),
            StandardWorkload::B => (
                Mix {
                    read: 0.95,
                    update: 0.05,
                    insert: 0.0,
                    rmw: 0.0,
                    scan: 0.0,
                },
                Distribution::Uniform,
            ),
            StandardWorkload::C => (
                Mix {
                    read: 1.0,
                    update: 0.0,
                    insert: 0.0,
                    rmw: 0.0,
                    scan: 0.0,
                },
                Distribution::Uniform,
            ),
            StandardWorkload::D => (
                Mix {
                    read: 0.95,
                    update: 0.0,
                    insert: 0.05,
                    rmw: 0.0,
                    scan: 0.0,
                },
                Distribution::Latest,
            ),
            StandardWorkload::F => (
                Mix {
                    read: 0.5,
                    update: 0.0,
                    insert: 0.0,
                    rmw: 0.5,
                    scan: 0.0,
                },
                Distribution::Uniform,
            ),
        };
        WorkloadSpec {
            name: w.to_string(),
            mix: mix.validated(),
            distribution,
            record_count: 100_000,
            value_bytes: 1024,
            ops_per_client: 100_000,
        }
    }

    /// The paper's Section-IV peak-performance configuration: 5 M records,
    /// 10 M read-only requests per client.
    pub fn peak_read_only() -> Self {
        WorkloadSpec {
            name: "C-peak".to_owned(),
            record_count: 5_000_000,
            ops_per_client: 10_000_000,
            ..WorkloadSpec::standard(StandardWorkload::C)
        }
    }

    /// Returns a copy with a different per-client operation count (used for
    /// scaled-down runs).
    pub fn with_ops_per_client(mut self, ops: u64) -> Self {
        self.ops_per_client = ops;
        self
    }

    /// Returns a copy with a different record count.
    pub fn with_record_count(mut self, records: u64) -> Self {
        self.record_count = records;
        self
    }

    /// The canonical YCSB-style key for a record index.
    pub fn key_for(&self, index: u64) -> Vec<u8> {
        format!("user{index:016}").into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_mixes_match_paper() {
        let a = WorkloadSpec::standard(StandardWorkload::A);
        assert_eq!(a.mix.read, 0.5);
        assert_eq!(a.mix.update, 0.5);
        let b = WorkloadSpec::standard(StandardWorkload::B);
        assert_eq!(b.mix.read, 0.95);
        assert_eq!(b.mix.update, 0.05);
        let c = WorkloadSpec::standard(StandardWorkload::C);
        assert_eq!(c.mix.read, 1.0);
        assert_eq!(c.mix.write_fraction(), 0.0);
        for w in [a, b, c] {
            assert_eq!(w.record_count, 100_000);
            assert_eq!(w.value_bytes, 1024);
            assert_eq!(w.distribution, Distribution::Uniform);
        }
    }

    #[test]
    fn peak_config_matches_section_iv() {
        let p = WorkloadSpec::peak_read_only();
        assert_eq!(p.record_count, 5_000_000);
        assert_eq!(p.ops_per_client, 10_000_000);
        assert_eq!(p.mix.read, 1.0);
    }

    #[test]
    fn mix_sampling_respects_proportions() {
        let mix = WorkloadSpec::standard(StandardWorkload::B).mix;
        let mut rng = SimRng::seed_from_u64(1);
        let n = 100_000;
        let updates = (0..n)
            .filter(|_| mix.sample(&mut rng) == OpKind::Update)
            .count();
        let frac = updates as f64 / n as f64;
        assert!((0.04..0.06).contains(&frac), "B update fraction {frac}");
    }

    #[test]
    fn read_only_never_samples_writes() {
        let mix = WorkloadSpec::standard(StandardWorkload::C).mix;
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert_eq!(mix.sample(&mut rng), OpKind::Read);
        }
    }

    #[test]
    #[should_panic(expected = "must sum to 1")]
    fn invalid_mix_rejected() {
        let _ = Mix {
            read: 0.5,
            update: 0.0,
            insert: 0.0,
            rmw: 0.0,
            scan: 0.0,
        }
        .validated();
    }

    #[test]
    fn keys_are_fixed_width_and_unique() {
        let w = WorkloadSpec::standard(StandardWorkload::C);
        let k1 = w.key_for(1);
        let k2 = w.key_for(2);
        assert_eq!(k1.len(), k2.len());
        assert_ne!(k1, k2);
    }

    #[test]
    fn d_uses_latest_distribution() {
        let d = WorkloadSpec::standard(StandardWorkload::D);
        assert_eq!(d.distribution, Distribution::Latest);
        assert!(d.mix.insert > 0.0);
    }
}
