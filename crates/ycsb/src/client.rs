//! Client-side request generation and throttling.
//!
//! The paper runs one YCSB client process per client machine; each client is
//! a closed loop — one outstanding request, next request issued when the
//! previous response arrives. [`RequestGenerator`] produces the operation
//! stream; [`Throttle`] implements the client-side rate limiting the paper
//! evaluates in Fig 13.

use rmc_runtime::{SimDuration, SimRng, SimTime};

use crate::distribution::KeyChooser;
use crate::workload::{OpKind, WorkloadSpec};

/// One generated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// The operation kind.
    pub kind: OpKind,
    /// Target record index (for inserts: the new record's index).
    pub key_index: u64,
}

/// Deterministic stream of requests for one client.
#[derive(Debug, Clone)]
pub struct RequestGenerator {
    spec: WorkloadSpec,
    chooser: KeyChooser,
    rng: SimRng,
    issued: u64,
    inserted: u64,
}

impl RequestGenerator {
    /// Creates a generator; `seed` individualizes the client's stream.
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        let chooser = KeyChooser::new(spec.distribution, spec.record_count);
        RequestGenerator {
            spec,
            chooser,
            rng: SimRng::seed_from_u64(seed),
            issued: 0,
            inserted: 0,
        }
    }

    /// The workload specification.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Requests issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Requests remaining before the client finishes.
    pub fn remaining(&self) -> u64 {
        self.spec.ops_per_client - self.issued
    }

    /// Produces the next request, or `None` when the client's quota
    /// (`ops_per_client`) is exhausted.
    pub fn next_request(&mut self) -> Option<Request> {
        if self.issued >= self.spec.ops_per_client {
            return None;
        }
        self.issued += 1;
        let kind = self.spec.mix.sample(&mut self.rng);
        let key_index = match kind {
            OpKind::Insert => {
                let idx = self.spec.record_count + self.inserted;
                self.inserted += 1;
                self.chooser.grow(idx + 1);
                idx
            }
            _ => self.chooser.next(&mut self.rng),
        };
        Some(Request { kind, key_index })
    }

    /// The key bytes for a record index.
    pub fn key_for(&self, index: u64) -> Vec<u8> {
        self.spec.key_for(index)
    }

    /// A deterministic value payload for a write to `index` (contents vary
    /// by version so overwrites are observable).
    pub fn value_for(&mut self, index: u64) -> Vec<u8> {
        let mut v = vec![0u8; self.spec.value_bytes];
        let tag = self.rng.next_u64() ^ index;
        let tag_bytes = tag.to_le_bytes();
        for (i, b) in v.iter_mut().enumerate() {
            *b = tag_bytes[i % 8].wrapping_add(i as u8);
        }
        v
    }
}

/// Client-side rate limiter (Fig 13: clients capped at 200 or 500 req/s).
///
/// Deterministic fixed-interval pacing: request `i` may not leave before
/// `start + i/rate`.
#[derive(Debug, Clone)]
pub struct Throttle {
    interval: SimDuration,
    next_allowed: SimTime,
}

impl Throttle {
    /// Creates a limiter of `rate` requests per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        Throttle {
            interval: SimDuration::from_secs_f64(1.0 / rate),
            next_allowed: SimTime::ZERO,
        }
    }

    /// Returns the earliest instant (≥ `now`) the next request may be sent,
    /// and reserves that slot.
    pub fn reserve(&mut self, now: SimTime) -> SimTime {
        let at = now.max(self.next_allowed);
        self.next_allowed = at + self.interval;
        at
    }

    /// The pacing interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::StandardWorkload;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::standard(StandardWorkload::A).with_ops_per_client(1000)
    }

    #[test]
    fn generator_respects_quota() {
        let mut g = RequestGenerator::new(spec(), 1);
        let mut n = 0;
        while g.next_request().is_some() {
            n += 1;
        }
        assert_eq!(n, 1000);
        assert_eq!(g.remaining(), 0);
        assert!(g.next_request().is_none());
    }

    #[test]
    fn generator_mix_roughly_half_updates() {
        let mut g = RequestGenerator::new(spec(), 2);
        let mut updates = 0;
        while let Some(r) = g.next_request() {
            if r.kind == OpKind::Update {
                updates += 1;
            }
        }
        assert!((400..600).contains(&updates), "updates={updates}");
    }

    #[test]
    fn generator_keys_in_range() {
        let mut g = RequestGenerator::new(spec(), 3);
        while let Some(r) = g.next_request() {
            assert!(r.key_index < 100_000);
        }
    }

    #[test]
    fn inserts_extend_keyspace_monotonically() {
        let mut s = WorkloadSpec::standard(StandardWorkload::D);
        s.ops_per_client = 5000;
        s.record_count = 100;
        let mut g = RequestGenerator::new(s, 4);
        let mut next_expected = 100;
        while let Some(r) = g.next_request() {
            if r.kind == OpKind::Insert {
                assert_eq!(r.key_index, next_expected);
                next_expected += 1;
            } else {
                assert!(r.key_index < next_expected);
            }
        }
        assert!(next_expected > 100, "inserts must occur in workload D");
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = RequestGenerator::new(spec(), 9);
        let mut b = RequestGenerator::new(spec(), 9);
        for _ in 0..1000 {
            assert_eq!(a.next_request(), b.next_request());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RequestGenerator::new(spec(), 1);
        let mut b = RequestGenerator::new(spec(), 2);
        let same = (0..100)
            .filter(|_| a.next_request() == b.next_request())
            .count();
        assert!(same < 50, "streams too correlated: {same}");
    }

    #[test]
    fn values_have_requested_size() {
        let mut g = RequestGenerator::new(spec(), 5);
        assert_eq!(g.value_for(3).len(), 1024);
    }

    #[test]
    fn throttle_paces_at_rate() {
        let mut t = Throttle::new(200.0);
        let first = t.reserve(SimTime::ZERO);
        assert_eq!(first, SimTime::ZERO);
        let second = t.reserve(SimTime::ZERO);
        assert_eq!(second - first, SimDuration::from_millis(5));
        // 200 reservations = 1 second of budget.
        let mut last = second;
        for _ in 0..199 {
            last = t.reserve(SimTime::ZERO);
        }
        assert_eq!(last, SimTime::from_millis(5 * 200));
    }

    #[test]
    fn throttle_does_not_bank_idle_time() {
        let mut t = Throttle::new(100.0);
        t.reserve(SimTime::ZERO);
        // Arrive late: no burst allowance, next slot starts from now.
        let at = t.reserve(SimTime::from_secs(10));
        assert_eq!(at, SimTime::from_secs(10));
        let next = t.reserve(SimTime::from_secs(10));
        assert_eq!(next, SimTime::from_secs(10) + SimDuration::from_millis(10));
    }
}
