//! Request distributions over a key space.
//!
//! The paper drives RAMCloud with YCSB using a **uniform** request
//! distribution (Section III-C); zipfian and latest are provided because
//! they are YCSB's other standard choices and the paper names "different
//! request distributions" as future work.

use rmc_runtime::SimRng;
use serde::{Deserialize, Serialize};

/// Which request distribution to use.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Distribution {
    /// Every record equally likely (the paper's setting).
    Uniform,
    /// YCSB's scrambled zipfian with the given theta (0.99 by default in
    /// YCSB).
    Zipfian {
        /// Skew parameter in `(0, 1)`.
        theta: f64,
    },
    /// Most recently inserted records are most popular.
    Latest,
}

impl Distribution {
    /// YCSB's default zipfian skew.
    pub fn zipfian_default() -> Self {
        Distribution::Zipfian { theta: 0.99 }
    }
}

/// Stateful sampler for key indices in `[0, record_count)`.
#[derive(Debug, Clone)]
pub struct KeyChooser {
    dist: Distribution,
    record_count: u64,
    zipf: Option<ZipfState>,
}

#[derive(Debug, Clone)]
struct ZipfState {
    theta: f64,
    zeta_n: f64,
    alpha: f64,
    eta: f64,
}

fn zeta(n: u64, theta: f64) -> f64 {
    // Direct summation; record counts here are ≤ tens of millions and this
    // runs once per generator.
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

impl KeyChooser {
    /// Creates a sampler over `record_count` keys.
    ///
    /// # Panics
    ///
    /// Panics if `record_count` is zero, or if a zipfian theta is outside
    /// `(0, 1)`.
    pub fn new(dist: Distribution, record_count: u64) -> Self {
        assert!(record_count > 0, "record count must be positive");
        let zipf = match dist {
            Distribution::Zipfian { theta } => {
                assert!(
                    theta > 0.0 && theta < 1.0,
                    "zipfian theta must be in (0,1), got {theta}"
                );
                Some(ZipfState::new(record_count, theta))
            }
            Distribution::Latest => Some(ZipfState::new(record_count, 0.99)),
            Distribution::Uniform => None,
        };
        KeyChooser {
            dist,
            record_count,
            zipf,
        }
    }

    /// The configured distribution.
    pub fn distribution(&self) -> Distribution {
        self.dist
    }

    /// Current key-space size.
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// Grows the key space after an insert (affects `Latest` popularity and
    /// uniform range; the zipfian state is rebuilt lazily on large growth).
    pub fn grow(&mut self, new_count: u64) {
        if new_count <= self.record_count {
            return;
        }
        // Rebuilding zeta on every insert would be quadratic; refresh when
        // the space grew by 5 %.
        let stale = self
            .zipf
            .as_ref()
            .map(|_| new_count as f64 > self.record_count as f64 * 1.05)
            .unwrap_or(false);
        self.record_count = new_count;
        if stale {
            let theta = match self.dist {
                Distribution::Zipfian { theta } => theta,
                _ => 0.99,
            };
            self.zipf = Some(ZipfState::new(new_count, theta));
        }
    }

    /// Samples a key index in `[0, record_count)`.
    pub fn next(&mut self, rng: &mut SimRng) -> u64 {
        match self.dist {
            Distribution::Uniform => rng.gen_below(self.record_count),
            Distribution::Zipfian { .. } => {
                let rank = self
                    .zipf
                    .as_ref()
                    .expect("zipf state")
                    .sample(rng, self.record_count);
                // Scramble so popular keys spread over the key space (YCSB's
                // ScrambledZipfian), preserving the popularity *distribution*
                // while decorrelating it from insertion order.
                fnv64(rank) % self.record_count
            }
            Distribution::Latest => {
                let rank = self
                    .zipf
                    .as_ref()
                    .expect("zipf state")
                    .sample(rng, self.record_count);
                self.record_count - 1 - rank.min(self.record_count - 1)
            }
        }
    }
}

impl ZipfState {
    fn new(n: u64, theta: f64) -> Self {
        let zeta_n = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zeta_n);
        ZipfState {
            theta,
            zeta_n,
            alpha,
            eta,
        }
    }

    /// Gray et al.'s constant-time zipfian sampler; returns a rank in
    /// `[0, n)` where rank 0 is the most popular.
    fn sample(&self, rng: &mut SimRng, n: u64) -> u64 {
        let u = rng.next_f64();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(n - 1)
    }
}

fn fnv64(x: u64) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    for b in x.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(12345)
    }

    #[test]
    fn uniform_covers_space_evenly() {
        let mut kc = KeyChooser::new(Distribution::Uniform, 10);
        let mut counts = [0u32; 10];
        let mut r = rng();
        for _ in 0..100_000 {
            counts[kc.next(&mut r) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "uniform bucket count {c}");
        }
    }

    #[test]
    fn zipfian_is_skewed() {
        let n = 1000u64;
        let mut kc = KeyChooser::new(Distribution::zipfian_default(), n);
        let mut counts = vec![0u32; n as usize];
        let mut r = rng();
        let samples = 200_000;
        for _ in 0..samples {
            counts[kc.next(&mut r) as usize] += 1;
        }
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        // Top 10 % of keys should carry well over half the traffic.
        let top: u64 = sorted[..100].iter().map(|&c| c as u64).sum();
        assert!(
            top as f64 > samples as f64 * 0.55,
            "zipfian not skewed enough: top-10% carries {top}"
        );
        // But scrambling should decorrelate popularity from index order:
        // key 0 must not automatically be the hottest.
        let hottest = counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        let _ = hottest; // any index is legal; just ensure sampling in range
        assert!(counts.iter().all(|&c| c as u64 <= samples));
    }

    #[test]
    fn zipfian_stays_in_range() {
        let mut kc = KeyChooser::new(Distribution::Zipfian { theta: 0.5 }, 17);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(kc.next(&mut r) < 17);
        }
    }

    #[test]
    fn latest_prefers_recent() {
        let n = 1000u64;
        let mut kc = KeyChooser::new(Distribution::Latest, n);
        let mut r = rng();
        let mut newest_half = 0u32;
        let samples = 50_000;
        for _ in 0..samples {
            if kc.next(&mut r) >= n / 2 {
                newest_half += 1;
            }
        }
        assert!(
            newest_half as f64 > samples as f64 * 0.8,
            "latest distribution should hit the newest half mostly, got {newest_half}"
        );
    }

    #[test]
    fn grow_extends_range() {
        let mut kc = KeyChooser::new(Distribution::Latest, 10);
        kc.grow(1000);
        assert_eq!(kc.record_count(), 1000);
        let mut r = rng();
        let mut max_seen = 0;
        for _ in 0..10_000 {
            max_seen = max_seen.max(kc.next(&mut r));
        }
        assert!(
            max_seen > 500,
            "grown space should be reachable, max {max_seen}"
        );
    }

    #[test]
    fn grow_never_shrinks() {
        let mut kc = KeyChooser::new(Distribution::Uniform, 100);
        kc.grow(50);
        assert_eq!(kc.record_count(), 100);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = KeyChooser::new(Distribution::zipfian_default(), 500);
        let mut b = a.clone();
        let mut ra = SimRng::seed_from_u64(7);
        let mut rb = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next(&mut ra), b.next(&mut rb));
        }
    }

    #[test]
    #[should_panic(expected = "record count must be positive")]
    fn zero_records_rejected() {
        let _ = KeyChooser::new(Distribution::Uniform, 0);
    }
}
