//! Property tests for the workload generator.

use proptest::prelude::*;
use rmc_runtime::{SimRng, SimTime};
use rmc_ycsb::{Distribution, KeyChooser, Mix, Throttle};

proptest! {
    /// Any valid mix's empirical proportions converge to the specification.
    #[test]
    fn mix_sampling_converges(read_w in 0u32..10, update_w in 0u32..10, insert_w in 0u32..10) {
        prop_assume!(read_w + update_w + insert_w > 0);
        let total = (read_w + update_w + insert_w) as f64;
        let mix = Mix {
            read: read_w as f64 / total,
            update: update_w as f64 / total,
            insert: insert_w as f64 / total,
            rmw: 0.0,
            scan: 0.0,
        };
        let mut rng = SimRng::seed_from_u64(9);
        let n = 40_000;
        let mut counts = [0u32; 3];
        for _ in 0..n {
            match mix.sample(&mut rng) {
                rmc_ycsb::OpKind::Read => counts[0] += 1,
                rmc_ycsb::OpKind::Update => counts[1] += 1,
                rmc_ycsb::OpKind::Insert => counts[2] += 1,
                _ => {}
            }
        }
        for (got, want) in counts.iter().zip([mix.read, mix.update, mix.insert]) {
            let frac = *got as f64 / n as f64;
            prop_assert!((frac - want).abs() < 0.02, "frac {frac} vs want {want}");
        }
    }

    /// Every distribution only ever samples inside the key space.
    #[test]
    fn distributions_stay_in_range(
        records in 1u64..100_000,
        seed in any::<u64>(),
        theta_pct in 1u32..99,
    ) {
        let theta = theta_pct as f64 / 100.0;
        for dist in [
            Distribution::Uniform,
            Distribution::Zipfian { theta },
            Distribution::Latest,
        ] {
            let mut kc = KeyChooser::new(dist, records);
            let mut rng = SimRng::seed_from_u64(seed);
            for _ in 0..200 {
                prop_assert!(kc.next(&mut rng) < records);
            }
        }
    }

    /// The throttle never grants more than `rate` sends in any aligned
    /// one-second window.
    #[test]
    fn throttle_caps_rate(rate in 10.0f64..2_000.0, arrivals in proptest::collection::vec(0u64..2_000, 1..300)) {
        let mut t = Throttle::new(rate);
        let mut clock = 0u64;
        let mut grants: Vec<u64> = Vec::new();
        for gap in arrivals {
            clock += gap;
            let at = t.reserve(SimTime::from_micros(clock));
            grants.push(at.as_nanos());
        }
        grants.sort_unstable();
        let window = 1_000_000_000u64;
        let cap = rate.ceil() as usize + 1;
        for (i, &start) in grants.iter().enumerate() {
            let in_window = grants[i..]
                .iter()
                .take_while(|&&g| g < start + window)
                .count();
            prop_assert!(
                in_window <= cap,
                "{} grants in one second exceeds rate {}",
                in_window,
                rate
            );
        }
    }
}
