//! The `rmc-wire` frame: a length-prefixed binary envelope with a
//! versioned header, carrying one payload per frame over a byte stream.
//!
//! ```text
//!  0       4        5      6            10
//! +--------+--------+------+-------------+----------------+
//! | "RMCW" | version| kind | len (u32 LE)| payload (len B)|
//! +--------+--------+------+-------------+----------------+
//! ```
//!
//! The header is checked before the payload is trusted: a wrong magic or
//! version is a clean [`FrameError`] (the stream is desynchronized or
//! speaks a different protocol — the connection must be dropped), while an
//! *incomplete* frame is simply "need more bytes". [`FrameReader`] holds
//! partial input across reads, so torn TCP segments reassemble into
//! exactly the frames that were sent — the torn-frame property the codec
//! proptests pin down.

use std::fmt;

/// Frame magic: the four bytes every header starts with.
pub const MAGIC: [u8; 4] = *b"RMCW";

/// Wire protocol version stamped into (and required of) every header.
pub const VERSION: u8 = 1;

/// Header size in bytes: magic + version + kind + payload length.
pub const HEADER_LEN: usize = 10;

/// Hard ceiling on a frame payload. Larger lengths are rejected before
/// any allocation: a corrupt or hostile length prefix must not OOM the
/// receiver.
pub const MAX_PAYLOAD: usize = 1 << 24;

/// What a frame carries. `Hello` opens every dialed connection (it names
/// the dialing node so the acceptor can pool the connection for replies);
/// `Msg` wraps one encoded protocol message; the trace pair implements the
/// remote TimeTrace dump without touching the protocol's `Msg` enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Connection opener: payload is the dialing node's id (u64 LE).
    Hello = 0,
    /// One `rmc_core::protocol::Msg`, encoded by [`crate::codec`].
    Msg = 1,
    /// Ask the receiving process for its TimeTrace dump (empty payload).
    TraceRequest = 2,
    /// The dump text answering a [`FrameKind::TraceRequest`] (UTF-8).
    TraceReply = 3,
}

impl FrameKind {
    fn from_u8(b: u8) -> Option<FrameKind> {
        match b {
            0 => Some(FrameKind::Hello),
            1 => Some(FrameKind::Msg),
            2 => Some(FrameKind::TraceRequest),
            3 => Some(FrameKind::TraceReply),
            _ => None,
        }
    }
}

/// One reassembled frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the payload is.
    pub kind: FrameKind,
    /// The payload bytes (owned: the reader's buffer moves on).
    pub payload: Vec<u8>,
}

/// A malformed header. All variants are unrecoverable for the connection:
/// once framing is lost there is no way to find the next boundary, so the
/// reader reports the error and the caller drops the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The version byte differs from [`VERSION`].
    BadVersion(u8),
    /// The kind byte names no known [`FrameKind`].
    BadKind(u8),
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversize(usize),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::Oversize(n) => write!(f, "frame payload of {n} bytes exceeds the cap"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one frame: header + payload, ready for a single write.
///
/// # Errors
///
/// [`FrameError::Oversize`] when the payload exceeds [`MAX_PAYLOAD`].
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Result<Vec<u8>, FrameError> {
    if payload.len() > MAX_PAYLOAD {
        return Err(FrameError::Oversize(payload.len()));
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(kind as u8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Incremental frame reassembly over a byte stream: feed whatever the
/// socket produced, pop complete frames. Bytes may arrive in any split —
/// mid-header, mid-payload, several frames at once — and reassemble
/// identically.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends freshly read bytes to the pending buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete frame, `Ok(None)` when more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// A [`FrameError`] as soon as the buffered header is provably
    /// malformed — each header field is validated the moment it is
    /// complete, so a bad magic is detected after four bytes, not after a
    /// bogus length prefix has been waited on.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        if self.buf.len() >= 4 {
            let magic: [u8; 4] = self.buf[..4].try_into().expect("4 bytes");
            if magic != MAGIC {
                return Err(FrameError::BadMagic(magic));
            }
        }
        if self.buf.len() >= 5 && self.buf[4] != VERSION {
            return Err(FrameError::BadVersion(self.buf[4]));
        }
        let kind = if self.buf.len() >= 6 {
            Some(FrameKind::from_u8(self.buf[5]).ok_or(FrameError::BadKind(self.buf[5]))?)
        } else {
            None
        };
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let len_bytes: [u8; 4] = self.buf[6..HEADER_LEN].try_into().expect("4 bytes");
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > MAX_PAYLOAD {
            return Err(FrameError::Oversize(len));
        }
        if self.buf.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let payload = self.buf[HEADER_LEN..HEADER_LEN + len].to_vec();
        self.buf.drain(..HEADER_LEN + len);
        Ok(Some(Frame {
            kind: kind.expect("header complete"),
            payload,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_frame() {
        let bytes = encode_frame(FrameKind::Msg, b"hello wire").unwrap();
        let mut r = FrameReader::new();
        r.feed(&bytes);
        let f = r.next_frame().unwrap().unwrap();
        assert_eq!(f.kind, FrameKind::Msg);
        assert_eq!(f.payload, b"hello wire");
        assert!(r.next_frame().unwrap().is_none());
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn byte_at_a_time_reassembly() {
        let mut stream = Vec::new();
        stream.extend(encode_frame(FrameKind::Hello, &7u64.to_le_bytes()).unwrap());
        stream.extend(encode_frame(FrameKind::Msg, &[0xAB; 300]).unwrap());
        stream.extend(encode_frame(FrameKind::TraceRequest, b"").unwrap());
        let mut r = FrameReader::new();
        let mut frames = Vec::new();
        for b in stream {
            r.feed(&[b]);
            while let Some(f) = r.next_frame().unwrap() {
                frames.push(f);
            }
        }
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0].kind, FrameKind::Hello);
        assert_eq!(frames[1].payload.len(), 300);
        assert_eq!(frames[2].kind, FrameKind::TraceRequest);
    }

    #[test]
    fn truncated_input_is_need_more_not_error() {
        let bytes = encode_frame(FrameKind::Msg, &[1, 2, 3, 4]).unwrap();
        for cut in 0..bytes.len() {
            let mut r = FrameReader::new();
            r.feed(&bytes[..cut]);
            assert_eq!(r.next_frame().unwrap(), None, "cut at {cut}");
        }
    }

    #[test]
    fn bad_headers_fail_cleanly() {
        let mut r = FrameReader::new();
        r.feed(b"JUNKxxxxxx");
        assert_eq!(r.next_frame(), Err(FrameError::BadMagic(*b"JUNK")));

        let mut bytes = encode_frame(FrameKind::Msg, b"x").unwrap();
        bytes[4] = 9;
        let mut r = FrameReader::new();
        r.feed(&bytes);
        assert_eq!(r.next_frame(), Err(FrameError::BadVersion(9)));

        let mut bytes = encode_frame(FrameKind::Msg, b"x").unwrap();
        bytes[5] = 200;
        let mut r = FrameReader::new();
        r.feed(&bytes);
        assert_eq!(r.next_frame(), Err(FrameError::BadKind(200)));

        let mut bytes = encode_frame(FrameKind::Msg, b"x").unwrap();
        bytes[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut r = FrameReader::new();
        r.feed(&bytes);
        assert_eq!(r.next_frame(), Err(FrameError::Oversize(u32::MAX as usize)));
    }

    #[test]
    fn oversize_payload_rejected_at_encode() {
        let big = vec![0u8; MAX_PAYLOAD + 1];
        assert_eq!(
            encode_frame(FrameKind::Msg, &big),
            Err(FrameError::Oversize(MAX_PAYLOAD + 1))
        );
    }
}
