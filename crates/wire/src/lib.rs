//! # rmc-wire — the cluster protocol over real TCP sockets
//!
//! Everything below this crate runs the replication/recovery protocol of
//! the RAMCloud characterization study on an engine the node never sees:
//! the deterministic simulator (`rmc-sim`), real threads over channels
//! (`rmc-standalone`'s `MiniCluster`), and — with this crate — real OS
//! processes over TCP. The same handler code, the same [`Runtime`]
//! surface, a third transport.
//!
//! Layers, bottom up:
//!
//! - [`frame`]: the length-prefixed binary envelope (`"RMCW"` magic,
//!   version, kind, u32 LE length) and the incremental [`FrameReader`]
//!   that reassembles frames from arbitrarily torn byte streams.
//! - [`codec`]: a hand-rolled, dependency-free encoding of
//!   `rmc_core::protocol::Msg` — one-byte enum tags in declaration order,
//!   u64 LE integers, length-prefixed byte strings — with proptests
//!   pinning the round-trip and torn-frame properties.
//! - [`pool`]: one lazily dialed, automatically re-dialed connection per
//!   peer, with exponential backoff on dead peers and bidirectional
//!   adoption (replies multiplex back over the socket requests arrived
//!   on). Health surfaces as `wire.*` counters in the shared
//!   [`MetricsRegistry`](rmc_runtime::MetricsRegistry).
//! - [`fabric`]: the [`WireFabric`] NIC (listener, readers, delay line,
//!   span stamping at send/deliver) and the [`NetRuntime`] that plugs it
//!   into the protocol's [`Runtime`] trait.
//!
//! Delivery semantics match the other engines: `send` may silently drop
//! (connection died, peer backing off, peer has no route) and the
//! protocol's own acks/retries/RIFL dedup provide exactly-once on top.
//! Request/response multiplexing needs no wire-level correlation ids —
//! the protocol's RIFL `(client, seq)` pairs already key every exchange.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod fabric;
pub mod frame;
pub mod pool;

pub use codec::{decode_msg, encode_msg, CodecError};
pub use fabric::{FabricConfig, Inbound, NetRuntime, WireFabric};
pub use frame::{encode_frame, Frame, FrameError, FrameKind, FrameReader};
pub use pool::{AddressBook, ConnectionPool, WireMetrics};
pub use rmc_runtime::Runtime;
