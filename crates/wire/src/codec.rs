//! Hand-rolled binary codec for [`rmc_core::protocol::Msg`]: the stable
//! wire encoding every frame of kind [`crate::frame::FrameKind::Msg`]
//! carries.
//!
//! Layout rules (all integers little-endian):
//!
//! - every enum is a one-byte variant tag in declaration order,
//! - integers are `u64`,
//! - byte strings are a `u32` length prefix followed by the bytes,
//! - sequences are a `u32` element count followed by the elements,
//! - booleans are one byte, `0` or `1` (anything else is a decode error).
//!
//! A message travels inside an *envelope* that prepends the sending node's
//! id — the receiving node loop needs `(from, msg)` exactly as the
//! in-process engines deliver it. Decoding is total: any byte string
//! either decodes to the value that produced it (the round-trip proptests)
//! or fails with a clean [`CodecError`] — never a panic, never a
//! misparse that silently yields a different message.

use std::fmt;

use rmc_core::protocol::{ClientOp, Msg, Reply};
use rmc_runtime::NodeId;

/// A malformed payload. Unlike a [`crate::frame::FrameError`] this is
/// *recoverable* for the connection: the frame boundary is intact, so the
/// receiver counts the error and skips the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before the value did.
    UnexpectedEof,
    /// An enum tag named no known variant.
    BadTag(&'static str, u8),
    /// A boolean byte was neither 0 nor 1.
    BadBool(u8),
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// Bytes remained after the value was fully decoded.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "payload truncated mid-value"),
            CodecError::BadTag(what, t) => write!(f, "unknown {what} tag {t}"),
            CodecError::BadBool(b) => write!(f, "invalid boolean byte {b}"),
            CodecError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn put_count(out: &mut Vec<u8>, n: usize) {
    out.extend_from_slice(&(n as u32).to_le_bytes());
}

fn put_usizes(out: &mut Vec<u8>, xs: &[usize]) {
    put_count(out, xs.len());
    for &x in xs {
        put_u64(out, x as u64);
    }
}

fn put_op(out: &mut Vec<u8>, op: &ClientOp) {
    match op {
        ClientOp::Put { key, value } => {
            out.push(0);
            put_bytes(out, key);
            put_bytes(out, value);
        }
        ClientOp::Get { key } => {
            out.push(1);
            put_bytes(out, key);
        }
        ClientOp::Del { key } => {
            out.push(2);
            put_bytes(out, key);
        }
    }
}

fn put_reply(out: &mut Vec<u8>, reply: &Reply) {
    match reply {
        Reply::Done { version } => {
            out.push(0);
            put_u64(out, *version);
        }
        Reply::Value(v) => {
            out.push(1);
            match v {
                None => out.push(0),
                Some(bytes) => {
                    out.push(1);
                    put_bytes(out, bytes);
                }
            }
        }
        Reply::WrongOwner => out.push(2),
    }
}

/// Encodes `(from, msg)` as a `Msg`-frame payload.
pub fn encode_msg(from: NodeId, msg: &Msg) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    put_u64(&mut out, from.0 as u64);
    match msg {
        Msg::Request { seq, op } => {
            out.push(0);
            put_u64(&mut out, *seq);
            put_op(&mut out, op);
        }
        Msg::Response { seq, reply } => {
            out.push(1);
            put_u64(&mut out, *seq);
            put_reply(&mut out, reply);
        }
        Msg::Replicate {
            segment,
            bytes,
            token,
        } => {
            out.push(2);
            put_u64(&mut out, *segment);
            put_bytes(&mut out, bytes);
            put_u64(&mut out, token.0);
            put_u64(&mut out, token.1);
        }
        Msg::ReplicateAck { token } => {
            out.push(3);
            put_u64(&mut out, token.0);
            put_u64(&mut out, token.1);
        }
        Msg::Heartbeat { epoch, map_version } => {
            out.push(4);
            put_u64(&mut out, *epoch);
            put_u64(&mut out, *map_version);
        }
        Msg::MapRequest => out.push(5),
        Msg::TakeOver {
            crashed,
            buckets,
            survivors,
            round,
        } => {
            out.push(6);
            put_u64(&mut out, *crashed as u64);
            put_usizes(&mut out, buckets);
            put_usizes(&mut out, survivors);
            put_u64(&mut out, *round);
        }
        Msg::FetchSegments { crashed } => {
            out.push(7);
            put_u64(&mut out, *crashed as u64);
        }
        Msg::SegmentData { crashed, segments } => {
            out.push(8);
            put_u64(&mut out, *crashed as u64);
            put_count(&mut out, segments.len());
            for (seg, bytes) in segments {
                put_u64(&mut out, *seg);
                put_bytes(&mut out, bytes);
            }
        }
        Msg::TakeOverDone {
            crashed,
            buckets,
            round,
        } => {
            out.push(9);
            put_u64(&mut out, *crashed as u64);
            put_usizes(&mut out, buckets);
            put_u64(&mut out, *round);
        }
        Msg::MapUpdate {
            version,
            owners,
            alive,
        } => {
            out.push(10);
            put_u64(&mut out, *version);
            put_usizes(&mut out, owners);
            put_count(&mut out, alive.len());
            for &a in alive {
                out.push(u8::from(a));
            }
        }
        Msg::StatsRequest => out.push(11),
        Msg::StatsReply { stats } => {
            out.push(12);
            put_count(&mut out, stats.len());
            for (name, value) in stats {
                put_bytes(&mut out, name.as_bytes());
                put_u64(&mut out, *value);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Cursor<'a> {
    b: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.b.len() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let (head, tail) = self.b.split_at(n);
        self.b = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn count(&mut self) -> Result<usize, CodecError> {
        let n = u32::from_le_bytes(self.take(4)?.try_into().expect("4")) as usize;
        // A count can never legitimately exceed the remaining payload
        // (every element is at least one byte); rejecting here keeps a
        // corrupt prefix from provoking a huge allocation.
        if n > self.b.len() {
            return Err(CodecError::UnexpectedEof);
        }
        Ok(n)
    }

    fn bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let n = self.count()?;
        Ok(self.take(n)?.to_vec())
    }

    fn string(&mut self) -> Result<String, CodecError> {
        String::from_utf8(self.bytes()?).map_err(|_| CodecError::BadUtf8)
    }

    fn boolean(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CodecError::BadBool(b)),
        }
    }

    fn usizes(&mut self) -> Result<Vec<usize>, CodecError> {
        let n = self.count()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()? as usize);
        }
        Ok(out)
    }

    fn op(&mut self) -> Result<ClientOp, CodecError> {
        match self.u8()? {
            0 => Ok(ClientOp::Put {
                key: self.bytes()?,
                value: self.bytes()?,
            }),
            1 => Ok(ClientOp::Get { key: self.bytes()? }),
            2 => Ok(ClientOp::Del { key: self.bytes()? }),
            t => Err(CodecError::BadTag("client op", t)),
        }
    }

    fn reply(&mut self) -> Result<Reply, CodecError> {
        match self.u8()? {
            0 => Ok(Reply::Done {
                version: self.u64()?,
            }),
            1 => Ok(Reply::Value(match self.u8()? {
                0 => None,
                1 => Some(self.bytes()?),
                t => Err(CodecError::BadTag("option", t))?,
            })),
            2 => Ok(Reply::WrongOwner),
            t => Err(CodecError::BadTag("reply", t)),
        }
    }
}

/// Decodes a `Msg`-frame payload back to `(from, msg)`.
///
/// # Errors
///
/// A [`CodecError`] describing the first malformation found; trailing
/// bytes after a complete message are rejected too.
pub fn decode_msg(payload: &[u8]) -> Result<(NodeId, Msg), CodecError> {
    let mut c = Cursor { b: payload };
    let from = NodeId(c.u64()? as usize);
    let msg = match c.u8()? {
        0 => Msg::Request {
            seq: c.u64()?,
            op: c.op()?,
        },
        1 => Msg::Response {
            seq: c.u64()?,
            reply: c.reply()?,
        },
        2 => Msg::Replicate {
            segment: c.u64()?,
            bytes: c.bytes()?,
            token: (c.u64()?, c.u64()?),
        },
        3 => Msg::ReplicateAck {
            token: (c.u64()?, c.u64()?),
        },
        4 => Msg::Heartbeat {
            epoch: c.u64()?,
            map_version: c.u64()?,
        },
        5 => Msg::MapRequest,
        6 => Msg::TakeOver {
            crashed: c.u64()? as usize,
            buckets: c.usizes()?,
            survivors: c.usizes()?,
            round: c.u64()?,
        },
        7 => Msg::FetchSegments {
            crashed: c.u64()? as usize,
        },
        8 => {
            let crashed = c.u64()? as usize;
            let n = c.count()?;
            let mut segments = Vec::with_capacity(n);
            for _ in 0..n {
                segments.push((c.u64()?, c.bytes()?));
            }
            Msg::SegmentData { crashed, segments }
        }
        9 => Msg::TakeOverDone {
            crashed: c.u64()? as usize,
            buckets: c.usizes()?,
            round: c.u64()?,
        },
        10 => {
            let version = c.u64()?;
            let owners = c.usizes()?;
            let n = c.count()?;
            let mut alive = Vec::with_capacity(n);
            for _ in 0..n {
                alive.push(c.boolean()?);
            }
            Msg::MapUpdate {
                version,
                owners,
                alive,
            }
        }
        11 => Msg::StatsRequest,
        12 => {
            let n = c.count()?;
            let mut stats = Vec::with_capacity(n);
            for _ in 0..n {
                stats.push((c.string()?, c.u64()?));
            }
            Msg::StatsReply { stats }
        }
        t => return Err(CodecError::BadTag("msg", t)),
    };
    if !c.b.is_empty() {
        return Err(CodecError::TrailingBytes(c.b.len()));
    }
    Ok((from, msg))
}

/// Encodes a [`crate::frame::FrameKind::Hello`] payload: the dialer's id.
pub fn encode_hello(from: NodeId) -> Vec<u8> {
    (from.0 as u64).to_le_bytes().to_vec()
}

/// Decodes a `Hello` payload.
///
/// # Errors
///
/// [`CodecError`] when the payload is not exactly one u64.
pub fn decode_hello(payload: &[u8]) -> Result<NodeId, CodecError> {
    let mut c = Cursor { b: payload };
    let id = NodeId(c.u64()? as usize);
    if !c.b.is_empty() {
        return Err(CodecError::TrailingBytes(c.b.len()));
    }
    Ok(id)
}

/// Encodes a `TraceRequest` payload: the asking node's id (so the reply
/// can be routed without relying on `Hello` ordering).
pub fn encode_trace_request(from: NodeId) -> Vec<u8> {
    encode_hello(from)
}

/// Decodes a `TraceRequest` payload.
///
/// # Errors
///
/// [`CodecError`] when the payload is not exactly one u64.
pub fn decode_trace_request(payload: &[u8]) -> Result<NodeId, CodecError> {
    decode_hello(payload)
}

/// Encodes a `TraceReply` payload: the answering node's id + UTF-8 dump.
pub fn encode_trace_reply(from: NodeId, text: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + text.len());
    put_u64(&mut out, from.0 as u64);
    out.extend_from_slice(text.as_bytes());
    out
}

/// Decodes a `TraceReply` payload.
///
/// # Errors
///
/// [`CodecError`] on a truncated id or invalid UTF-8 text.
pub fn decode_trace_reply(payload: &[u8]) -> Result<(NodeId, String), CodecError> {
    let mut c = Cursor { b: payload };
    let from = NodeId(c.u64()? as usize);
    let text = std::str::from_utf8(c.b).map_err(|_| CodecError::BadUtf8)?;
    Ok((from, text.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{encode_frame, FrameKind, FrameReader};
    use proptest::prelude::*;

    fn key() -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(any::<u8>(), 0..24)
    }

    fn op() -> impl Strategy<Value = ClientOp> {
        prop_oneof![
            (key(), key()).prop_map(|(key, value)| ClientOp::Put { key, value }),
            key().prop_map(|key| ClientOp::Get { key }),
            key().prop_map(|key| ClientOp::Del { key }),
        ]
    }

    fn reply() -> impl Strategy<Value = Reply> {
        prop_oneof![
            any::<u64>().prop_map(|version| Reply::Done { version }),
            proptest::option::of(key()).prop_map(Reply::Value),
            Just(Reply::WrongOwner),
        ]
    }

    fn usizes() -> impl Strategy<Value = Vec<usize>> {
        proptest::collection::vec(0usize..1024, 0..12)
    }

    fn stat_name() -> impl Strategy<Value = String> {
        proptest::collection::vec(any::<u8>(), 0..12).prop_map(|bytes| {
            bytes
                .into_iter()
                .map(|b| char::from(b'a' + b % 26))
                .collect()
        })
    }

    fn msg() -> impl Strategy<Value = Msg> {
        prop_oneof![
            (any::<u64>(), op()).prop_map(|(seq, op)| Msg::Request { seq, op }),
            (any::<u64>(), reply()).prop_map(|(seq, reply)| Msg::Response { seq, reply }),
            (any::<u64>(), key(), any::<u64>(), any::<u64>()).prop_map(|(segment, bytes, a, b)| {
                Msg::Replicate {
                    segment,
                    bytes,
                    token: (a, b),
                }
            }),
            (any::<u64>(), any::<u64>()).prop_map(|(a, b)| Msg::ReplicateAck { token: (a, b) }),
            (any::<u64>(), any::<u64>())
                .prop_map(|(epoch, map_version)| Msg::Heartbeat { epoch, map_version }),
            Just(Msg::MapRequest),
            (0usize..16, usizes(), usizes(), any::<u64>()).prop_map(
                |(crashed, buckets, survivors, round)| Msg::TakeOver {
                    crashed,
                    buckets,
                    survivors,
                    round,
                }
            ),
            (0usize..16).prop_map(|crashed| Msg::FetchSegments { crashed }),
            (
                0usize..16,
                proptest::collection::vec((any::<u64>(), key()), 0..6)
            )
                .prop_map(|(crashed, segments)| Msg::SegmentData { crashed, segments }),
            (0usize..16, usizes(), any::<u64>()).prop_map(|(crashed, buckets, round)| {
                Msg::TakeOverDone {
                    crashed,
                    buckets,
                    round,
                }
            }),
            (
                any::<u64>(),
                usizes(),
                proptest::collection::vec(any::<bool>(), 0..12)
            )
                .prop_map(|(version, owners, alive)| Msg::MapUpdate {
                    version,
                    owners,
                    alive,
                }),
            Just(Msg::StatsRequest),
            proptest::collection::vec((stat_name(), any::<u64>()), 0..6)
                .prop_map(|stats| Msg::StatsReply { stats }),
        ]
    }

    proptest! {
        #[test]
        fn msg_roundtrips(from in 0usize..64, m in msg()) {
            let bytes = encode_msg(NodeId(from), &m);
            let (f, decoded) = decode_msg(&bytes).expect("own encoding decodes");
            prop_assert_eq!(f, NodeId(from));
            prop_assert_eq!(decoded, m);
        }

        /// The torn-frame property: a stream of frames fed to the reader
        /// in arbitrary byte-level splits reassembles into exactly the
        /// messages that were sent — no tearing, no merging, no panic.
        #[test]
        fn torn_stream_reassembles_identically(
            msgs in proptest::collection::vec(msg(), 1..5),
            cuts in proptest::collection::vec(1usize..64, 0..40),
        ) {
            let mut stream = Vec::new();
            for m in &msgs {
                let payload = encode_msg(NodeId(3), m);
                stream.extend(encode_frame(FrameKind::Msg, &payload).unwrap());
            }
            let mut reader = FrameReader::new();
            let mut decoded = Vec::new();
            let mut pos = 0;
            let mut cuts = cuts.into_iter();
            while pos < stream.len() {
                let step = cuts.next().unwrap_or(stream.len()).min(stream.len() - pos);
                reader.feed(&stream[pos..pos + step]);
                pos += step;
                while let Some(frame) = reader.next_frame().expect("well-formed stream") {
                    decoded.push(decode_msg(&frame.payload).expect("intact payload").1);
                }
            }
            prop_assert_eq!(decoded, msgs);
        }

        /// Truncating the stream anywhere decodes a prefix of the sent
        /// messages and then cleanly reports "need more" — never a panic,
        /// never a mis-framed message.
        #[test]
        fn truncation_decodes_a_clean_prefix(
            msgs in proptest::collection::vec(msg(), 1..4),
            cut_frac in 0.0f64..1.0,
        ) {
            let mut stream = Vec::new();
            for m in &msgs {
                let payload = encode_msg(NodeId(1), m);
                stream.extend(encode_frame(FrameKind::Msg, &payload).unwrap());
            }
            let cut = ((stream.len() as f64) * cut_frac) as usize;
            let mut reader = FrameReader::new();
            reader.feed(&stream[..cut]);
            let mut decoded = Vec::new();
            while let Some(frame) = reader.next_frame().expect("prefix of a valid stream") {
                decoded.push(decode_msg(&frame.payload).expect("intact payload").1);
            }
            prop_assert!(decoded.len() <= msgs.len());
            prop_assert_eq!(&decoded[..], &msgs[..decoded.len()]);
        }

        /// Decoding arbitrary bytes never panics: it either produces some
        /// message or a clean error.
        #[test]
        fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode_msg(&bytes);
            let _ = decode_hello(&bytes);
        }
    }

    #[test]
    fn corrupt_payload_is_a_clean_error() {
        let mut bytes = encode_msg(
            NodeId(2),
            &Msg::Request {
                seq: 9,
                op: ClientOp::Get { key: b"k".to_vec() },
            },
        );
        let tag_at = 8; // after the from-envelope u64
        bytes[tag_at] = 99;
        assert_eq!(decode_msg(&bytes), Err(CodecError::BadTag("msg", 99)));
        let short = &bytes[..bytes.len() - 1];
        assert!(decode_msg(short).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_msg(NodeId(0), &Msg::MapRequest);
        bytes.push(0);
        assert_eq!(decode_msg(&bytes), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn hello_roundtrips() {
        let bytes = encode_hello(NodeId(41));
        assert_eq!(decode_hello(&bytes), Ok(NodeId(41)));
    }
}
