//! [`WireFabric`] and [`NetRuntime`]: the cluster protocol's third engine,
//! over real TCP sockets.
//!
//! One `WireFabric` is one node's NIC: it owns the node's listener (if the
//! node listens), its [`ConnectionPool`], the reader threads draining every
//! socket into the node's inbox channel, and a delay-line thread backing
//! [`rmc_runtime::Runtime::send_after`] (which is how chaos plans inject
//! message *delay* at the wire). [`NetRuntime`] wraps a fabric as the
//! `Runtime` a protocol node handles events against — the same handler
//! code that runs under the simulated and threaded engines runs here over
//! sockets, unchanged.
//!
//! Like the other engines' chokepoints, `post` stamps the
//! [`SpanKind::Send`] side of RPC span propagation and the reader threads
//! stamp [`SpanKind::Deliver`], so a request's timeline crosses process
//! boundaries on the shared wall clock of each process.

use std::collections::BinaryHeap;
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use rmc_core::protocol::Msg;
use rmc_obs::span::{SpanKind, SpanRecorder};
use rmc_runtime::{Clock, MetricsRegistry, NodeId, Runtime, SimDuration, SimTime, WallClock};

use crate::codec;
use crate::frame::{encode_frame, FrameKind, FrameReader};
use crate::pool::{AddressBook, ConnectionPool, WireMetrics};

/// Poll granularity for the acceptor and delay-line threads.
const POLL: Duration = Duration::from_millis(2);

/// What a fabric delivers to its node's inbox.
#[derive(Debug)]
pub enum Inbound {
    /// A protocol message, exactly as the in-process engines deliver it.
    Msg {
        /// Sending node.
        from: NodeId,
        /// The message.
        msg: Msg,
    },
    /// A remote process asked for this process's TimeTrace dump.
    TraceRequest {
        /// The asking node (route the [`WireFabric::send_trace_reply`]
        /// here).
        from: NodeId,
    },
    /// The dump text answering an earlier trace request.
    TraceReply {
        /// The answering node.
        from: NodeId,
        /// Rendered dump text.
        text: String,
    },
}

/// Everything needed to start a fabric.
#[derive(Debug)]
pub struct FabricConfig {
    /// This node's id.
    pub me: NodeId,
    /// Listen addresses of the cluster's listening nodes.
    pub book: AddressBook,
    /// This node's own listener (`None` for client nodes, which are
    /// reachable only over connections they dial).
    pub listener: Option<TcpListener>,
    /// Where `wire.*` metrics land (shared across a test cluster, or the
    /// process's registry under `rmcd`).
    pub registry: MetricsRegistry,
    /// Where send/deliver span events land.
    pub spans: SpanRecorder,
    /// The clock `now()` reads (shared across an in-process cluster so
    /// span timelines are comparable).
    pub clock: Arc<WallClock>,
}

/// A message parked on the delay line, ordered earliest-due first.
#[derive(Debug)]
struct Delayed {
    due: Instant,
    seq: u64,
    to: NodeId,
    msg: Msg,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for Delayed {}
impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    // Reversed: `BinaryHeap` is a max-heap, earliest due surfaces first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.due.cmp(&self.due).then(other.seq.cmp(&self.seq))
    }
}

/// One node's TCP NIC: listener, connection pool, reader threads, delay
/// line, and the observability chokepoints.
#[derive(Debug)]
pub struct WireFabric {
    me: NodeId,
    clock: Arc<WallClock>,
    registry: MetricsRegistry,
    spans: SpanRecorder,
    metrics: WireMetrics,
    pool: ConnectionPool,
    inbox_tx: Sender<Inbound>,
    delay_tx: Sender<(Duration, NodeId, Msg)>,
    shutdown: AtomicBool,
    threads: Mutex<Vec<JoinHandle<()>>>,
    /// Read-half clones of every socket a reader thread blocks on, so
    /// shutdown can unblock them all.
    reader_socks: Mutex<Vec<TcpStream>>,
}

impl WireFabric {
    /// Starts the fabric's threads and returns it with the node's inbox.
    pub fn start(cfg: FabricConfig) -> (Arc<WireFabric>, Receiver<Inbound>) {
        let (inbox_tx, inbox_rx) = unbounded();
        let (delay_tx, delay_rx) = unbounded();
        let metrics = WireMetrics::new(&cfg.registry);
        let me = cfg.me;
        let fabric = Arc::new_cyclic(|weak: &Weak<WireFabric>| {
            let weak = weak.clone();
            let pool = ConnectionPool::new(
                me,
                cfg.book,
                metrics.clone(),
                encode_frame(FrameKind::Hello, &codec::encode_hello(me)).expect("tiny hello"),
                Box::new(move |stream| {
                    if let Some(fabric) = weak.upgrade() {
                        fabric.spawn_reader(stream);
                    }
                }),
            );
            WireFabric {
                me,
                clock: cfg.clock,
                registry: cfg.registry,
                spans: cfg.spans,
                metrics,
                pool,
                inbox_tx,
                delay_tx,
                shutdown: AtomicBool::new(false),
                threads: Mutex::new(Vec::new()),
                reader_socks: Mutex::new(Vec::new()),
            }
        });
        if let Some(listener) = cfg.listener {
            let f = Arc::clone(&fabric);
            fabric.track(
                thread::Builder::new()
                    .name(format!("wire-accept-{me}"))
                    .spawn(move || f.accept_loop(listener))
                    .expect("spawn acceptor"),
            );
        }
        {
            let f = Arc::clone(&fabric);
            fabric.track(
                thread::Builder::new()
                    .name(format!("wire-delay-{me}"))
                    .spawn(move || f.delay_loop(delay_rx))
                    .expect("spawn delay line"),
            );
        }
        (fabric, inbox_rx)
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The fabric's wall clock.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The registry the fabric's `wire.*` metrics live in.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The fabric's span recorder (cheap clone; shares the event store).
    pub fn spans(&self) -> SpanRecorder {
        self.spans.clone()
    }

    fn track(&self, handle: JoinHandle<()>) {
        self.threads.lock().expect("threads lock").push(handle);
    }

    /// Sends `msg` to `to`, holding it on the delay line for `extra`
    /// first when nonzero. This is the engine's send chokepoint: it
    /// stamps the [`SpanKind::Send`] span and frames + encodes the
    /// message for the pool.
    pub fn post(&self, to: NodeId, msg: Msg, extra: SimDuration) {
        if extra.is_zero() {
            self.post_now(to, msg);
        } else {
            let _ = self
                .delay_tx
                .send((Duration::from_nanos(extra.as_nanos()), to, msg));
        }
    }

    fn post_now(&self, to: NodeId, msg: Msg) {
        if let Some(trace) = msg.trace_id(self.me, to) {
            self.spans.record(
                trace,
                SpanKind::Send,
                msg.span_label(),
                self.me.0,
                to.0,
                self.clock.now().as_nanos(),
            );
        }
        let payload = codec::encode_msg(self.me, &msg);
        match encode_frame(FrameKind::Msg, &payload) {
            Ok(bytes) => {
                self.pool.send_bytes(to, &bytes);
            }
            Err(_) => {
                // An oversize message cannot be framed: drop it, exactly
                // like a NIC refusing a jumbo datagram. Protocol retries
                // will not help, but neither would crashing the node.
                self.metrics.decode_errors.incr();
            }
        }
    }

    /// Asks the process behind `to` for its TimeTrace dump; the answer
    /// arrives as [`Inbound::TraceReply`].
    pub fn send_trace_request(&self, to: NodeId) {
        let payload = codec::encode_trace_request(self.me);
        if let Ok(bytes) = encode_frame(FrameKind::TraceRequest, &payload) {
            self.pool.send_bytes(to, &bytes);
        }
    }

    /// Answers a trace request from `to` with `text`.
    pub fn send_trace_reply(&self, to: NodeId, text: &str) {
        let payload = codec::encode_trace_reply(self.me, text);
        if let Ok(bytes) = encode_frame(FrameKind::TraceReply, &payload) {
            self.pool.send_bytes(to, &bytes);
        }
    }

    /// Severs every pooled connection without stopping the fabric: the
    /// next send to each peer re-dials (under backoff). Chaos and
    /// reconnect tests use this to model connection death mid-exchange —
    /// the RIFL exactly-once guarantee must hold across it.
    pub fn drop_connections(&self) {
        self.pool.close_all();
    }

    /// Stops every fabric thread and closes every socket. Idempotent.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.pool.close_all();
        for sock in self.reader_socks.lock().expect("socks lock").drain(..) {
            let _ = sock.shutdown(std::net::Shutdown::Both);
        }
        let handles: Vec<_> = self
            .threads
            .lock()
            .expect("threads lock")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }

    fn spawn_reader(self: &Arc<Self>, stream: TcpStream) {
        if self.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Ok(clone) = stream.try_clone() {
            self.reader_socks.lock().expect("socks lock").push(clone);
        }
        let f = Arc::clone(self);
        self.track(
            thread::Builder::new()
                .name(format!("wire-read-{}", self.me))
                .spawn(move || f.reader_loop(stream))
                .expect("spawn wire reader"),
        );
    }

    fn accept_loop(self: Arc<Self>, listener: TcpListener) {
        listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        while !self.shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_nonblocking(false);
                    self.spawn_reader(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(POLL),
                Err(_) => thread::sleep(POLL),
            }
        }
    }

    fn reader_loop(self: Arc<Self>, mut stream: TcpStream) {
        let mut frames = FrameReader::new();
        let mut buf = vec![0u8; 64 * 1024];
        'conn: loop {
            let n = match stream.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => n,
            };
            frames.feed(&buf[..n]);
            loop {
                match frames.next_frame() {
                    Ok(None) => break,
                    Ok(Some(frame)) => {
                        if !self.handle_frame(frame, &stream) {
                            break 'conn;
                        }
                    }
                    Err(_) => {
                        // Framing lost: there is no way to resynchronize
                        // a byte stream whose boundaries are gone. Count
                        // and drop the connection; the pool will re-dial.
                        self.metrics.decode_errors.incr();
                        break 'conn;
                    }
                }
            }
        }
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }

    /// Processes one reassembled frame; returns `false` when the
    /// connection should close (shutdown in progress).
    fn handle_frame(&self, frame: crate::frame::Frame, stream: &TcpStream) -> bool {
        if self.shutdown.load(Ordering::SeqCst) {
            return false;
        }
        self.metrics.frames_rx.incr();
        match frame.kind {
            FrameKind::Hello => match codec::decode_hello(&frame.payload) {
                Ok(peer) => {
                    // The dialer's socket becomes our pooled route back to
                    // it: replies multiplex over the connection the
                    // requests arrive on.
                    if let Ok(write_half) = stream.try_clone() {
                        self.pool.adopt(peer, write_half);
                    }
                }
                Err(_) => self.metrics.decode_errors.incr(),
            },
            FrameKind::Msg => match codec::decode_msg(&frame.payload) {
                Ok((from, msg)) => {
                    if let Some(trace) = msg.trace_id(from, self.me) {
                        self.spans.record(
                            trace,
                            SpanKind::Deliver,
                            msg.span_label(),
                            from.0,
                            self.me.0,
                            self.clock.now().as_nanos(),
                        );
                    }
                    let _ = self.inbox_tx.send(Inbound::Msg { from, msg });
                }
                Err(_) => self.metrics.decode_errors.incr(),
            },
            FrameKind::TraceRequest => match codec::decode_trace_request(&frame.payload) {
                Ok(from) => {
                    let _ = self.inbox_tx.send(Inbound::TraceRequest { from });
                }
                Err(_) => self.metrics.decode_errors.incr(),
            },
            FrameKind::TraceReply => match codec::decode_trace_reply(&frame.payload) {
                Ok((from, text)) => {
                    let _ = self.inbox_tx.send(Inbound::TraceReply { from, text });
                }
                Err(_) => self.metrics.decode_errors.incr(),
            },
        }
        true
    }

    fn delay_loop(self: Arc<Self>, rx: Receiver<(Duration, NodeId, Msg)>) {
        let mut heap: BinaryHeap<Delayed> = BinaryHeap::new();
        let mut seq = 0u64;
        loop {
            let now = Instant::now();
            while heap.peek().is_some_and(|top| top.due <= now) {
                let d = heap.pop().expect("peeked");
                self.post_now(d.to, d.msg);
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let wait = heap
                .peek()
                .map_or(POLL.max(Duration::from_millis(10)), |t| {
                    t.due.saturating_duration_since(now)
                });
            match rx.recv_timeout(wait) {
                Ok((delay, to, msg)) => {
                    seq += 1;
                    heap.push(Delayed {
                        due: Instant::now() + delay,
                        seq,
                        to,
                        msg,
                    });
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }
}

/// The TCP [`Runtime`]: `send` frames and writes on the pooled
/// connection, `now` reads the process clock, `set_timer` bounds the node
/// loop's `recv_timeout` (the loop reads [`NetRuntime::deadline`]), and
/// `send_after` parks the message on the fabric's delay line — which is
/// where chaos plans inject message delay at the wire.
#[derive(Debug)]
pub struct NetRuntime {
    fabric: Arc<WireFabric>,
    /// Earliest armed timer deadline; the owning node loop consumes it.
    pub deadline: Option<SimTime>,
}

impl NetRuntime {
    /// A runtime for the node `fabric` belongs to.
    pub fn new(fabric: Arc<WireFabric>) -> Self {
        NetRuntime {
            fabric,
            deadline: None,
        }
    }

    /// The underlying fabric.
    pub fn fabric(&self) -> &Arc<WireFabric> {
        &self.fabric
    }
}

impl Runtime for NetRuntime {
    type Msg = Msg;

    fn node(&self) -> NodeId {
        self.fabric.me
    }

    fn now(&self) -> SimTime {
        self.fabric.now()
    }

    fn send(&self, to: NodeId, msg: Msg) {
        self.fabric.post(to, msg, SimDuration::ZERO);
    }

    fn set_timer(&mut self, after: SimDuration) {
        let at = self.fabric.now() + after;
        self.deadline = Some(match self.deadline {
            Some(cur) if cur <= at => cur,
            _ => at,
        });
    }

    fn send_after(&self, delay: SimDuration, to: NodeId, msg: Msg) {
        self.fabric.post(to, msg, delay);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loopback_pair() -> (
        Arc<WireFabric>,
        Receiver<Inbound>,
        Arc<WireFabric>,
        Receiver<Inbound>,
    ) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let registry = MetricsRegistry::new();
        let spans = SpanRecorder::default();
        let clock = Arc::new(WallClock::new());
        let book = AddressBook::new(vec![Some(addr)]);
        let (server, server_rx) = WireFabric::start(FabricConfig {
            me: NodeId(0),
            book: book.clone(),
            listener: Some(listener),
            registry: registry.clone(),
            spans: spans.clone(),
            clock: Arc::clone(&clock),
        });
        let (client, client_rx) = WireFabric::start(FabricConfig {
            me: NodeId(1),
            book,
            listener: None,
            registry,
            spans,
            clock,
        });
        (server, server_rx, client, client_rx)
    }

    #[test]
    fn request_and_reply_multiplex_over_one_dialed_connection() {
        let (server, server_rx, client, client_rx) = loopback_pair();
        client.post(NodeId(0), Msg::StatsRequest, SimDuration::ZERO);
        let got = server_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("request arrives");
        match got {
            Inbound::Msg {
                from,
                msg: Msg::StatsRequest,
            } => assert_eq!(from, NodeId(1)),
            other => panic!("unexpected inbound {other:?}"),
        }
        // The reply flows back over the connection the request arrived on
        // (the client has no listener to dial).
        server.post(
            NodeId(1),
            Msg::StatsReply {
                stats: vec![("x".into(), 7)],
            },
            SimDuration::ZERO,
        );
        match client_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("reply arrives")
        {
            Inbound::Msg {
                from,
                msg: Msg::StatsReply { stats },
            } => {
                assert_eq!(from, NodeId(0));
                assert_eq!(stats, vec![("x".to_owned(), 7)]);
            }
            other => panic!("unexpected inbound {other:?}"),
        }
        let registry = server.registry().clone();
        assert!(registry.get("wire.connects") >= 1);
        assert!(registry.get("wire.frames_tx") >= 2);
        assert!(registry.get("wire.frames_rx") >= 2);
        client.shutdown();
        server.shutdown();
    }

    #[test]
    fn trace_request_round_trips() {
        let (server, server_rx, client, client_rx) = loopback_pair();
        client.send_trace_request(NodeId(0));
        match server_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("trace request arrives")
        {
            Inbound::TraceRequest { from } => {
                assert_eq!(from, NodeId(1));
                server.send_trace_reply(from, "trace dump text");
            }
            other => panic!("unexpected inbound {other:?}"),
        }
        match client_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("trace reply arrives")
        {
            Inbound::TraceReply { from, text } => {
                assert_eq!(from, NodeId(0));
                assert_eq!(text, "trace dump text");
            }
            other => panic!("unexpected inbound {other:?}"),
        }
        client.shutdown();
        server.shutdown();
    }

    #[test]
    fn send_after_rides_the_delay_line() {
        let (server, server_rx, client, _client_rx) = loopback_pair();
        let start = Instant::now();
        client.post(NodeId(0), Msg::MapRequest, SimDuration::from_millis(40));
        match server_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("delayed message arrives")
        {
            Inbound::Msg {
                msg: Msg::MapRequest,
                ..
            } => {}
            other => panic!("unexpected inbound {other:?}"),
        }
        assert!(
            start.elapsed() >= Duration::from_millis(35),
            "delay line must actually delay"
        );
        client.shutdown();
        server.shutdown();
    }

    #[test]
    fn spans_stamp_wire_send_and_deliver() {
        let (server, server_rx, client, client_rx) = loopback_pair();
        client.post(
            NodeId(0),
            Msg::Request {
                seq: 1,
                op: rmc_core::protocol::ClientOp::Get { key: b"k".to_vec() },
            },
            SimDuration::ZERO,
        );
        let _ = server_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        server.post(
            NodeId(1),
            Msg::Response {
                seq: 1,
                reply: rmc_core::protocol::Reply::Value(None),
            },
            SimDuration::ZERO,
        );
        let _ = client_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let spans = client.spans();
        let kinds: Vec<(SpanKind, &str)> =
            spans.events().iter().map(|e| (e.kind, e.label)).collect();
        for needed in [
            (SpanKind::Send, "request"),
            (SpanKind::Deliver, "request"),
            (SpanKind::Send, "response"),
            (SpanKind::Deliver, "response"),
        ] {
            assert!(kinds.contains(&needed), "missing {needed:?}");
        }
        client.shutdown();
        server.shutdown();
    }
}
