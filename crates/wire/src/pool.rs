//! Connection pooling for the wire transport: one lazily dialed,
//! automatically re-dialed TCP connection per peer, shared by dialer and
//! acceptor sides.
//!
//! The pool is a node's view of the cluster's sockets. Sends look up (or
//! establish) the peer's connection and write the already-framed bytes;
//! a write or connect failure *drops the message* — exactly the guarantee
//! [`rmc_runtime::Runtime::send`] documents, and why the protocol carries
//! its own acks and retries. Failed dials back off exponentially per peer
//! (capped), so a dead server costs one connect attempt per backoff
//! window instead of one per message.
//!
//! Connections are bidirectional: when node A dials node B, B's acceptor
//! reads A's `Hello` frame and [`ConnectionPool::adopt`]s the same socket
//! as *its* connection to A — replies multiplex back over the socket the
//! request arrived on, which is how listener-less nodes (clients) receive
//! responses at all.

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rmc_runtime::{CounterHandle, MetricsRegistry, NodeId};

/// First-failure backoff; doubles per consecutive failure up to
/// [`BACKOFF_CAP`].
const BACKOFF_FLOOR: Duration = Duration::from_millis(10);
/// Ceiling on the per-peer reconnect backoff.
const BACKOFF_CAP: Duration = Duration::from_millis(640);
/// Bound on a single blocking dial (loopback dials resolve in
/// microseconds; a dead-but-routable address must not hang the sender).
const CONNECT_TIMEOUT: Duration = Duration::from_millis(250);

/// `NodeId -> SocketAddr` for the nodes that listen (coordinator and
/// servers); client nodes are reachable only over connections they
/// themselves dialed.
#[derive(Debug, Clone, Default)]
pub struct AddressBook {
    addrs: Vec<Option<SocketAddr>>,
}

impl AddressBook {
    /// Builds the book; index `i` is the address of `NodeId(i)` (`None`
    /// for nodes without a listener).
    pub fn new(addrs: Vec<Option<SocketAddr>>) -> Self {
        AddressBook { addrs }
    }

    /// The listen address of `node`, if it has one.
    pub fn get(&self, node: NodeId) -> Option<SocketAddr> {
        self.addrs.get(node.0).copied().flatten()
    }
}

/// The `wire.*` health counters, registered in a [`MetricsRegistry`] so
/// they surface in snapshot diffs next to the protocol's own counters.
#[derive(Debug, Clone)]
pub struct WireMetrics {
    /// First successful dial to a peer.
    pub connects: CounterHandle,
    /// Successful re-dial after a connection was lost.
    pub reconnects: CounterHandle,
    /// Frames written to a socket.
    pub frames_tx: CounterHandle,
    /// Frames read and decoded from a socket.
    pub frames_rx: CounterHandle,
    /// Frames whose payload failed to decode (counted, then skipped).
    pub decode_errors: CounterHandle,
    /// Live pooled connections (gauge; per NIC — in a registry shared by
    /// several fabrics the last writer wins).
    pub pool_size: CounterHandle,
}

impl WireMetrics {
    /// Registers the `wire.*` handles in `registry`.
    pub fn new(registry: &MetricsRegistry) -> Self {
        WireMetrics {
            connects: registry.counter("wire.connects"),
            reconnects: registry.counter("wire.reconnects"),
            frames_tx: registry.counter("wire.frames_tx"),
            frames_rx: registry.counter("wire.frames_rx"),
            decode_errors: registry.counter("wire.decode_errors"),
            pool_size: registry.gauge("wire.pool_size"),
        }
    }
}

/// Per-peer connection state.
#[derive(Debug, Default)]
struct Peer {
    stream: Option<TcpStream>,
    /// Set after the first successful dial: later successes count as
    /// reconnects.
    ever_connected: bool,
    /// Next backoff window to apply on a dial failure.
    backoff: Option<Duration>,
    /// Dials before this instant are skipped (message dropped).
    retry_at: Option<Instant>,
}

/// One node's pooled connections, keyed by peer [`NodeId`].
pub struct ConnectionPool {
    me: NodeId,
    book: AddressBook,
    peers: Mutex<HashMap<usize, Peer>>,
    metrics: WireMetrics,
    /// Called with a clone of every stream this pool dials, so the owner
    /// can spawn a reader for the responses that will flow back.
    on_dialed: Box<dyn Fn(TcpStream) + Send + Sync>,
    /// Bytes written first on every freshly dialed connection (the
    /// `Hello` frame naming this node).
    hello: Vec<u8>,
}

impl std::fmt::Debug for ConnectionPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnectionPool")
            .field("me", &self.me)
            .field("book", &self.book)
            .finish_non_exhaustive()
    }
}

impl ConnectionPool {
    /// Creates the pool. `hello` is written first on every dialed
    /// connection; `on_dialed` receives a read-clone of each dialed
    /// stream.
    pub fn new(
        me: NodeId,
        book: AddressBook,
        metrics: WireMetrics,
        hello: Vec<u8>,
        on_dialed: Box<dyn Fn(TcpStream) + Send + Sync>,
    ) -> Self {
        ConnectionPool {
            me,
            book,
            peers: Mutex::new(HashMap::new()),
            metrics,
            on_dialed,
            hello,
        }
    }

    /// The node this pool belongs to.
    pub fn me(&self) -> NodeId {
        self.me
    }

    fn update_pool_size(&self, peers: &HashMap<usize, Peer>) {
        let live = peers.values().filter(|p| p.stream.is_some()).count();
        self.metrics.pool_size.set(live as u64);
    }

    /// Registers an *accepted* connection as the pooled route to `peer`
    /// (called by the acceptor after reading the peer's `Hello`). A
    /// reconnecting peer replaces any previous socket, which unblocks the
    /// old reader with an EOF.
    pub fn adopt(&self, peer: NodeId, stream: TcpStream) {
        let mut peers = self.peers.lock().expect("pool lock");
        let slot = peers.entry(peer.0).or_default();
        slot.stream = Some(stream);
        slot.retry_at = None;
        slot.backoff = None;
        self.update_pool_size(&peers);
    }

    /// Drops the pooled connection to `peer` (e.g. its reader saw EOF).
    pub fn evict(&self, peer: NodeId) {
        let mut peers = self.peers.lock().expect("pool lock");
        if let Some(slot) = peers.get_mut(&peer.0) {
            slot.stream = None;
        }
        self.update_pool_size(&peers);
    }

    /// Sends one already-framed message to `peer`: writes on the pooled
    /// connection, dialing (or re-dialing, under backoff) as needed.
    /// Returns whether the bytes reached a socket buffer — `false` means
    /// the message was dropped, which the protocol's retries absorb.
    pub fn send_bytes(&self, peer: NodeId, frame: &[u8]) -> bool {
        let mut peers = self.peers.lock().expect("pool lock");
        let slot = peers.entry(peer.0).or_default();

        // Fast path: an established connection. A failed write means the
        // connection died; fall through to a (possibly backed-off) redial.
        if let Some(stream) = slot.stream.as_mut() {
            if stream.write_all(frame).is_ok() {
                self.metrics.frames_tx.incr();
                return true;
            }
            slot.stream = None;
        }

        let Some(addr) = self.book.get(peer) else {
            // No listener to dial (a client peer): deliverable only over a
            // connection that peer dials to us.
            self.update_pool_size(&peers);
            return false;
        };
        if slot.retry_at.is_some_and(|at| Instant::now() < at) {
            self.update_pool_size(&peers);
            return false; // still backing off: drop
        }
        match TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                if slot.ever_connected {
                    self.metrics.reconnects.incr();
                } else {
                    self.metrics.connects.incr();
                }
                slot.ever_connected = true;
                slot.retry_at = None;
                slot.backoff = None;
                if let Ok(read_half) = stream.try_clone() {
                    (self.on_dialed)(read_half);
                }
                slot.stream = Some(stream);
                let ok = {
                    let stream = slot.stream.as_mut().expect("just stored");
                    stream.write_all(&self.hello).is_ok() && stream.write_all(frame).is_ok()
                };
                if ok {
                    self.metrics.frames_tx.add(2); // hello + message
                } else {
                    slot.stream = None;
                }
                self.update_pool_size(&peers);
                ok
            }
            Err(_) => {
                let backoff = slot.backoff.unwrap_or(BACKOFF_FLOOR);
                slot.retry_at = Some(Instant::now() + backoff);
                slot.backoff = Some((backoff * 2).min(BACKOFF_CAP));
                self.update_pool_size(&peers);
                false
            }
        }
    }

    /// Shuts down every pooled socket (both directions), unblocking their
    /// readers, and empties the pool.
    pub fn close_all(&self) {
        let mut peers = self.peers.lock().expect("pool lock");
        for slot in peers.values_mut() {
            if let Some(stream) = slot.stream.take() {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        }
        self.update_pool_size(&peers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;

    fn pool_to(addr: SocketAddr) -> ConnectionPool {
        let registry = MetricsRegistry::new();
        ConnectionPool::new(
            NodeId(9),
            AddressBook::new(vec![Some(addr)]),
            WireMetrics::new(&registry),
            b"HELLO".to_vec(),
            Box::new(|_| {}),
        )
    }

    #[test]
    fn dial_write_and_reconnect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let pool = pool_to(addr);
        assert!(pool.send_bytes(NodeId(0), b"one"));
        let (mut conn, _) = listener.accept().unwrap();
        let mut buf = [0u8; 8];
        conn.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"HELLOone");
        assert_eq!(pool.metrics.connects.get(), 1);
        assert_eq!(pool.metrics.pool_size.get(), 1);

        // Kill the server side; the pool re-dials on the next send.
        drop(conn);
        let mut delivered = false;
        for _ in 0..50 {
            // The first write after the peer closes may succeed into the
            // socket buffer (a genuinely dropped message); keep sending
            // until the failure is observed and a redial happens.
            if pool.metrics.reconnects.get() > 0 {
                delivered = true;
                break;
            }
            pool.send_bytes(NodeId(0), b"two");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(delivered, "pool never re-dialed after peer loss");
        let (mut conn, _) = listener.accept().unwrap();
        let mut buf = [0u8; 5];
        conn.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"HELLO");
    }

    #[test]
    fn dead_peer_backs_off_instead_of_hammering() {
        // Reserve a port and close it so dials fail fast.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let pool = pool_to(addr);
        let start = Instant::now();
        let mut attempts = 0;
        while start.elapsed() < Duration::from_millis(60) {
            pool.send_bytes(NodeId(0), b"x");
            attempts += 1;
        }
        assert!(attempts > 10, "sends should not block");
        assert_eq!(pool.metrics.connects.get(), 0);
        assert_eq!(pool.metrics.frames_tx.get(), 0);
    }

    #[test]
    fn peer_without_address_drops_silently() {
        let pool = pool_to("127.0.0.1:1".parse().unwrap());
        assert!(!pool.send_bytes(NodeId(5), b"x"));
        assert_eq!(pool.metrics.frames_tx.get(), 0);
    }
}
