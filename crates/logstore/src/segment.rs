//! Fixed-size append-only segments.
//!
//! A master's log is a chain of segments (8 MB in RAMCloud; configurable
//! here so tests can use tiny ones). A segment only ever grows at the tail;
//! once closed it is immutable until the cleaner frees it. Segments are also
//! the unit of replication: backups receive and store whole segments.
//!
//! Segment bytes live in a pinned, refcounted [`SegmentBuf`]: a
//! fixed-capacity allocation that never moves, with the committed length
//! published atomically. That is what lets the lock-free read path hand out
//! zero-copy [`ValueView`](crate::ValueView)s into live segments — a view
//! clones the buffer's `Arc` and the bytes stay valid (and immutable) even
//! after the cleaner retires the segment, until the view drops.

use bytes::Bytes;

use crate::entry::{LogEntry, ParseEntryError};
use crate::segbuf::SegmentBuf;
use crate::types::SegmentId;
use std::sync::Arc;

/// The segment size hard-coded in RAMCloud and used throughout the paper.
pub const DEFAULT_SEGMENT_BYTES: usize = 8 << 20;

/// An append-only byte region holding serialized [`LogEntry`] records.
#[derive(Debug)]
pub struct Segment {
    id: SegmentId,
    buf: Arc<SegmentBuf>,
    closed: bool,
}

impl Clone for Segment {
    /// Clones share the underlying buffer (cheap: one refcount bump). Only
    /// closed segments are ever cloned — the cleaner snapshots its victims —
    /// so sharing is indistinguishable from a deep copy.
    fn clone(&self) -> Self {
        debug_assert!(self.closed, "cloning an open segment shares its tail");
        Segment {
            id: self.id,
            buf: Arc::clone(&self.buf),
            closed: self.closed,
        }
    }
}

/// Error returned by [`Segment::append`] when the entry does not fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentFullError {
    /// Bytes still free in the segment.
    pub free: usize,
    /// Bytes the entry needed.
    pub needed: usize,
}

impl std::fmt::Display for SegmentFullError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "segment full: {} bytes free, {} needed",
            self.free, self.needed
        )
    }
}

impl std::error::Error for SegmentFullError {}

impl Segment {
    /// Creates an empty open segment.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` cannot hold even a minimal entry header.
    pub fn new(id: SegmentId, capacity: usize) -> Self {
        assert!(
            capacity >= crate::entry::HEADER_BYTES,
            "segment capacity {capacity} smaller than an entry header"
        );
        Segment {
            id,
            buf: Arc::new(SegmentBuf::new(capacity)),
            closed: false,
        }
    }

    /// The segment's id.
    pub fn id(&self) -> SegmentId {
        self.id
    }

    /// Bytes appended so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.buf.len() == 0
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Bytes still free.
    pub fn free(&self) -> usize {
        self.buf.capacity() - self.buf.len()
    }

    /// True once [`Segment::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Marks the segment immutable (it became a non-head segment).
    pub fn close(&mut self) {
        self.closed = true;
    }

    /// The shared buffer, for publication in the reader-side segment map
    /// and for limbo refcount checks.
    pub(crate) fn shared_buf(&self) -> &Arc<SegmentBuf> {
        &self.buf
    }

    /// Appends an entry, returning its byte offset.
    ///
    /// # Errors
    ///
    /// Returns [`SegmentFullError`] when the serialized entry does not fit.
    ///
    /// # Panics
    ///
    /// Panics if the segment is closed — appending to a closed segment is a
    /// logic error in the caller, never a runtime condition.
    pub fn append(&mut self, entry: &LogEntry) -> Result<u32, SegmentFullError> {
        assert!(!self.closed, "append to closed segment {}", self.id);
        let needed = entry.serialized_len();
        if needed > self.free() {
            return Err(SegmentFullError {
                free: self.free(),
                needed,
            });
        }
        let mut bytes = Vec::with_capacity(needed);
        entry.serialize_into(&mut bytes);
        Ok(self.buf.append(&bytes) as u32)
    }

    /// Appends pre-serialized entry bytes (a straight memcpy), returning the
    /// byte offset. Used by the cleaner to relocate entries into survivor
    /// segments without re-serializing; `bytes` must be exactly one valid
    /// serialized entry, which the caller guarantees by copying it out of an
    /// existing segment.
    pub(crate) fn append_raw(&mut self, bytes: &[u8]) -> Result<u32, SegmentFullError> {
        assert!(!self.closed, "append to closed segment {}", self.id);
        if bytes.len() > self.free() {
            return Err(SegmentFullError {
                free: self.free(),
                needed: bytes.len(),
            });
        }
        Ok(self.buf.append(bytes) as u32)
    }

    /// Reads the entry at `offset`.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseEntryError`] if `offset` does not point at a valid
    /// entry (truncated, corrupt, or out of range).
    pub fn read_at(&self, offset: u32) -> Result<LogEntry, ParseEntryError> {
        let committed = self.buf.committed();
        let start = offset as usize;
        if start >= committed.len() {
            return Err(ParseEntryError::Truncated);
        }
        LogEntry::parse(&committed[start..]).map(|(e, _)| e)
    }

    /// Iterates over `(offset, entry)` pairs from the beginning.
    pub fn iter(&self) -> SegmentIter<'_> {
        SegmentIter {
            segment: self,
            offset: 0,
        }
    }

    /// The raw serialized bytes (what a backup stores / recovery replays).
    pub fn as_bytes(&self) -> &[u8] {
        self.buf.committed()
    }

    /// Reconstructs a closed segment from raw bytes, validating every entry.
    ///
    /// Used on the recovery path: a recovery master receives segment bytes
    /// from a backup and replays them.
    ///
    /// # Errors
    ///
    /// Returns the first parse error encountered.
    pub fn from_bytes(
        id: SegmentId,
        capacity: usize,
        bytes: Bytes,
    ) -> Result<Self, ParseEntryError> {
        // Validate structure eagerly so corruption is caught at transfer
        // time rather than mid-replay.
        let mut off = 0usize;
        while off < bytes.len() {
            let (_, len) = LogEntry::parse(&bytes[off..])?;
            off += len;
        }
        let mut seg = Segment::new(id, capacity.max(bytes.len()));
        seg.buf.append(&bytes);
        seg.closed = true;
        Ok(seg)
    }
}

/// Iterator over the entries of a [`Segment`].
#[derive(Debug)]
pub struct SegmentIter<'a> {
    segment: &'a Segment,
    offset: usize,
}

impl Iterator for SegmentIter<'_> {
    type Item = (u32, LogEntry);

    fn next(&mut self) -> Option<Self::Item> {
        let committed = self.segment.buf.committed();
        if self.offset >= committed.len() {
            return None;
        }
        match LogEntry::parse(&committed[self.offset..]) {
            Ok((entry, len)) => {
                let off = self.offset as u32;
                self.offset += len;
                Some((off, entry))
            }
            // A segment is only ever written through `append`, so a parse
            // failure means memory corruption; surface it loudly in debug
            // builds and end iteration in release.
            Err(e) => {
                debug_assert!(false, "corrupt segment {}: {e}", self.segment.id);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::ObjectRecord;
    use crate::types::{TableId, Version};

    fn obj(key: &str, val_len: usize, version: u64) -> LogEntry {
        LogEntry::Object(ObjectRecord {
            table: TableId(1),
            key: Bytes::copy_from_slice(key.as_bytes()),
            value: Bytes::from(vec![7u8; val_len]),
            version: Version(version),
            completion: None,
        })
    }

    #[test]
    fn append_then_read() {
        let mut seg = Segment::new(SegmentId(0), 4096);
        let e = obj("alpha", 64, 1);
        let off = seg.append(&e).unwrap();
        assert_eq!(seg.read_at(off).unwrap(), e);
    }

    #[test]
    fn multiple_entries_iterate_in_order() {
        let mut seg = Segment::new(SegmentId(0), 4096);
        let entries: Vec<LogEntry> = (0..5).map(|i| obj(&format!("k{i}"), 10, i + 1)).collect();
        for e in &entries {
            seg.append(e).unwrap();
        }
        let walked: Vec<LogEntry> = seg.iter().map(|(_, e)| e).collect();
        assert_eq!(walked, entries);
    }

    #[test]
    fn offsets_from_iteration_readable() {
        let mut seg = Segment::new(SegmentId(0), 4096);
        for i in 0..4 {
            seg.append(&obj(&format!("key{i}"), 20, 1)).unwrap();
        }
        for (off, e) in seg.iter() {
            assert_eq!(seg.read_at(off).unwrap(), e);
        }
    }

    #[test]
    fn full_segment_rejects_append() {
        let mut seg = Segment::new(SegmentId(0), 128);
        seg.append(&obj("a", 50, 1)).unwrap();
        let err = seg.append(&obj("b", 50, 1)).unwrap_err();
        assert!(err.needed > err.free);
    }

    #[test]
    #[should_panic(expected = "append to closed segment")]
    fn closed_segment_append_panics() {
        let mut seg = Segment::new(SegmentId(0), 4096);
        seg.close();
        let _ = seg.append(&obj("a", 1, 1));
    }

    #[test]
    fn roundtrip_through_bytes() {
        let mut seg = Segment::new(SegmentId(3), 4096);
        for i in 0..3 {
            seg.append(&obj(&format!("k{i}"), 16, 1)).unwrap();
        }
        seg.close();
        let restored =
            Segment::from_bytes(SegmentId(3), 4096, Bytes::copy_from_slice(seg.as_bytes()))
                .unwrap();
        assert!(restored.is_closed());
        assert_eq!(
            restored.iter().map(|(_, e)| e).collect::<Vec<_>>(),
            seg.iter().map(|(_, e)| e).collect::<Vec<_>>()
        );
    }

    #[test]
    fn from_bytes_rejects_corruption() {
        let mut seg = Segment::new(SegmentId(0), 4096);
        seg.append(&obj("a", 32, 1)).unwrap();
        let mut raw = seg.as_bytes().to_vec();
        raw[30] ^= 0x1;
        assert!(Segment::from_bytes(SegmentId(0), 4096, Bytes::from(raw)).is_err());
    }

    #[test]
    fn read_past_end_is_error() {
        let seg = Segment::new(SegmentId(0), 128);
        assert!(seg.read_at(64).is_err());
    }

    #[test]
    fn free_accounting() {
        let mut seg = Segment::new(SegmentId(0), 1000);
        let e = obj("k", 100, 1);
        let sz = e.serialized_len();
        seg.append(&e).unwrap();
        assert_eq!(seg.free(), 1000 - sz);
        assert_eq!(seg.len(), sz);
    }

    #[test]
    fn clone_of_closed_segment_shares_bytes() {
        let mut seg = Segment::new(SegmentId(1), 4096);
        seg.append(&obj("k", 32, 1)).unwrap();
        seg.close();
        let snap = seg.clone();
        assert_eq!(snap.as_bytes(), seg.as_bytes());
        assert_eq!(snap.as_bytes().as_ptr(), seg.as_bytes().as_ptr());
    }
}
