//! Epoch-based reclamation for segments retired by the concurrent cleaner.
//!
//! The standalone server's read fast path calls [`crate::Store::read`]
//! through `&self` — no lock is taken inside the store, and the cleaner may
//! be swinging index entries and retiring victim segments on another
//! thread. Freed segment memory therefore cannot be recycled the moment the
//! cleaner is done with it: a reader that resolved a [`crate::LogPosition`]
//! just before the swing may still be parsing bytes out of the victim.
//!
//! The classic answer (RAMCloud uses the same scheme for its hash-table and
//! log teardown) is *epochs*: readers pin the current epoch for the duration
//! of one lookup, the cleaner moves retired segments to a limbo list stamped
//! with the epoch at retirement, and limbo memory is only reclaimed once the
//! global epoch has advanced **two** steps past the stamp — which can only
//! happen after every reader that could have seen the old position has
//! unpinned.
//!
//! The tracker is two counters ("banks") indexed by epoch parity plus the
//! global epoch. Pinning increments the bank of the current epoch;
//! advancing from epoch `e` to `e + 1` requires the *other* bank (which
//! holds only readers from epoch `e − 1`) to be empty. Hence once the
//! global epoch reaches `r + 2`, no reader pinned at epoch ≤ `r` remains,
//! and garbage retired at `r` is safe — see [`EpochTracker::safe_epoch`].
//!
//! Everything is relaxed-to-acquire atomics: pinning a read costs two
//! uncontended atomic RMWs and no lock, preserving the lock-free read path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Tracks the global reclamation epoch and the readers pinned in each
/// epoch-parity bank.
///
/// The counter starts at 2, not 0: `safe_epoch()` is `current − 2`
/// saturating, and starting higher guarantees the saturated value can never
/// equal a retirement stamp before two genuine advances have happened.
///
/// # Examples
///
/// ```
/// use rmc_logstore::EpochTracker;
///
/// let epochs = EpochTracker::new();
/// let retired_at = epochs.current();
/// let guard = epochs.pin();
/// // A reader is pinned: the epoch cannot advance twice, so garbage
/// // retired now is not yet safe.
/// assert!(epochs.try_advance());
/// assert!(!epochs.try_advance());
/// assert!(epochs.safe_epoch() < retired_at);
/// drop(guard);
/// assert!(epochs.try_advance());
/// assert!(epochs.safe_epoch() >= retired_at);
/// ```
#[derive(Debug)]
pub struct EpochTracker {
    /// The global epoch, monotonically increasing.
    global: AtomicU64,
    /// Pinned-reader counts, indexed by epoch parity.
    active: [AtomicU64; 2],
}

impl Default for EpochTracker {
    fn default() -> Self {
        EpochTracker {
            global: AtomicU64::new(2),
            active: [AtomicU64::new(0), AtomicU64::new(0)],
        }
    }
}

impl EpochTracker {
    /// Creates a tracker with no pinned readers.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current global epoch.
    pub fn current(&self) -> u64 {
        self.global.load(Ordering::Acquire)
    }

    /// The newest epoch whose retired garbage is certainly unreachable:
    /// `current − 2` (saturating). Garbage retired at epoch `r` may be
    /// reclaimed once `safe_epoch() ≥ r`.
    pub fn safe_epoch(&self) -> u64 {
        self.current().saturating_sub(2)
    }

    /// Pins the current epoch for the lifetime of the returned guard.
    /// Lock-free; called on every read.
    pub fn pin(&self) -> EpochGuard<'_> {
        loop {
            let e = self.global.load(Ordering::Acquire);
            let bank = (e & 1) as usize;
            self.active[bank].fetch_add(1, Ordering::AcqRel);
            // If the epoch advanced between the load and the increment we
            // may have pinned the wrong bank; undo and retry. Advancing is
            // rare (cleaner passes), so this loop almost never iterates.
            if self.global.load(Ordering::Acquire) == e {
                return EpochGuard {
                    tracker: self,
                    bank,
                };
            }
            self.active[bank].fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Attempts to advance the global epoch by one. Fails (returning
    /// `false`) while readers pinned two epochs ago are still active.
    pub fn try_advance(&self) -> bool {
        let e = self.global.load(Ordering::Acquire);
        // New readers of epoch e+1 will pin bank (e+1)&1; it must hold no
        // stragglers from epoch e−1 or their pins would be misattributed.
        let next_bank = ((e + 1) & 1) as usize;
        if self.active[next_bank].load(Ordering::Acquire) != 0 {
            return false;
        }
        self.global
            .compare_exchange(e, e + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Readers currently pinned (both banks).
    pub fn pinned_readers(&self) -> u64 {
        self.active[0].load(Ordering::Acquire) + self.active[1].load(Ordering::Acquire)
    }
}

/// RAII pin on an epoch; dropping it unpins. See [`EpochTracker::pin`].
#[derive(Debug)]
pub struct EpochGuard<'a> {
    tracker: &'a EpochTracker,
    bank: usize,
}

impl Drop for EpochGuard<'_> {
    fn drop(&mut self) {
        self.tracker.active[self.bank].fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn advances_freely_with_no_readers() {
        let t = EpochTracker::new();
        let start = t.current();
        for step in 1..=10 {
            assert!(t.try_advance());
            assert_eq!(t.current(), start + step);
        }
        assert_eq!(t.safe_epoch(), start + 8);
    }

    #[test]
    fn pinned_reader_blocks_the_second_advance() {
        let t = EpochTracker::new();
        let retired_at = t.current(); // epoch 2, bank 0
        let g = t.pin();
        assert!(t.try_advance(), "the odd bank is empty: 2 -> 3 may proceed");
        assert!(
            !t.try_advance(),
            "advancing 3 -> 4 needs bank 0 empty, but a reader is pinned"
        );
        assert!(t.safe_epoch() < retired_at, "garbage not yet safe");
        drop(g);
        assert!(t.try_advance());
        // Garbage retired before the pin is only now safe.
        assert_eq!(t.safe_epoch(), retired_at);
    }

    #[test]
    fn safe_epoch_trails_by_two() {
        let t = EpochTracker::new();
        assert_eq!(t.current(), 2);
        assert_eq!(t.safe_epoch(), 0, "below every possible retirement stamp");
        t.try_advance();
        t.try_advance();
        t.try_advance();
        assert_eq!(t.current(), 5);
        assert_eq!(t.safe_epoch(), 3);
    }

    #[test]
    fn pin_counts_are_balanced() {
        let t = EpochTracker::new();
        {
            let _a = t.pin();
            let _b = t.pin();
            assert_eq!(t.pinned_readers(), 2);
        }
        assert_eq!(t.pinned_readers(), 0);
    }

    #[test]
    fn concurrent_pin_unpin_with_advances() {
        let t = Arc::new(EpochTracker::new());
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        let _g = t.pin();
                    }
                })
            })
            .collect();
        let start = t.current();
        let mut advances = 0u64;
        for _ in 0..10_000 {
            if t.try_advance() {
                advances += 1;
            }
        }
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(t.pinned_readers(), 0, "all pins must be released");
        assert_eq!(t.current(), start + advances);
        // With every reader gone the epoch advances freely again.
        assert!(t.try_advance());
    }
}
