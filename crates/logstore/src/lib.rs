//! # rmc-logstore — RAMCloud-style log-structured memory
//!
//! The storage engine at the heart of the reproduction of *"Characterizing
//! Performance and Energy-Efficiency of the RAMCloud Storage System"*
//! (ICDCS 2017). A master keeps **all** data in an append-only log of 8 MB
//! [`Segment`]s indexed by a [`HashTable`]; overwrites append new versions,
//! deletes append tombstones, and a cost-benefit [cleaner]
//! reclaims dead space. This is a *real* data plane — actual bytes, actual
//! checksums, actual index — which the simulated cluster (`rmc-core`) and
//! the threaded single-node store (`rmc-standalone`) both build on.
//!
//! [cleaner]: crate::cleaner
//!
//! ## Quick start
//!
//! ```
//! use rmc_logstore::{LogConfig, Store, TableId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut store = Store::new(LogConfig::default());
//! let out = store.write(TableId(1), b"user:42", b"{\"name\":\"kim\"}")?;
//! assert_eq!(out.version, rmc_logstore::Version::FIRST);
//! let obj = store.read(TableId(1), b"user:42").expect("just wrote it");
//! assert_eq!(&obj.value[..], b"{\"name\":\"kim\"}");
//! store.delete(TableId(1), b"user:42")?;
//! assert!(store.read(TableId(1), b"user:42").is_none());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cleaner;
mod entry;
pub mod epoch;
mod hashtable;
mod log;
mod segbuf;
mod segment;
mod store;
mod types;
mod view;

pub use cleaner::{
    CleanKind, CleanOutcome, CleanPlan, CleanerConfig, CleanerConfigError, PreparedClean,
};
pub use entry::{
    crc32c, CompletionId, LogEntry, ObjectRecord, ParseEntryError, TombstoneRecord, HEADER_BYTES,
    MAX_KEY_BYTES, MAX_VALUE_BYTES,
};
pub use epoch::{EpochGuard, EpochTracker};
pub use hashtable::{Candidates, HashTable, ProbeStats};
pub use log::{AppendOutcome, Log, LogConfig, LogFullError};
pub use segment::{Segment, SegmentFullError, SegmentIter, DEFAULT_SEGMENT_BYTES};
pub use store::{Store, StoreError, StoreStats, WriteOutcome};
pub use types::{key_hash, KeyHash, LogPosition, SegmentId, TableId, Version};
pub use view::{ObjectView, ReadContended, ReadCounters, ReadHandle, ValueView};
