//! The object store: a [`Log`] plus a [`HashTable`] index.
//!
//! This is the storage engine of a RAMCloud master. All data lives in the
//! log; the hash table maps each live key to its current log position.
//! Overwrites append a new version, deletes append a tombstone, and the
//! cleaner (see [`crate::cleaner`]) reclaims dead space.

use bytes::Bytes;

use std::collections::BTreeMap;
use std::ops::AddAssign;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::cleaner::CleanerConfig;
use crate::entry::{
    CompletionId, LogEntry, ObjectRecord, TombstoneRecord, MAX_KEY_BYTES, MAX_VALUE_BYTES,
};
use crate::epoch::EpochTracker;
use crate::hashtable::HashTable;
use crate::log::{Log, LogConfig};
use crate::types::{key_hash, LogPosition, SegmentId, TableId, Version};
use crate::view::{ObjectView, ReadCounters, ReadHandle, ValueView};

/// Errors returned by store mutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// The log is full and cleaning could not reclaim enough space.
    OutOfMemory,
    /// The key exceeds [`MAX_KEY_BYTES`].
    KeyTooLarge,
    /// The value exceeds [`MAX_VALUE_BYTES`].
    ValueTooLarge,
    /// A scan was requested but the store has no ordered index
    /// (`LogConfig::ordered_index` was false).
    ScansDisabled,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::OutOfMemory => write!(f, "out of log memory"),
            StoreError::KeyTooLarge => write!(f, "key exceeds {MAX_KEY_BYTES} bytes"),
            StoreError::ValueTooLarge => write!(f, "value exceeds {MAX_VALUE_BYTES} bytes"),
            StoreError::ScansDisabled => {
                write!(f, "scans need LogConfig::ordered_index = true")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Result of a successful write or delete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Version assigned to the new object (or carried by the tombstone).
    pub version: Version,
    /// Where the record landed in the log.
    pub position: LogPosition,
    /// Segment sealed by this append, if the head rolled.
    pub sealed: Option<SegmentId>,
}

/// Running counters exposed for tests and benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Successful object writes (inserts + overwrites).
    pub writes: u64,
    /// Overwrites among the writes.
    pub overwrites: u64,
    /// Successful deletes.
    pub deletes: u64,
    /// Read hits.
    pub read_hits: u64,
    /// Read misses.
    pub read_misses: u64,
    /// Reads served entirely on the lock-free path.
    pub read_lockfree: u64,
    /// Reads that hit contention and fell back to the locked path.
    pub read_fallback_locked: u64,
    /// Zero-copy value views alive at snapshot time (a gauge).
    pub value_views_live: u64,
    /// Limbo segments whose epoch is already safe but whose bytes are still
    /// pinned by outstanding value views (a gauge).
    pub limbo_held_by_views: u64,
    /// Cleaner passes executed.
    pub cleanings: u64,
    /// Live bytes relocated by the cleaner.
    pub bytes_relocated: u64,
    /// Segments freed by the cleaner.
    pub segments_freed: u64,
    /// Tombstones dropped by the cleaner.
    pub tombstones_dropped: u64,
    /// Victims processed by the in-memory compaction level.
    pub segments_compacted: u64,
    /// Bytes of survivor segments installed by the concurrent cleaner.
    pub survivor_bytes: u64,
    /// Hash-table operations (insert/update/remove) since creation.
    pub index_probes: u64,
    /// Extra probe steps those operations took beyond their home slot.
    pub index_probe_steps: u64,
    /// Hash-table rehashes (growth or in-place tombstone purges).
    pub index_resizes: u64,
}

impl AddAssign for StoreStats {
    fn add_assign(&mut self, other: StoreStats) {
        // Exhaustive destructuring (no `..`): adding a counter to StoreStats
        // without aggregating it here is a compile error, so new counters
        // can never silently vanish from merged totals.
        let StoreStats {
            writes,
            overwrites,
            deletes,
            read_hits,
            read_misses,
            read_lockfree,
            read_fallback_locked,
            value_views_live,
            limbo_held_by_views,
            cleanings,
            bytes_relocated,
            segments_freed,
            tombstones_dropped,
            segments_compacted,
            survivor_bytes,
            index_probes,
            index_probe_steps,
            index_resizes,
        } = other;
        self.writes += writes;
        self.overwrites += overwrites;
        self.deletes += deletes;
        self.read_hits += read_hits;
        self.read_misses += read_misses;
        self.read_lockfree += read_lockfree;
        self.read_fallback_locked += read_fallback_locked;
        self.value_views_live += value_views_live;
        self.limbo_held_by_views += limbo_held_by_views;
        self.cleanings += cleanings;
        self.bytes_relocated += bytes_relocated;
        self.segments_freed += segments_freed;
        self.tombstones_dropped += tombstones_dropped;
        self.segments_compacted += segments_compacted;
        self.survivor_bytes += survivor_bytes;
        self.index_probes += index_probes;
        self.index_probe_steps += index_probe_steps;
        self.index_resizes += index_resizes;
    }
}

impl StoreStats {
    /// Merges `other` into `self` (alias of `+=` for call sites that prefer
    /// a named method).
    pub fn merge(&mut self, other: &StoreStats) {
        *self += *other;
    }
}

/// Internal mutable counters. Mutation-path counters are plain `u64`s
/// guarded by `&mut self`; read-path counters live in the shared
/// [`ReadCounters`] so the locked and lock-free paths tally into one place.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) writes: u64,
    pub(crate) overwrites: u64,
    pub(crate) deletes: u64,
    pub(crate) cleanings: u64,
    pub(crate) bytes_relocated: u64,
    pub(crate) segments_freed: u64,
    pub(crate) tombstones_dropped: u64,
    pub(crate) segments_compacted: u64,
    pub(crate) survivor_bytes: u64,
}

impl Counters {
    fn snapshot(&self) -> StoreStats {
        StoreStats {
            writes: self.writes,
            overwrites: self.overwrites,
            deletes: self.deletes,
            cleanings: self.cleanings,
            bytes_relocated: self.bytes_relocated,
            segments_freed: self.segments_freed,
            tombstones_dropped: self.tombstones_dropped,
            segments_compacted: self.segments_compacted,
            survivor_bytes: self.survivor_bytes,
            // Read-path and index fields are filled in by `Store::stats`
            // from the shared read counters / the hash table.
            ..StoreStats::default()
        }
    }
}

/// A log-structured key-value store (one master's storage engine).
///
/// # Examples
///
/// ```
/// use rmc_logstore::{Store, LogConfig, TableId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut store = Store::new(LogConfig::default());
/// store.write(TableId(1), b"user1", b"alice")?;
/// let obj = store.read(TableId(1), b"user1").expect("present");
/// assert_eq!(&obj.value[..], b"alice");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Store {
    pub(crate) log: Log,
    pub(crate) index: HashTable,
    pub(crate) cleaner: CleanerConfig,
    pub(crate) stats: Counters,
    /// Ordered key directory for range scans; present only when
    /// `LogConfig::ordered_index` is set.
    pub(crate) ordered: Option<BTreeMap<(u64, Vec<u8>), ()>>,
    /// Per-client last completed write (RIFL-style duplicate suppression):
    /// client id → (seq, version assigned). Rebuilt from the log on replay.
    pub(crate) completions: BTreeMap<u64, (u64, Version)>,
    /// Version floor for deleted keys, by key hash: a key re-created after a
    /// delete must continue its version chain, not restart at
    /// [`Version::FIRST`] — otherwise a tombstone from the first life would
    /// kill the second life when recovery replays segments out of order.
    /// Entries are dropped again once the key is re-written above the floor;
    /// hash collisions only ever raise a version, never lower one, so they
    /// are harmless.
    pub(crate) dead_versions: BTreeMap<u64, Version>,
    /// Reclamation epochs protecting lock-free readers from the concurrent
    /// cleaner (see [`crate::epoch`]). Behind an `Arc` so observers (tests,
    /// metrics threads) can pin or inspect epochs without borrowing the
    /// whole store.
    pub(crate) epoch: std::sync::Arc<EpochTracker>,
    /// Read-path counters, shared with every [`ReadHandle`] cloned from
    /// this store so both read paths tally into one place.
    pub(crate) read_counters: Arc<ReadCounters>,
    /// `Log::total_appended_bytes` at the end of the last cleaning pass;
    /// the balancer's write-rate signal.
    pub(crate) last_clean_appended: u64,
}

impl Store {
    /// Creates a store with the default cleaner policy.
    pub fn new(config: LogConfig) -> Self {
        Store::with_cleaner(config, CleanerConfig::default())
    }

    /// Creates a store with an explicit cleaner policy.
    ///
    /// # Panics
    ///
    /// Panics when `cleaner` fails [`CleanerConfig::validate`] against
    /// `config.max_segments` — a degenerate cleaner config would spin
    /// forever at runtime, so it is rejected at construction.
    pub fn with_cleaner(config: LogConfig, cleaner: CleanerConfig) -> Self {
        if let Err(e) = cleaner.validate(config.max_segments) {
            panic!("invalid cleaner config: {e}");
        }
        let ordered = config.ordered_index.then(BTreeMap::new);
        Store {
            log: Log::new(config),
            index: HashTable::new(),
            cleaner,
            stats: Counters::default(),
            ordered,
            completions: BTreeMap::new(),
            dead_versions: BTreeMap::new(),
            epoch: std::sync::Arc::new(EpochTracker::new()),
            read_counters: Arc::new(ReadCounters::default()),
            last_clean_appended: 0,
        }
    }

    /// The underlying log (read-only).
    pub fn log(&self) -> &Log {
        &self.log
    }

    /// Counters.
    pub fn stats(&self) -> StoreStats {
        let mut s = self.stats.snapshot();
        let p = self.index.probe_stats();
        s.index_probes = p.probes;
        s.index_probe_steps = p.probe_steps;
        s.index_resizes = p.resizes;
        s.read_hits = self.read_counters.hits();
        s.read_misses = self.read_counters.misses();
        s.read_lockfree = self.read_counters.lockfree();
        s.read_fallback_locked = self.read_counters.fallback_locked();
        s.value_views_live = self.read_counters.value_views_live();
        s.limbo_held_by_views = self.log.limbo_held_by_views(self.epoch.safe_epoch()) as u64;
        s
    }

    /// A lock-free reader bound to this store's index, segment map, epochs,
    /// and counters. Cloneable into any thread; see [`ReadHandle`].
    pub fn read_handle(&self) -> ReadHandle {
        ReadHandle::new(
            self.index.shared(),
            self.log.segment_map(),
            Arc::clone(&self.epoch),
            Arc::clone(&self.read_counters),
        )
    }

    /// The shared read-path counters (also reachable via
    /// [`ReadHandle::counters`]).
    pub fn read_counters(&self) -> &Arc<ReadCounters> {
        &self.read_counters
    }

    /// How far segment reclamation lags behind the cleaner: 0 when no
    /// retired segment waits in limbo, else the distance from the oldest
    /// limbo retirement epoch to the current epoch. A persistently large
    /// lag means a reader is pinned (or nobody is advancing epochs).
    pub fn reclamation_lag(&self) -> u64 {
        self.log
            .oldest_limbo_epoch()
            .map(|e| self.epoch.current().saturating_sub(e))
            .unwrap_or(0)
    }

    /// Number of live objects.
    pub fn object_count(&self) -> usize {
        self.index.len()
    }

    /// Finds the current position, record size, and version of a key.
    fn find(&self, table: TableId, key: &[u8]) -> Option<(LogPosition, usize, Version)> {
        let hash = key_hash(table, key);
        for pos in self.index.candidates(hash) {
            if let Some(LogEntry::Object(o)) = self.log.read(pos) {
                if o.table == table && o.key.as_ref() == key {
                    let size = LogEntry::Object(o.clone()).serialized_len();
                    return Some((pos, size, o.version));
                }
            }
        }
        None
    }

    /// Index + log lookup shared by [`Store::read`] and [`Store::peek`].
    ///
    /// Every caller must hold an epoch pin: the concurrent cleaner may
    /// retire a victim segment while this walk chases a position into it,
    /// and only the pin keeps the victim's memory from being recycled
    /// mid-parse.
    fn lookup(&self, table: TableId, key: &[u8]) -> Option<ObjectRecord> {
        debug_assert!(
            self.epoch.pinned_readers() > 0,
            "lookup without an epoch pin races segment reclamation"
        );
        let hash = key_hash(table, key);
        for pos in self.index.candidates(hash) {
            if let Some(LogEntry::Object(o)) = self.log.read(pos) {
                if o.table == table && o.key.as_ref() == key {
                    return Some(o);
                }
            }
        }
        None
    }

    /// Reads the current value of a key.
    ///
    /// Takes `&self`: the hit/miss counters are atomics, so concurrent
    /// readers can share the store under a read lock — the basis of the
    /// standalone server's zero-queue read fast path. The epoch pin (two
    /// uncontended atomic ops, no lock) keeps the concurrent cleaner from
    /// recycling a victim segment's memory while this lookup may still be
    /// chasing a position into it.
    pub fn read(&self, table: TableId, key: &[u8]) -> Option<ObjectRecord> {
        let _pin = self.epoch.pin();
        let got = self.lookup(table, key);
        match got {
            Some(_) => self.read_counters.read_hits.fetch_add(1, Ordering::Relaxed),
            None => self
                .read_counters
                .read_misses
                .fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Reads a key into an [`ObjectView`] through the locked path (the
    /// contended-read fallback and the `LockedCopy` ablation baseline). The
    /// value is an owned copy, so the view pins no segment memory.
    pub fn read_view(&self, table: TableId, key: &[u8]) -> Option<ObjectView> {
        self.read(table, key).map(|o| ObjectView {
            table: o.table,
            version: o.version,
            value: ValueView::owned(o.value),
        })
    }

    /// Reads without touching statistics (for internal/verification use).
    pub fn peek(&self, table: TableId, key: &[u8]) -> Option<ObjectRecord> {
        // Pinning here is not optional: peek runs under a shared borrow
        // while the concurrent cleaner may be retiring segments, exactly
        // like `read` (this was missed originally, and an unpinned lookup
        // can chase a position into memory being reclaimed).
        let _pin = self.epoch.pin();
        self.lookup(table, key)
    }

    /// Appends through the log, running the cleaner and retrying once when
    /// the log reports full.
    fn append_with_cleaning(
        &mut self,
        entry: &LogEntry,
    ) -> Result<crate::log::AppendOutcome, StoreError> {
        // Proactive cleaning keeps a reserve of free slots so the cleaner
        // itself always has room to relocate. Stores whose cleaning is
        // driven externally (background threads, the simulator's clean_step
        // hook) set `proactive: false` and only fall through to the
        // emergency path below.
        if self.cleaner.enabled
            && self.cleaner.proactive
            && self.log.free_segment_slots() <= self.cleaner.min_free_slots
        {
            let _ = self.clean();
        }
        match self.log.append(entry) {
            Ok(out) => Ok(out),
            Err(_) if self.cleaner.enabled => {
                // Emergency: first harvest everything the concurrent cleaner
                // already retired — waiting out in-flight lock-free readers
                // whose epoch pins block the flip — then clean inline, then
                // retry once.
                let freed = self.reclaim_waiting();
                self.stats.segments_freed += freed as u64;
                let _ = self.clean();
                self.log.append(entry).map_err(|_| StoreError::OutOfMemory)
            }
            Err(_) => Err(StoreError::OutOfMemory),
        }
    }

    /// Writes (inserts or overwrites) a key.
    ///
    /// # Errors
    ///
    /// [`StoreError::KeyTooLarge`] / [`StoreError::ValueTooLarge`] on size
    /// violations, [`StoreError::OutOfMemory`] when the log is full even
    /// after cleaning.
    pub fn write(
        &mut self,
        table: TableId,
        key: &[u8],
        value: &[u8],
    ) -> Result<WriteOutcome, StoreError> {
        self.write_with(table, key, value, None)
    }

    /// Writes a key carrying a RIFL completion record for exactly-once
    /// retry semantics. If the same `(client, seq)` was already applied,
    /// nothing is written and the recorded outcome's version is returned
    /// with `position`/`sealed` of the *current* state (idempotent hit).
    ///
    /// # Errors
    ///
    /// As [`Store::write`].
    pub fn write_with(
        &mut self,
        table: TableId,
        key: &[u8],
        value: &[u8],
        completion: Option<CompletionId>,
    ) -> Result<WriteOutcome, StoreError> {
        if key.len() > MAX_KEY_BYTES {
            return Err(StoreError::KeyTooLarge);
        }
        if value.len() > MAX_VALUE_BYTES {
            return Err(StoreError::ValueTooLarge);
        }
        if let Some(c) = completion {
            if let Some(&(seq, version)) = self.completions.get(&c.client) {
                if seq == c.seq {
                    // Duplicate of the client's last completed write.
                    let position = self.find(table, key).map(|(p, _, _)| p).unwrap_or(
                        crate::types::LogPosition {
                            segment: self.log.head(),
                            offset: 0,
                        },
                    );
                    return Ok(WriteOutcome {
                        version,
                        position,
                        sealed: None,
                    });
                }
            }
        }
        let existing = self.find(table, key);
        let hash_for_floor = key_hash(table, key).0;
        let floor = self.dead_versions.get(&hash_for_floor).copied();
        let version = match (existing.map(|(_, _, v)| v), floor) {
            (Some(v), Some(f)) => v.max(f).next(),
            (Some(v), None) => v.next(),
            (None, Some(f)) => f.next(),
            (None, None) => Version::FIRST,
        };
        let entry = LogEntry::Object(ObjectRecord {
            table,
            key: Bytes::copy_from_slice(key),
            value: Bytes::copy_from_slice(value),
            version,
            completion,
        });
        let out = self.append_with_cleaning(&entry)?;
        let hash = key_hash(table, key);
        match existing {
            Some((old_pos, old_size, _)) => {
                // The cleaner may have relocated the old entry during
                // `append_with_cleaning`; re-resolve before updating.
                let updated = self.index.update(hash, old_pos, out.position) || {
                    if let Some((cur_pos, _, _)) = self.find_excluding(table, key, out.position) {
                        self.index.update(hash, cur_pos, out.position)
                    } else {
                        false
                    }
                };
                if updated {
                    // Old entry is now dead.
                    if let Some((dead_pos, dead_size)) =
                        self.resolve_dead(old_pos, old_size, table, key, out.position)
                    {
                        self.log
                            .adjust_live(dead_pos.segment, -(dead_size as isize));
                    }
                } else {
                    self.index.insert(hash, out.position);
                }
                self.stats.overwrites += 1;
            }
            None => self.index.insert(hash, out.position),
        }
        if let Some(ordered) = self.ordered.as_mut() {
            ordered.insert((table.0, key.to_vec()), ());
        }
        if let Some(c) = completion {
            self.completions.insert(c.client, (c.seq, version));
        }
        // The new object outversions any tombstone floor; drop the entry.
        self.dead_versions.remove(&hash_for_floor);
        self.stats.writes += 1;
        Ok(WriteOutcome {
            version,
            position: out.position,
            sealed: out.sealed,
        })
    }

    /// Like `find` but skips a specific position (the just-appended one).
    fn find_excluding(
        &self,
        table: TableId,
        key: &[u8],
        skip: LogPosition,
    ) -> Option<(LogPosition, usize, Version)> {
        let hash = key_hash(table, key);
        for pos in self.index.candidates(hash) {
            if pos == skip {
                continue;
            }
            if let Some(LogEntry::Object(o)) = self.log.read(pos) {
                if o.table == table && o.key.as_ref() == key {
                    let size = LogEntry::Object(o.clone()).serialized_len();
                    return Some((pos, size, o.version));
                }
            }
        }
        None
    }

    /// Figures out where the dead copy of an overwritten object actually
    /// lives (it may have been relocated by a cleaning pass that ran between
    /// lookup and append).
    fn resolve_dead(
        &self,
        old_pos: LogPosition,
        old_size: usize,
        table: TableId,
        key: &[u8],
        _new_pos: LogPosition,
    ) -> Option<(LogPosition, usize)> {
        if self.log.contains_segment(old_pos.segment) {
            if let Some(LogEntry::Object(o)) = self.log.read(old_pos) {
                if o.table == table && o.key.as_ref() == key {
                    return Some((old_pos, old_size));
                }
            }
        }
        None
    }

    /// Deletes a key by appending a tombstone. Returns the deleted version,
    /// or `Ok(None)` when the key did not exist.
    ///
    /// # Errors
    ///
    /// [`StoreError::OutOfMemory`] when the tombstone cannot be appended.
    pub fn delete(&mut self, table: TableId, key: &[u8]) -> Result<Option<Version>, StoreError> {
        let Some((old_pos, old_size, old_version)) = self.find(table, key) else {
            return Ok(None);
        };
        let entry = LogEntry::Tombstone(TombstoneRecord {
            table,
            key: Bytes::copy_from_slice(key),
            version: old_version,
            dead_segment: old_pos.segment,
        });
        self.append_with_cleaning(&entry)?;
        let hash = key_hash(table, key);
        // Re-resolve in case the cleaner moved the object meanwhile.
        let (cur_pos, cur_size) = match self.find(table, key) {
            Some((p, s, _)) => (p, s),
            None => (old_pos, old_size),
        };
        if self.index.remove(hash, cur_pos) {
            self.log.adjust_live(cur_pos.segment, -(cur_size as isize));
        }
        if let Some(ordered) = self.ordered.as_mut() {
            ordered.remove(&(table.0, key.to_vec()));
        }
        // Floor any future re-creation of this key at the deleted version so
        // the key's version chain stays monotone across delete/recreate.
        let floor = self.dead_versions.entry(hash.0).or_insert(old_version);
        *floor = (*floor).max(old_version);
        self.stats.deletes += 1;
        Ok(Some(old_version))
    }

    /// Replays an object record during crash recovery: applies it only if it
    /// is newer than what the store already holds.
    ///
    /// # Errors
    ///
    /// [`StoreError::OutOfMemory`] when the log cannot hold the record.
    pub fn replay_object(&mut self, rec: &ObjectRecord) -> Result<bool, StoreError> {
        let existing = self.find(rec.table, &rec.key);
        if let Some((_, _, v)) = existing {
            if v >= rec.version {
                return Ok(false);
            }
        }
        let hash = key_hash(rec.table, &rec.key);
        // A tombstone replayed earlier (possibly from a different segment)
        // may already have killed this version; replay order must not matter.
        if let Some(&floor) = self.dead_versions.get(&hash.0) {
            if rec.version <= floor {
                return Ok(false);
            }
        }
        let entry = LogEntry::Object(rec.clone());
        let out = self.append_with_cleaning(&entry)?;
        match existing {
            Some((old_pos, old_size, _)) => {
                if self.index.update(hash, old_pos, out.position) {
                    self.log.adjust_live(old_pos.segment, -(old_size as isize));
                } else {
                    self.index.insert(hash, out.position);
                }
            }
            None => self.index.insert(hash, out.position),
        }
        if let Some(ordered) = self.ordered.as_mut() {
            ordered.insert((rec.table.0, rec.key.to_vec()), ());
        }
        if let Some(c) = rec.completion {
            // Rebuild the duplicate-suppression table from the log.
            let newer = self
                .completions
                .get(&c.client)
                .map(|&(seq, _)| c.seq > seq)
                .unwrap_or(true);
            if newer {
                self.completions.insert(c.client, (c.seq, rec.version));
            }
        }
        // The replayed object outversions any recorded floor.
        self.dead_versions.remove(&hash.0);
        Ok(true)
    }

    /// Replays a tombstone during crash recovery: deletes the key if the
    /// stored version is not newer than the tombstone.
    ///
    /// # Errors
    ///
    /// [`StoreError::OutOfMemory`] when the tombstone cannot be appended.
    pub fn replay_tombstone(&mut self, t: &TombstoneRecord) -> Result<bool, StoreError> {
        let applied = match self.find(t.table, &t.key) {
            Some((_, _, v)) if v <= t.version => {
                self.delete(t.table, &t.key)?;
                true
            }
            _ => false,
        };
        // Even when nothing was deleted (the object may simply not have been
        // replayed yet), record the floor so a later replay of the killed
        // version is rejected — replay order across segments must not matter.
        let hash = key_hash(t.table, &t.key).0;
        let floor = self.dead_versions.entry(hash).or_insert(t.version);
        *floor = (*floor).max(t.version);
        Ok(applied)
    }

    /// Iterates over all live objects (order unspecified). Intended for
    /// verification and for building recovery partitions.
    pub fn live_objects(&self) -> impl Iterator<Item = ObjectRecord> + '_ {
        self.index
            .iter()
            .filter_map(move |(_, pos)| match self.log.read(pos) {
                Some(LogEntry::Object(o)) => Some(o),
                _ => None,
            })
    }

    /// Scans up to `limit` live objects of `table` with keys ≥ `start_key`,
    /// in key order (YCSB workload E's access pattern).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::ScansDisabled`] unless the store was built
    /// with `LogConfig::ordered_index = true`.
    pub fn scan(
        &self,
        table: TableId,
        start_key: &[u8],
        limit: usize,
    ) -> Result<Vec<ObjectRecord>, StoreError> {
        let Some(ordered) = self.ordered.as_ref() else {
            return Err(StoreError::ScansDisabled);
        };
        // One pin for the whole scan: every per-key lookup below chases log
        // positions that the concurrent cleaner must not reclaim under us
        // (scan had the same unpinned hole `peek` did).
        let _pin = self.epoch.pin();
        let mut out = Vec::with_capacity(limit.min(64));
        for ((t, key), _) in ordered.range((table.0, start_key.to_vec())..) {
            if *t != table.0 || out.len() >= limit {
                break;
            }
            if let Some(obj) = self.lookup(table, key) {
                out.push(obj);
            }
        }
        Ok(out)
    }

    /// The last completed `(seq, version)` for `client`, if any (the
    /// duplicate-suppression record).
    pub fn last_completion(&self, client: u64) -> Option<(u64, Version)> {
        self.completions.get(&client).copied()
    }

    /// Total live bytes across all segments.
    pub fn live_bytes(&self) -> usize {
        self.log
            .segment_ids()
            .iter()
            .map(|&id| self.log.live_bytes(id))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_store() -> Store {
        Store::new(LogConfig {
            segment_bytes: 512,
            max_segments: 64,
            ordered_index: false,
        })
    }

    const T: TableId = TableId(1);

    #[test]
    fn write_read_roundtrip() {
        let mut s = tiny_store();
        let out = s.write(T, b"k1", b"v1").unwrap();
        assert_eq!(out.version, Version::FIRST);
        let got = s.read(T, b"k1").unwrap();
        assert_eq!(&got.value[..], b"v1");
        assert_eq!(got.version, Version::FIRST);
    }

    #[test]
    fn missing_key_is_none() {
        let s = tiny_store();
        assert!(s.read(T, b"nope").is_none());
        assert_eq!(s.stats().read_misses, 1);
    }

    #[test]
    fn overwrite_bumps_version_and_returns_new_value() {
        let mut s = tiny_store();
        s.write(T, b"k", b"a").unwrap();
        let out = s.write(T, b"k", b"b").unwrap();
        assert_eq!(out.version, Version(2));
        assert_eq!(&s.read(T, b"k").unwrap().value[..], b"b");
        assert_eq!(s.object_count(), 1);
        assert_eq!(s.stats().overwrites, 1);
    }

    #[test]
    fn tables_namespace_keys() {
        let mut s = tiny_store();
        s.write(TableId(1), b"k", b"one").unwrap();
        s.write(TableId(2), b"k", b"two").unwrap();
        assert_eq!(&s.read(TableId(1), b"k").unwrap().value[..], b"one");
        assert_eq!(&s.read(TableId(2), b"k").unwrap().value[..], b"two");
    }

    #[test]
    fn delete_removes_and_reports_version() {
        let mut s = tiny_store();
        s.write(T, b"k", b"v").unwrap();
        s.write(T, b"k", b"v2").unwrap();
        let deleted = s.delete(T, b"k").unwrap();
        assert_eq!(deleted, Some(Version(2)));
        assert!(s.read(T, b"k").is_none());
        assert_eq!(s.object_count(), 0);
    }

    #[test]
    fn delete_missing_is_none() {
        let mut s = tiny_store();
        assert_eq!(s.delete(T, b"ghost").unwrap(), None);
    }

    #[test]
    fn write_after_delete_continues_the_version_chain() {
        // RAMCloud continues versions monotonically per key across deletes:
        // a re-created key must outversion its own tombstone, or recovery
        // replaying segments out of order could kill the second life with a
        // tombstone from the first.
        let mut s = tiny_store();
        s.write(T, b"k", b"v").unwrap();
        s.write(T, b"k", b"vv").unwrap();
        s.delete(T, b"k").unwrap();
        let out = s.write(T, b"k", b"v2").unwrap();
        assert_eq!(out.version, Version(3));
        assert_eq!(&s.read(T, b"k").unwrap().value[..], b"v2");
        // The floor entry is dropped once outversioned.
        assert!(s.dead_versions.is_empty());
        // Deleting again raises the floor to the new version.
        s.delete(T, b"k").unwrap();
        let again = s.write(T, b"k", b"v3").unwrap();
        assert_eq!(again.version, Version(4));
    }

    #[test]
    fn replay_is_order_independent_across_delete_recreate() {
        // Life 1: put k@v1, tombstone@v1. Life 2: put k@v2 (the re-created
        // key, now version-chained above the tombstone). Recovery may replay
        // the segments in any order; the key must survive in every order.
        let obj_v1 = ObjectRecord {
            table: T,
            key: Bytes::from_static(b"k"),
            value: Bytes::from_static(b"life1"),
            version: Version(1),
            completion: None,
        };
        let tomb_v1 = TombstoneRecord {
            table: T,
            key: Bytes::from_static(b"k"),
            version: Version(1),
            dead_segment: SegmentId(0),
        };
        let obj_v2 = ObjectRecord {
            value: Bytes::from_static(b"life2"),
            version: Version(2),
            ..obj_v1.clone()
        };

        // Order A: second life first, then the first life's records.
        let mut s = tiny_store();
        assert!(s.replay_object(&obj_v2).unwrap());
        assert!(!s.replay_object(&obj_v1).unwrap());
        assert!(!s.replay_tombstone(&tomb_v1).unwrap());
        assert_eq!(&s.read(T, b"k").unwrap().value[..], b"life2");

        // Order B: tombstone before either object.
        let mut s = tiny_store();
        assert!(!s.replay_tombstone(&tomb_v1).unwrap());
        assert!(!s.replay_object(&obj_v1).unwrap(), "v1 is floored");
        assert!(s.replay_object(&obj_v2).unwrap());
        assert_eq!(&s.read(T, b"k").unwrap().value[..], b"life2");

        // Order C: in-order replay still converges identically.
        let mut s = tiny_store();
        assert!(s.replay_object(&obj_v1).unwrap());
        assert!(s.replay_tombstone(&tomb_v1).unwrap());
        assert!(s.replay_object(&obj_v2).unwrap());
        assert_eq!(&s.read(T, b"k").unwrap().value[..], b"life2");
        assert_eq!(s.read(T, b"k").unwrap().version, Version(2));
    }

    #[test]
    fn oversized_inputs_rejected() {
        let mut s = tiny_store();
        let big_key = vec![0u8; MAX_KEY_BYTES + 1];
        assert_eq!(s.write(T, &big_key, b"v"), Err(StoreError::KeyTooLarge));
        let big_val = vec![0u8; MAX_VALUE_BYTES + 1];
        assert_eq!(s.write(T, b"k", &big_val), Err(StoreError::ValueTooLarge));
    }

    #[test]
    fn out_of_memory_without_cleaner() {
        let mut s = Store::with_cleaner(
            LogConfig {
                segment_bytes: 256,
                max_segments: 2,
                ordered_index: false,
            },
            CleanerConfig {
                enabled: false,
                ..CleanerConfig::default()
            },
        );
        let val = vec![1u8; 100];
        let mut failed = false;
        for i in 0..10 {
            if s.write(T, format!("key{i}").as_bytes(), &val).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "a 2-segment log must fill up");
    }

    #[test]
    fn live_objects_enumerates_current_state() {
        let mut s = tiny_store();
        for i in 0..10 {
            s.write(T, format!("k{i}").as_bytes(), b"v").unwrap();
        }
        s.delete(T, b"k3").unwrap();
        s.write(T, b"k5", b"v2").unwrap();
        let mut keys: Vec<String> = s
            .live_objects()
            .map(|o| String::from_utf8(o.key.to_vec()).unwrap())
            .collect();
        keys.sort();
        assert_eq!(keys.len(), 9);
        assert!(!keys.contains(&"k3".to_owned()));
    }

    #[test]
    fn overwrite_keeps_exactly_one_live_copy() {
        let mut s = tiny_store();
        let out1 = s.write(T, b"k", b"aaaa").unwrap();
        let one_copy = s.live_bytes();
        for _ in 0..20 {
            s.write(T, b"k", b"bbbb").unwrap();
        }
        // Same-size values: total live bytes must not grow with overwrites,
        // no matter which segments old and new copies land in.
        assert_eq!(s.live_bytes(), one_copy);
        // And the original segment's live count never underflows.
        let _ = s.log().live_bytes(out1.position.segment);
    }

    #[test]
    fn replay_object_respects_versions() {
        let mut s = tiny_store();
        let rec_v2 = ObjectRecord {
            table: T,
            key: Bytes::from_static(b"k"),
            value: Bytes::from_static(b"new"),
            version: Version(2),
            completion: None,
        };
        assert!(s.replay_object(&rec_v2).unwrap());
        // Older replay must not clobber.
        let rec_v1 = ObjectRecord {
            version: Version(1),
            value: Bytes::from_static(b"old"),
            ..rec_v2.clone()
        };
        assert!(!s.replay_object(&rec_v1).unwrap());
        assert_eq!(&s.read(T, b"k").unwrap().value[..], b"new");
        assert_eq!(s.read(T, b"k").unwrap().version, Version(2));
    }

    #[test]
    fn replay_tombstone_kills_only_older_or_equal() {
        let mut s = tiny_store();
        let rec = ObjectRecord {
            table: T,
            key: Bytes::from_static(b"k"),
            value: Bytes::from_static(b"v"),
            version: Version(5),
            completion: None,
        };
        s.replay_object(&rec).unwrap();
        let t_old = TombstoneRecord {
            table: T,
            key: Bytes::from_static(b"k"),
            version: Version(4),
            dead_segment: SegmentId(0),
        };
        assert!(!s.replay_tombstone(&t_old).unwrap());
        assert!(s.read(T, b"k").is_some());
        let t_new = TombstoneRecord {
            version: Version(5),
            ..t_old
        };
        assert!(s.replay_tombstone(&t_new).unwrap());
        assert!(s.read(T, b"k").is_none());
    }

    #[test]
    fn write_with_records_and_suppresses_duplicates() {
        let mut s = tiny_store();
        let c = CompletionId { client: 4, seq: 9 };
        let first = s.write_with(T, b"k", b"v1", Some(c)).unwrap();
        assert_eq!(first.version, Version(1));
        assert_eq!(s.last_completion(4), Some((9, Version(1))));
        // Retrying the same (client, seq) must not re-apply.
        let dup = s.write_with(T, b"k", b"v-retry", Some(c)).unwrap();
        assert_eq!(dup.version, Version(1));
        assert_eq!(&s.read(T, b"k").unwrap().value[..], b"v1");
        assert_eq!(s.read(T, b"k").unwrap().version, Version(1));
        // A later seq applies normally.
        let next = s
            .write_with(T, b"k", b"v2", Some(CompletionId { client: 4, seq: 10 }))
            .unwrap();
        assert_eq!(next.version, Version(2));
        assert_eq!(s.last_completion(4), Some((10, Version(2))));
    }

    #[test]
    fn replay_rebuilds_completion_records() {
        let mut a = tiny_store();
        let c = CompletionId { client: 7, seq: 3 };
        a.write_with(T, b"k", b"v", Some(c)).unwrap();
        // Ship the object (with its completion) to a fresh store, as
        // recovery replay does.
        let rec = a.peek(T, b"k").unwrap();
        assert_eq!(rec.completion, Some(c));
        let mut b = tiny_store();
        assert!(b.replay_object(&rec).unwrap());
        assert_eq!(b.last_completion(7), Some((3, Version(1))));
        // The retry against the recovered store is suppressed too.
        let dup = b.write_with(T, b"k", b"retry", Some(c)).unwrap();
        assert_eq!(dup.version, Version(1));
        assert_eq!(&b.read(T, b"k").unwrap().value[..], b"v");
    }

    #[test]
    fn stats_add_assign_merges_every_counter() {
        // One of each countable event…
        let mut a = Store::new(LogConfig {
            segment_bytes: 512,
            max_segments: 64,
            ordered_index: false,
        });
        a.write(T, b"k", b"v").unwrap();
        a.write(T, b"k", b"v2").unwrap(); // overwrite
        a.read(T, b"k"); // hit
        a.read(T, b"nope"); // miss
        a.delete(T, b"k").unwrap();
        let s = a.stats();
        assert_eq!(
            (
                s.writes,
                s.overwrites,
                s.deletes,
                s.read_hits,
                s.read_misses
            ),
            (2, 1, 1, 1, 1)
        );
        // …merged twice must double every field.
        let mut total = StoreStats::default();
        total += s;
        total += s;
        assert_eq!(
            total,
            StoreStats {
                writes: 4,
                overwrites: 2,
                deletes: 2,
                read_hits: 2,
                read_misses: 2,
                read_lockfree: 2 * s.read_lockfree,
                read_fallback_locked: 2 * s.read_fallback_locked,
                value_views_live: 2 * s.value_views_live,
                limbo_held_by_views: 2 * s.limbo_held_by_views,
                cleanings: 2 * s.cleanings,
                bytes_relocated: 2 * s.bytes_relocated,
                segments_freed: 2 * s.segments_freed,
                tombstones_dropped: 2 * s.tombstones_dropped,
                segments_compacted: 2 * s.segments_compacted,
                survivor_bytes: 2 * s.survivor_bytes,
                index_probes: 2 * s.index_probes,
                index_probe_steps: 2 * s.index_probe_steps,
                index_resizes: 2 * s.index_resizes,
            }
        );
        // The named-method alias agrees with `+=`.
        let mut via_merge = StoreStats::default();
        via_merge.merge(&s);
        via_merge.merge(&s);
        assert_eq!(via_merge, total);
    }

    #[test]
    fn concurrent_shared_reads_count_exactly() {
        // `read(&self)` must be callable from many threads at once and lose
        // no counter increments.
        let mut s = tiny_store();
        s.write(T, b"k", b"v").unwrap();
        let s = std::sync::Arc::new(s);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        if (i + t) % 2 == 0 {
                            assert!(s.read(T, b"k").is_some());
                        } else {
                            assert!(s.read(T, b"miss").is_none());
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.stats().read_hits, 2000);
        assert_eq!(s.stats().read_misses, 2000);
    }

    #[test]
    fn read_and_peek_agree_but_only_read_counts() {
        let mut s = tiny_store();
        s.write(T, b"k", b"v").unwrap();
        assert_eq!(s.peek(T, b"k"), s.read(T, b"k"));
        assert_eq!(s.peek(T, b"gone"), s.read(T, b"gone"));
        let st = s.stats();
        assert_eq!((st.read_hits, st.read_misses), (1, 1));
    }

    #[test]
    fn scan_requires_ordered_index() {
        let s = tiny_store();
        assert_eq!(s.scan(T, b"", 10).unwrap_err(), StoreError::ScansDisabled);
    }

    #[test]
    fn scan_returns_key_ordered_live_objects() {
        let mut s = Store::new(LogConfig {
            segment_bytes: 512,
            max_segments: 64,
            ordered_index: true,
        });
        for i in [5u32, 1, 9, 3, 7] {
            s.write(T, format!("k{i}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        s.delete(T, b"k3").unwrap();
        let got = s.scan(T, b"k2", 10).unwrap();
        let keys: Vec<String> = got
            .iter()
            .map(|o| String::from_utf8(o.key.to_vec()).unwrap())
            .collect();
        assert_eq!(keys, vec!["k5", "k7", "k9"]);
        // Limit respected; start inclusive.
        let got = s.scan(T, b"k1", 2).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(&got[0].key[..], b"k1");
    }

    #[test]
    fn scan_is_table_scoped() {
        let mut s = Store::new(LogConfig {
            segment_bytes: 512,
            max_segments: 64,
            ordered_index: true,
        });
        s.write(TableId(1), b"a", b"1").unwrap();
        s.write(TableId(2), b"b", b"2").unwrap();
        let got = s.scan(TableId(1), b"", 10).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].key[..], b"a");
    }

    #[test]
    fn scan_survives_cleaning() {
        let mut s = Store::with_cleaner(
            LogConfig {
                segment_bytes: 512,
                max_segments: 16,
                ordered_index: true,
            },
            CleanerConfig::default(),
        );
        for i in 0..20 {
            s.write(T, format!("stable{i:02}").as_bytes(), b"keep")
                .unwrap();
        }
        for round in 0..300 {
            s.write(T, b"zzchurn", format!("{round}").as_bytes())
                .unwrap();
        }
        assert!(s.stats().cleanings > 0);
        let got = s.scan(T, b"stable", 100).unwrap();
        assert_eq!(got.len(), 21, "20 stable + churn key"); // zzchurn sorts after
        let scan_stable = s.scan(T, b"stable", 20).unwrap();
        assert!(scan_stable.iter().all(|o| &o.value[..] == b"keep"));
    }

    #[test]
    fn many_keys_survive_head_rolls() {
        let mut s = Store::new(LogConfig {
            segment_bytes: 512,
            max_segments: 256,
            ordered_index: false,
        });
        for i in 0..500 {
            s.write(
                T,
                format!("key-{i:04}").as_bytes(),
                format!("val-{i}").as_bytes(),
            )
            .unwrap();
        }
        for i in 0..500 {
            let got = s.read(T, format!("key-{i:04}").as_bytes()).unwrap();
            assert_eq!(&got.value[..], format!("val-{i}").as_bytes());
        }
        assert!(s.log().allocated_segments() > 10, "log must have rolled");
    }
}
