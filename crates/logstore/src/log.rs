//! The segmented append-only log.
//!
//! A [`Log`] owns a bounded pool of [`Segment`]s. Appends go to the *head*
//! segment; when an entry does not fit, the head is sealed (closed) and a
//! fresh segment becomes the head. Sealing matters to the wider system: a
//! sealed segment is the unit backups flush to disk. The log also tracks
//! per-segment live-byte counts on behalf of the store — the input to the
//! cleaner's cost-benefit policy.

use std::collections::BTreeMap;

use crate::entry::LogEntry;
use crate::segment::{Segment, DEFAULT_SEGMENT_BYTES};
use crate::types::{LogPosition, SegmentId};

/// Sizing of a master's log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogConfig {
    /// Bytes per segment (8 MB in RAMCloud and throughout the paper).
    pub segment_bytes: usize,
    /// Maximum number of simultaneously allocated segments;
    /// `segment_bytes × max_segments` is the master's memory budget
    /// (10 GB in the paper's configuration).
    pub max_segments: usize,
    /// Maintain an ordered secondary key index so [`crate::Store::scan`]
    /// works (YCSB workload E). Costs extra memory per key; the paper's
    /// workloads don't scan, so this defaults to off.
    pub ordered_index: bool,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            max_segments: 1280, // 10 GB at 8 MB/segment
            ordered_index: false,
        }
    }
}

/// Error: the log has no room for the entry and no free segment slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogFullError;

impl std::fmt::Display for LogFullError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "log is out of memory (all segments allocated)")
    }
}

impl std::error::Error for LogFullError {}

/// Result of a successful append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendOutcome {
    /// Where the entry landed.
    pub position: LogPosition,
    /// Set when this append rolled the log over to a new head: the previous
    /// head is now sealed and (in the full system) eligible for backup
    /// flushing.
    pub sealed: Option<SegmentId>,
}

#[derive(Debug, Clone, Copy, Default)]
struct SegmentStats {
    live_bytes: usize,
    /// Sequence number at creation; proxy for age in the cost-benefit
    /// cleaner policy.
    created_seq: u64,
}

/// A bounded pool of append-only segments with live-byte accounting.
#[derive(Debug)]
pub struct Log {
    config: LogConfig,
    segments: BTreeMap<SegmentId, Segment>,
    stats: BTreeMap<SegmentId, SegmentStats>,
    head: SegmentId,
    next_id: u64,
    append_seq: u64,
    total_appended_bytes: u64,
}

impl Log {
    /// Creates a log with one open head segment.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_segments` is zero.
    pub fn new(config: LogConfig) -> Self {
        assert!(config.max_segments > 0, "log needs at least one segment");
        let head = SegmentId(0);
        let mut segments = BTreeMap::new();
        segments.insert(head, Segment::new(head, config.segment_bytes));
        let mut stats = BTreeMap::new();
        stats.insert(head, SegmentStats::default());
        Log {
            config,
            segments,
            stats,
            head,
            next_id: 1,
            append_seq: 0,
            total_appended_bytes: 0,
        }
    }

    /// The log's configuration.
    pub fn config(&self) -> &LogConfig {
        &self.config
    }

    /// The current head segment id.
    pub fn head(&self) -> SegmentId {
        self.head
    }

    /// Number of allocated segments.
    pub fn allocated_segments(&self) -> usize {
        self.segments.len()
    }

    /// Segment slots still available before the memory budget is exhausted.
    pub fn free_segment_slots(&self) -> usize {
        self.config.max_segments - self.segments.len()
    }

    /// Total bytes ever appended (including entries later cleaned).
    pub fn total_appended_bytes(&self) -> u64 {
        self.total_appended_bytes
    }

    /// Appends an entry, rolling the head if necessary.
    ///
    /// # Errors
    ///
    /// Returns [`LogFullError`] when the head is full and no segment slot is
    /// free. The caller (the store) is expected to run the cleaner and retry.
    pub fn append(&mut self, entry: &LogEntry) -> Result<AppendOutcome, LogFullError> {
        debug_assert!(
            entry.serialized_len() <= self.config.segment_bytes,
            "entry larger than a segment"
        );
        let mut sealed = None;
        let head_id = self.head;
        let at_capacity = self.segments.len() >= self.config.max_segments;
        let head = self.segments.get_mut(&head_id).expect("head exists");
        let offset = match head.append(entry) {
            Ok(off) => off,
            Err(_) => {
                // Roll over to a new head.
                if at_capacity {
                    return Err(LogFullError);
                }
                head.close();
                sealed = Some(head_id);
                let new_id = SegmentId(self.next_id);
                self.next_id += 1;
                self.append_seq += 1;
                let mut seg = Segment::new(new_id, self.config.segment_bytes);
                let off = seg
                    .append(entry)
                    .expect("entry must fit in an empty segment");
                self.segments.insert(new_id, seg);
                self.stats.insert(
                    new_id,
                    SegmentStats {
                        live_bytes: 0,
                        created_seq: self.append_seq,
                    },
                );
                self.head = new_id;
                off
            }
        };
        let seg = self.head;
        let size = entry.serialized_len();
        self.stats.get_mut(&seg).expect("head stats").live_bytes += size;
        self.total_appended_bytes += size as u64;
        Ok(AppendOutcome {
            position: LogPosition {
                segment: seg,
                offset,
            },
            sealed,
        })
    }

    /// Reads the entry at `pos`, or `None` if the segment was cleaned or the
    /// offset is invalid.
    pub fn read(&self, pos: LogPosition) -> Option<LogEntry> {
        self.segments.get(&pos.segment)?.read_at(pos.offset).ok()
    }

    /// Whether `id` is still allocated.
    pub fn contains_segment(&self, id: SegmentId) -> bool {
        self.segments.contains_key(&id)
    }

    /// Borrows an allocated segment.
    pub fn segment(&self, id: SegmentId) -> Option<&Segment> {
        self.segments.get(&id)
    }

    /// Ids of all allocated segments, ascending.
    pub fn segment_ids(&self) -> Vec<SegmentId> {
        self.segments.keys().copied().collect()
    }

    /// Live bytes currently credited to `id` (0 for unknown segments).
    pub fn live_bytes(&self, id: SegmentId) -> usize {
        self.stats.get(&id).map(|s| s.live_bytes).unwrap_or(0)
    }

    /// Adjusts the live-byte count of `id` by `delta`. The store calls this
    /// when an overwrite or delete makes an old entry obsolete.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the count would go negative.
    pub fn adjust_live(&mut self, id: SegmentId, delta: isize) {
        if let Some(s) = self.stats.get_mut(&id) {
            if delta >= 0 {
                s.live_bytes += delta as usize;
            } else {
                let dec = (-delta) as usize;
                debug_assert!(s.live_bytes >= dec, "live bytes underflow on {id}");
                s.live_bytes = s.live_bytes.saturating_sub(dec);
            }
        }
    }

    /// Utilization of `id`: live bytes / appended bytes. `None` for unknown
    /// segments; `1.0` for an empty (all-live, nothing appended) segment.
    pub fn segment_utilization(&self, id: SegmentId) -> Option<f64> {
        let seg = self.segments.get(&id)?;
        let stats = self.stats.get(&id)?;
        if seg.is_empty() {
            return Some(1.0);
        }
        Some(stats.live_bytes as f64 / seg.len() as f64)
    }

    /// Age proxy of `id`: how many head-rolls ago it was created. `None` for
    /// unknown segments.
    pub fn segment_age(&self, id: SegmentId) -> Option<u64> {
        self.stats.get(&id).map(|s| self.append_seq - s.created_seq)
    }

    /// Frees a segment after cleaning.
    ///
    /// # Panics
    ///
    /// Panics if asked to free the head — the head is never cleanable.
    pub fn free_segment(&mut self, id: SegmentId) {
        assert_ne!(id, self.head, "cannot free the head segment");
        self.segments.remove(&id);
        self.stats.remove(&id);
    }

    /// Memory utilization: fraction of the budget occupied by allocated
    /// segments.
    pub fn memory_utilization(&self) -> f64 {
        self.segments.len() as f64 / self.config.max_segments as f64
    }

    /// Closed (non-head) segment ids — the cleaner's candidate pool.
    pub fn closed_segment_ids(&self) -> Vec<SegmentId> {
        self.segments
            .keys()
            .copied()
            .filter(|&id| id != self.head)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::ObjectRecord;
    use crate::types::{TableId, Version};
    use bytes::Bytes;

    fn obj(key: &str, val_len: usize) -> LogEntry {
        LogEntry::Object(ObjectRecord {
            table: TableId(1),
            key: Bytes::copy_from_slice(key.as_bytes()),
            value: Bytes::from(vec![1u8; val_len]),
            version: Version::FIRST,
            completion: None,
        })
    }

    fn small_log(max_segments: usize) -> Log {
        Log::new(LogConfig {
            segment_bytes: 256,
            max_segments,
            ordered_index: false,
        })
    }

    #[test]
    fn append_and_read_back() {
        let mut log = small_log(4);
        let e = obj("hello", 32);
        let out = log.append(&e).unwrap();
        assert_eq!(log.read(out.position), Some(e));
        assert!(out.sealed.is_none());
    }

    #[test]
    fn head_rolls_and_seals() {
        let mut log = small_log(4);
        let e = obj("key", 100); // ~130 bytes serialized, 1 per 256-byte segment... 2 fit? header 27+3+100=130; 256/130 -> 1 fits, second rolls
        let first = log.append(&e).unwrap();
        let second = log.append(&e).unwrap();
        assert_eq!(second.sealed, Some(first.position.segment));
        assert_ne!(first.position.segment, second.position.segment);
        // Both remain readable.
        assert!(log.read(first.position).is_some());
        assert!(log.read(second.position).is_some());
    }

    #[test]
    fn log_full_when_budget_exhausted() {
        let mut log = small_log(2);
        let e = obj("key", 100);
        log.append(&e).unwrap();
        log.append(&e).unwrap(); // rolls to segment 2/2
        let err = log.append(&e).unwrap_err();
        assert_eq!(err, LogFullError);
        assert_eq!(log.free_segment_slots(), 0);
    }

    #[test]
    fn live_byte_accounting() {
        let mut log = small_log(4);
        let e = obj("key", 50);
        let size = e.serialized_len();
        let out = log.append(&e).unwrap();
        assert_eq!(log.live_bytes(out.position.segment), size);
        log.adjust_live(out.position.segment, -(size as isize));
        assert_eq!(log.live_bytes(out.position.segment), 0);
    }

    #[test]
    fn utilization_tracks_live_fraction() {
        let mut log = small_log(4);
        let e = obj("key", 50);
        let a = log.append(&e).unwrap();
        let _b = log.append(&e).unwrap();
        let seg = a.position.segment;
        assert_eq!(log.segment_utilization(seg), Some(1.0));
        log.adjust_live(seg, -(e.serialized_len() as isize));
        let u = log.segment_utilization(seg).unwrap();
        assert!((u - 0.5).abs() < 1e-9, "got {u}");
    }

    #[test]
    fn free_segment_reclaims_slot() {
        let mut log = small_log(2);
        let e = obj("key", 100);
        let first = log.append(&e).unwrap();
        log.append(&e).unwrap();
        assert!(log.append(&e).is_err());
        log.free_segment(first.position.segment);
        assert!(log.append(&e).is_ok());
        assert_eq!(log.read(first.position), None);
    }

    #[test]
    #[should_panic(expected = "cannot free the head")]
    fn freeing_head_panics() {
        let mut log = small_log(2);
        log.append(&obj("k", 10)).unwrap();
        log.free_segment(log.head());
    }

    #[test]
    fn closed_segments_exclude_head() {
        let mut log = small_log(8);
        let e = obj("key", 100);
        for _ in 0..5 {
            log.append(&e).unwrap();
        }
        let closed = log.closed_segment_ids();
        assert!(!closed.contains(&log.head()));
        assert_eq!(closed.len(), log.allocated_segments() - 1);
    }

    #[test]
    fn age_increases_with_rolls() {
        let mut log = small_log(8);
        let e = obj("key", 100);
        let first = log.append(&e).unwrap();
        for _ in 0..4 {
            log.append(&e).unwrap();
        }
        let age_old = log.segment_age(first.position.segment).unwrap();
        let age_head = log.segment_age(log.head()).unwrap();
        assert!(age_old > age_head);
    }

    #[test]
    fn ids_never_reused() {
        let mut log = small_log(2);
        let e = obj("key", 100);
        let a = log.append(&e).unwrap();
        log.append(&e).unwrap();
        log.free_segment(a.position.segment);
        let c = log.append(&e).unwrap();
        assert!(c.position.segment.0 > 1, "freed id must not be recycled");
    }
}
