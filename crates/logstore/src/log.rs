//! The segmented append-only log.
//!
//! A [`Log`] owns a bounded pool of [`Segment`]s. Appends go to the *head*
//! segment; when an entry does not fit, the head is sealed (closed) and a
//! fresh segment becomes the head. Sealing matters to the wider system: a
//! sealed segment is the unit backups flush to disk. The log also tracks
//! per-segment live-byte counts on behalf of the store — the input to the
//! cleaner's cost-benefit policy.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::entry::LogEntry;
use crate::segbuf::SegmentMap;
use crate::segment::{Segment, DEFAULT_SEGMENT_BYTES};
use crate::types::{LogPosition, SegmentId};

/// Seglets per segment: the granularity at which survivor segments are
/// charged against the memory budget. RAMCloud's in-memory compaction exists
/// precisely because memory can be reclaimed in units smaller than a whole
/// segment; 64 seglets per segment mirrors its 128 KB seglets under 8 MB
/// segments.
const SEGLETS_PER_SEGMENT: usize = 64;

/// Sizing of a master's log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogConfig {
    /// Bytes per segment (8 MB in RAMCloud and throughout the paper).
    pub segment_bytes: usize,
    /// Maximum number of simultaneously allocated segments;
    /// `segment_bytes × max_segments` is the master's memory budget
    /// (10 GB in the paper's configuration).
    pub max_segments: usize,
    /// Maintain an ordered secondary key index so [`crate::Store::scan`]
    /// works (YCSB workload E). Costs extra memory per key; the paper's
    /// workloads don't scan, so this defaults to off.
    pub ordered_index: bool,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            max_segments: 1280, // 10 GB at 8 MB/segment
            ordered_index: false,
        }
    }
}

/// Error: the log has no room for the entry and no free segment slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogFullError;

impl std::fmt::Display for LogFullError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "log is out of memory (all segments allocated)")
    }
}

impl std::error::Error for LogFullError {}

/// Result of a successful append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendOutcome {
    /// Where the entry landed.
    pub position: LogPosition,
    /// Set when this append rolled the log over to a new head: the previous
    /// head is now sealed and (in the full system) eligible for backup
    /// flushing.
    pub sealed: Option<SegmentId>,
}

#[derive(Debug, Clone, Copy, Default)]
struct SegmentStats {
    live_bytes: usize,
    /// Sequence number at creation; proxy for age in the cost-benefit
    /// cleaner policy.
    created_seq: u64,
    /// Bytes this segment charges against the memory budget. Full
    /// `segment_bytes` for ordinary segments; seglet-rounded actual length
    /// for compacted survivors (the source of compaction's memory gain).
    charged_bytes: usize,
}

/// A retired segment awaiting epoch-safe reclamation. It still charges the
/// budget (its memory genuinely cannot be recycled yet) and still holds its
/// bytes, but it is no longer reachable through [`Log::read`].
#[derive(Debug)]
struct LimboSegment {
    /// Epoch at retirement; reclaimable once the safe epoch reaches it
    /// *and* no zero-copy value views still reference the buffer.
    epoch: u64,
    /// Held so the victim's bytes stay allocated while a racing reader may
    /// still be parsing them or a [`crate::ValueView`] still points into
    /// them; dropping this struct *is* the reclamation.
    segment: Segment,
    charged_bytes: usize,
}

/// A bounded pool of append-only segments with live-byte accounting.
#[derive(Debug)]
pub struct Log {
    config: LogConfig,
    segments: BTreeMap<SegmentId, Segment>,
    stats: BTreeMap<SegmentId, SegmentStats>,
    /// Retired-but-not-yet-reclaimed segments, oldest epoch first.
    limbo: Vec<LimboSegment>,
    /// Lock-free id → buffer map for the zero-copy read path. Segments are
    /// published here the moment they are allocated and unpublished at
    /// retirement; epoch-pinned readers resolve candidate positions through
    /// it without touching `segments`.
    segment_map: Arc<SegmentMap>,
    head: SegmentId,
    /// Atomic so the cleaner can reserve survivor ids through `&self`
    /// (during its lock-free build phase ids must already be minted).
    next_id: AtomicU64,
    append_seq: u64,
    total_appended_bytes: u64,
    /// Sum of `charged_bytes` over allocated and limbo segments.
    charged_total: usize,
}

impl Log {
    /// Creates a log with one open head segment.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_segments` is zero.
    pub fn new(config: LogConfig) -> Self {
        assert!(config.max_segments > 0, "log needs at least one segment");
        let head = SegmentId(0);
        let segment_map = Arc::new(SegmentMap::new());
        let mut segments = BTreeMap::new();
        let head_seg = Segment::new(head, config.segment_bytes);
        segment_map.publish(head, head_seg.shared_buf());
        segments.insert(head, head_seg);
        let mut stats = BTreeMap::new();
        stats.insert(
            head,
            SegmentStats {
                charged_bytes: config.segment_bytes,
                ..SegmentStats::default()
            },
        );
        let charged_total = config.segment_bytes;
        Log {
            config,
            segments,
            stats,
            limbo: Vec::new(),
            segment_map,
            head,
            next_id: AtomicU64::new(1),
            append_seq: 0,
            total_appended_bytes: 0,
            charged_total,
        }
    }

    /// The log's configuration.
    pub fn config(&self) -> &LogConfig {
        &self.config
    }

    /// The current head segment id.
    pub fn head(&self) -> SegmentId {
        self.head
    }

    /// Number of allocated segments.
    pub fn allocated_segments(&self) -> usize {
        self.segments.len()
    }

    /// The memory budget in bytes: `segment_bytes × max_segments`.
    pub fn budget_bytes(&self) -> usize {
        self.config.segment_bytes * self.config.max_segments
    }

    /// Bytes currently charged against the budget (allocated segments at
    /// their charge granularity, plus retired segments awaiting epoch-safe
    /// reclamation).
    pub fn charged_bytes(&self) -> usize {
        self.charged_total
    }

    /// Seglet size: the charge granularity for compacted survivor segments.
    pub fn seglet_bytes(&self) -> usize {
        (self.config.segment_bytes / SEGLETS_PER_SEGMENT).max(1)
    }

    /// Whole-segment slots still available before the memory budget is
    /// exhausted. Compacted survivors charge only their seglet-rounded
    /// length, so freeing bytes via compaction grows this too.
    pub fn free_segment_slots(&self) -> usize {
        self.budget_bytes().saturating_sub(self.charged_total) / self.config.segment_bytes
    }

    /// Total bytes ever appended (including entries later cleaned).
    pub fn total_appended_bytes(&self) -> u64 {
        self.total_appended_bytes
    }

    /// Appends an entry, rolling the head if necessary.
    ///
    /// # Errors
    ///
    /// Returns [`LogFullError`] when the head is full and no segment slot is
    /// free. The caller (the store) is expected to run the cleaner and retry.
    pub fn append(&mut self, entry: &LogEntry) -> Result<AppendOutcome, LogFullError> {
        debug_assert!(
            entry.serialized_len() <= self.config.segment_bytes,
            "entry larger than a segment"
        );
        let mut sealed = None;
        let head_id = self.head;
        // A roll needs a whole segment's worth of unclaimed budget.
        let at_capacity = self.charged_total + self.config.segment_bytes > self.budget_bytes();
        let head = self.segments.get_mut(&head_id).expect("head exists");
        let offset = match head.append(entry) {
            Ok(off) => off,
            Err(_) => {
                // Roll over to a new head.
                if at_capacity {
                    return Err(LogFullError);
                }
                head.close();
                sealed = Some(head_id);
                let new_id = self.reserve_segment_id();
                self.append_seq += 1;
                let mut seg = Segment::new(new_id, self.config.segment_bytes);
                let off = seg
                    .append(entry)
                    .expect("entry must fit in an empty segment");
                self.segment_map.publish(new_id, seg.shared_buf());
                self.segments.insert(new_id, seg);
                self.stats.insert(
                    new_id,
                    SegmentStats {
                        live_bytes: 0,
                        created_seq: self.append_seq,
                        charged_bytes: self.config.segment_bytes,
                    },
                );
                self.charged_total += self.config.segment_bytes;
                self.head = new_id;
                off
            }
        };
        let seg = self.head;
        let size = entry.serialized_len();
        self.stats.get_mut(&seg).expect("head stats").live_bytes += size;
        self.total_appended_bytes += size as u64;
        Ok(AppendOutcome {
            position: LogPosition {
                segment: seg,
                offset,
            },
            sealed,
        })
    }

    /// Reads the entry at `pos`, or `None` if the segment was cleaned or the
    /// offset is invalid.
    pub fn read(&self, pos: LogPosition) -> Option<LogEntry> {
        self.segments.get(&pos.segment)?.read_at(pos.offset).ok()
    }

    /// Whether `id` is still allocated.
    pub fn contains_segment(&self, id: SegmentId) -> bool {
        self.segments.contains_key(&id)
    }

    /// Borrows an allocated segment.
    pub fn segment(&self, id: SegmentId) -> Option<&Segment> {
        self.segments.get(&id)
    }

    /// Ids of all allocated segments, ascending.
    pub fn segment_ids(&self) -> Vec<SegmentId> {
        self.segments.keys().copied().collect()
    }

    /// Live bytes currently credited to `id` (0 for unknown segments).
    pub fn live_bytes(&self, id: SegmentId) -> usize {
        self.stats.get(&id).map(|s| s.live_bytes).unwrap_or(0)
    }

    /// Bytes `id` currently charges against the budget: full
    /// `segment_bytes` for ordinary segments, the seglet-rounded length for
    /// compacted survivors. `None` for unknown segments.
    pub fn segment_charged_bytes(&self, id: SegmentId) -> Option<usize> {
        self.stats.get(&id).map(|s| s.charged_bytes)
    }

    /// Adjusts the live-byte count of `id` by `delta`. The store calls this
    /// when an overwrite or delete makes an old entry obsolete.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the count would go negative.
    pub fn adjust_live(&mut self, id: SegmentId, delta: isize) {
        if let Some(s) = self.stats.get_mut(&id) {
            if delta >= 0 {
                s.live_bytes += delta as usize;
            } else {
                let dec = (-delta) as usize;
                debug_assert!(s.live_bytes >= dec, "live bytes underflow on {id}");
                s.live_bytes = s.live_bytes.saturating_sub(dec);
            }
        }
    }

    /// Utilization of `id`: live bytes / appended bytes. `None` for unknown
    /// segments; `1.0` for an empty (all-live, nothing appended) segment.
    pub fn segment_utilization(&self, id: SegmentId) -> Option<f64> {
        let seg = self.segments.get(&id)?;
        let stats = self.stats.get(&id)?;
        if seg.is_empty() {
            return Some(1.0);
        }
        Some(stats.live_bytes as f64 / seg.len() as f64)
    }

    /// Age proxy of `id`: how many head-rolls ago it was created. `None` for
    /// unknown segments.
    pub fn segment_age(&self, id: SegmentId) -> Option<u64> {
        self.stats.get(&id).map(|s| self.append_seq - s.created_seq)
    }

    /// Frees a segment after inline cleaning (the write path's synchronous
    /// cleaner). Even though inline cleaning runs under `&mut self`, the
    /// exclusive borrow no longer excludes readers — the lock-free read
    /// path may be mid-parse in this very segment — so "free" means retire
    /// into limbo at `epoch` and wait for [`Log::reclaim_retired`], exactly
    /// like the concurrent cleaner's victims.
    ///
    /// # Panics
    ///
    /// Panics if asked to free the head — the head is never cleanable.
    pub fn free_segment(&mut self, id: SegmentId, epoch: u64) {
        self.retire_segment(id, epoch);
    }

    /// Retires a cleaned victim into the limbo list, stamped with `epoch`.
    /// The segment becomes unreachable through [`Log::read`] but keeps its
    /// memory (and its budget charge) until [`Log::reclaim_retired`] deems
    /// the epoch safe.
    ///
    /// # Panics
    ///
    /// Panics if asked to retire the head.
    pub fn retire_segment(&mut self, id: SegmentId, epoch: u64) {
        assert_ne!(id, self.head, "cannot free the head segment");
        let Some(segment) = self.segments.remove(&id) else {
            return;
        };
        // Unreachable for *new* lock-free lookups from here on; readers that
        // already resolved the buffer keep it alive through its refcount.
        drop(self.segment_map.unpublish(id));
        let charged_bytes = self
            .stats
            .remove(&id)
            .map(|s| s.charged_bytes)
            .unwrap_or(self.config.segment_bytes);
        self.limbo.push(LimboSegment {
            epoch,
            segment,
            charged_bytes,
        });
    }

    /// Reclaims every limbo segment retired at or before `safe_epoch` whose
    /// buffer is no longer referenced by any zero-copy value view, returning
    /// the budget bytes to the free pool. Returns how many segments were
    /// reclaimed.
    ///
    /// Both conditions are required: the epoch proves no *in-flight* reader
    /// can still be probing the buffer, the refcount proves no *completed*
    /// read still holds a [`crate::ValueView`] into it.
    pub fn reclaim_retired(&mut self, safe_epoch: u64) -> usize {
        let before = self.limbo.len();
        let mut reclaimed_bytes = 0usize;
        self.limbo.retain(|l| {
            if l.epoch <= safe_epoch && Arc::strong_count(l.segment.shared_buf()) == 1 {
                reclaimed_bytes += l.charged_bytes;
                false
            } else {
                true
            }
        });
        self.charged_total -= reclaimed_bytes;
        before - self.limbo.len()
    }

    /// Segments currently in limbo (retired, awaiting a safe epoch).
    pub fn limbo_segments(&self) -> usize {
        self.limbo.len()
    }

    /// Limbo segments whose retirement epoch has already passed but whose
    /// bytes are still pinned by outstanding zero-copy value views — the
    /// `limbo_held_by_views` statistic.
    pub fn limbo_held_by_views(&self, safe_epoch: u64) -> usize {
        self.limbo
            .iter()
            .filter(|l| l.epoch <= safe_epoch && Arc::strong_count(l.segment.shared_buf()) > 1)
            .count()
    }

    /// The lock-free id → buffer map shared with read handles.
    pub(crate) fn segment_map(&self) -> Arc<SegmentMap> {
        Arc::clone(&self.segment_map)
    }

    /// The oldest retirement epoch still in limbo, if any — the input to the
    /// reclamation-lag metric.
    pub fn oldest_limbo_epoch(&self) -> Option<u64> {
        self.limbo.iter().map(|l| l.epoch).min()
    }

    /// Reserves a fresh segment id through `&self` (ids are never reused).
    /// The concurrent cleaner mints survivor ids during its locked prepare
    /// phase and fills the segments without any lock held.
    pub fn reserve_segment_id(&self) -> SegmentId {
        SegmentId(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Installs a closed survivor segment built by the cleaner. The survivor
    /// charges only its seglet-rounded length against the budget — the
    /// mechanism by which in-memory compaction frees bytes without freeing a
    /// whole segment slot.
    ///
    /// # Panics
    ///
    /// Panics if the survivor is not closed, is empty, or reuses a live id.
    pub fn install_survivor(&mut self, segment: Segment, live_bytes: usize) {
        assert!(segment.is_closed(), "survivors are installed closed");
        assert!(!segment.is_empty(), "empty survivors must not be installed");
        let id = segment.id();
        assert!(
            !self.segments.contains_key(&id),
            "survivor id {id} already allocated"
        );
        let seglet = self.seglet_bytes();
        let charged_bytes = segment
            .len()
            .div_ceil(seglet)
            .saturating_mul(seglet)
            .min(self.config.segment_bytes);
        self.stats.insert(
            id,
            SegmentStats {
                live_bytes,
                created_seq: self.append_seq,
                charged_bytes,
            },
        );
        self.segment_map.publish(id, segment.shared_buf());
        self.segments.insert(id, segment);
        self.charged_total += charged_bytes;
    }

    /// Memory utilization: fraction of the budget charged by allocated and
    /// limbo segments.
    pub fn memory_utilization(&self) -> f64 {
        self.charged_total as f64 / self.budget_bytes() as f64
    }

    /// Closed (non-head) segment ids — the cleaner's candidate pool.
    pub fn closed_segment_ids(&self) -> Vec<SegmentId> {
        self.segments
            .keys()
            .copied()
            .filter(|&id| id != self.head)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::ObjectRecord;
    use crate::types::{TableId, Version};
    use bytes::Bytes;

    fn obj(key: &str, val_len: usize) -> LogEntry {
        LogEntry::Object(ObjectRecord {
            table: TableId(1),
            key: Bytes::copy_from_slice(key.as_bytes()),
            value: Bytes::from(vec![1u8; val_len]),
            version: Version::FIRST,
            completion: None,
        })
    }

    fn small_log(max_segments: usize) -> Log {
        Log::new(LogConfig {
            segment_bytes: 256,
            max_segments,
            ordered_index: false,
        })
    }

    #[test]
    fn append_and_read_back() {
        let mut log = small_log(4);
        let e = obj("hello", 32);
        let out = log.append(&e).unwrap();
        assert_eq!(log.read(out.position), Some(e));
        assert!(out.sealed.is_none());
    }

    #[test]
    fn head_rolls_and_seals() {
        let mut log = small_log(4);
        let e = obj("key", 100); // ~130 bytes serialized, 1 per 256-byte segment... 2 fit? header 27+3+100=130; 256/130 -> 1 fits, second rolls
        let first = log.append(&e).unwrap();
        let second = log.append(&e).unwrap();
        assert_eq!(second.sealed, Some(first.position.segment));
        assert_ne!(first.position.segment, second.position.segment);
        // Both remain readable.
        assert!(log.read(first.position).is_some());
        assert!(log.read(second.position).is_some());
    }

    #[test]
    fn log_full_when_budget_exhausted() {
        let mut log = small_log(2);
        let e = obj("key", 100);
        log.append(&e).unwrap();
        log.append(&e).unwrap(); // rolls to segment 2/2
        let err = log.append(&e).unwrap_err();
        assert_eq!(err, LogFullError);
        assert_eq!(log.free_segment_slots(), 0);
    }

    #[test]
    fn live_byte_accounting() {
        let mut log = small_log(4);
        let e = obj("key", 50);
        let size = e.serialized_len();
        let out = log.append(&e).unwrap();
        assert_eq!(log.live_bytes(out.position.segment), size);
        log.adjust_live(out.position.segment, -(size as isize));
        assert_eq!(log.live_bytes(out.position.segment), 0);
    }

    #[test]
    fn utilization_tracks_live_fraction() {
        let mut log = small_log(4);
        let e = obj("key", 50);
        let a = log.append(&e).unwrap();
        let _b = log.append(&e).unwrap();
        let seg = a.position.segment;
        assert_eq!(log.segment_utilization(seg), Some(1.0));
        log.adjust_live(seg, -(e.serialized_len() as isize));
        let u = log.segment_utilization(seg).unwrap();
        assert!((u - 0.5).abs() < 1e-9, "got {u}");
    }

    #[test]
    fn free_segment_reclaims_slot() {
        let mut log = small_log(2);
        let e = obj("key", 100);
        let first = log.append(&e).unwrap();
        log.append(&e).unwrap();
        assert!(log.append(&e).is_err());
        // Freeing routes through limbo: unreachable at once, but the slot
        // comes back only after the epoch-safe reclaim.
        log.free_segment(first.position.segment, 3);
        assert_eq!(log.read(first.position), None);
        assert!(log.append(&e).is_err(), "charge held until reclaim");
        assert_eq!(log.reclaim_retired(3), 1);
        assert!(log.append(&e).is_ok());
    }

    #[test]
    #[should_panic(expected = "cannot free the head")]
    fn freeing_head_panics() {
        let mut log = small_log(2);
        log.append(&obj("k", 10)).unwrap();
        log.free_segment(log.head(), 0);
    }

    #[test]
    fn closed_segments_exclude_head() {
        let mut log = small_log(8);
        let e = obj("key", 100);
        for _ in 0..5 {
            log.append(&e).unwrap();
        }
        let closed = log.closed_segment_ids();
        assert!(!closed.contains(&log.head()));
        assert_eq!(closed.len(), log.allocated_segments() - 1);
    }

    #[test]
    fn age_increases_with_rolls() {
        let mut log = small_log(8);
        let e = obj("key", 100);
        let first = log.append(&e).unwrap();
        for _ in 0..4 {
            log.append(&e).unwrap();
        }
        let age_old = log.segment_age(first.position.segment).unwrap();
        let age_head = log.segment_age(log.head()).unwrap();
        assert!(age_old > age_head);
    }

    #[test]
    fn retired_segments_keep_their_charge_until_reclaimed() {
        let mut log = small_log(3);
        let e = obj("key", 100);
        let first = log.append(&e).unwrap();
        log.append(&e).unwrap();
        let victim = first.position.segment;
        log.retire_segment(victim, 5);
        // Unreachable immediately…
        assert_eq!(log.read(first.position), None);
        assert_eq!(log.limbo_segments(), 1);
        assert_eq!(log.oldest_limbo_epoch(), Some(5));
        // …but the budget is still charged: only 1 of 3 slots free.
        assert_eq!(log.free_segment_slots(), 1);
        // A too-early reclaim frees nothing.
        assert_eq!(log.reclaim_retired(4), 0);
        assert_eq!(log.free_segment_slots(), 1);
        // The safe epoch releases the slot.
        assert_eq!(log.reclaim_retired(5), 1);
        assert_eq!(log.free_segment_slots(), 2);
        assert_eq!(log.limbo_segments(), 0);
        assert_eq!(log.oldest_limbo_epoch(), None);
    }

    #[test]
    fn survivors_charge_seglet_rounded_bytes() {
        let mut log = small_log(4);
        // 256-byte segments -> 4-byte seglets.
        assert_eq!(log.seglet_bytes(), 4);
        let id = log.reserve_segment_id();
        let mut seg = Segment::new(id, 256);
        let e = obj("k", 10);
        let mut raw = Vec::new();
        e.serialize_into(&mut raw);
        seg.append_raw(&raw).unwrap();
        seg.close();
        let len = seg.len();
        let before = log.charged_bytes();
        log.install_survivor(seg, len);
        let charged = log.charged_bytes() - before;
        assert!(charged >= len, "charge covers the survivor's bytes");
        assert!(charged < 256, "compacted survivor charges less than a slot");
        assert_eq!(charged % log.seglet_bytes(), 0, "seglet-rounded");
        // The survivor is readable like any segment.
        assert!(log
            .read(LogPosition {
                segment: id,
                offset: 0
            })
            .is_some());
    }

    #[test]
    fn compaction_frees_budget_without_freeing_a_slot() {
        // Replace a full-charge segment with a small survivor: allocated
        // count stays, free slots grow once the victim is reclaimed.
        let mut log = small_log(3);
        let e = obj("key", 100);
        let first = log.append(&e).unwrap();
        log.append(&e).unwrap();
        let victim = first.position.segment;
        assert_eq!(log.free_segment_slots(), 1);
        let sid = log.reserve_segment_id();
        let mut surv = Segment::new(sid, 256);
        let mut raw = Vec::new();
        e.serialize_into(&mut raw);
        surv.append_raw(&raw).unwrap();
        surv.close();
        let len = surv.len();
        log.install_survivor(surv, len);
        log.retire_segment(victim, 0);
        assert_eq!(log.reclaim_retired(0), 1);
        // Two "segments" allocated (head + survivor) of a 3-slot budget, but
        // the survivor's partial charge leaves more than one slot free.
        assert_eq!(log.allocated_segments(), 2);
        assert!(log.free_segment_slots() >= 1);
        assert!(log.memory_utilization() < 2.0 / 3.0);
    }

    #[test]
    fn reserve_segment_id_is_monotone_and_shared_with_append() {
        let log = small_log(4);
        let a = log.reserve_segment_id();
        let b = log.reserve_segment_id();
        assert!(b.0 > a.0);
        let mut log = log;
        let e = obj("key", 100);
        log.append(&e).unwrap();
        let out = log.append(&e).unwrap(); // rolls
        assert!(out.position.segment.0 > b.0, "roll uses the shared counter");
    }

    #[test]
    fn ids_never_reused() {
        let mut log = small_log(2);
        let e = obj("key", 100);
        let a = log.append(&e).unwrap();
        log.append(&e).unwrap();
        log.free_segment(a.position.segment, 0);
        assert_eq!(log.reclaim_retired(0), 1);
        let c = log.append(&e).unwrap();
        assert!(c.position.segment.0 > 1, "freed id must not be recycled");
    }

    #[test]
    fn reclaim_waits_for_outstanding_buffer_references() {
        let mut log = small_log(3);
        let e = obj("key", 100);
        let first = log.append(&e).unwrap();
        log.append(&e).unwrap();
        let victim = first.position.segment;
        // Simulate an outstanding zero-copy view: clone the buffer Arc the
        // way a `ValueView` does (through the lock-free map).
        let view = log.segment_map().get(victim).expect("published");
        log.retire_segment(victim, 1);
        assert!(
            log.segment_map().get(victim).is_none(),
            "retire unpublishes the buffer from the lock-free map"
        );
        // Epoch is safe, but the view still pins the bytes.
        assert_eq!(log.reclaim_retired(5), 0);
        assert_eq!(log.limbo_held_by_views(5), 1);
        assert_eq!(log.limbo_segments(), 1);
        drop(view);
        assert_eq!(log.reclaim_retired(5), 1);
        assert_eq!(log.limbo_held_by_views(5), 0);
    }
}
