//! On-log entry format: objects and tombstones, with checksums.
//!
//! Every record in a segment is serialized as
//!
//! ```text
//! +------+----------+---------+-----------+---------+----------+-----+-------+
//! | type | table id | key len | value len | version | checksum | key | value |
//! | 1 B  |   8 B    |  2 B    |   4 B     |  8 B    |   4 B    | ... |  ...  |
//! +------+----------+---------+-----------+---------+----------+-----+-------+
//! ```
//!
//! For tombstones the "value" is the 8-byte id of the segment that held the
//! deleted object — the cleaner uses it to decide when the tombstone itself
//! may be dropped (once that segment has been cleaned, no stale copy of the
//! object can ever be replayed).

use bytes::Bytes;

use crate::types::{SegmentId, TableId, Version};

/// Identifies one logical client operation for exactly-once semantics
/// (RIFL-style): retries of the same `(client, seq)` must not re-apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CompletionId {
    /// The issuing client.
    pub client: u64,
    /// The client's operation sequence number.
    pub seq: u64,
}

/// Fixed header size in bytes.
pub const HEADER_BYTES: usize = 1 + 8 + 2 + 4 + 8 + 4;

const TYPE_OBJECT: u8 = 0;
const TYPE_TOMBSTONE: u8 = 1;
/// Object carrying a RIFL completion record (16 extra trailing bytes).
const TYPE_OBJECT_RIFL: u8 = 2;

/// Largest supported key, in bytes.
pub const MAX_KEY_BYTES: usize = u16::MAX as usize;
/// Largest supported value, in bytes (1 MB, RAMCloud's object limit).
pub const MAX_VALUE_BYTES: usize = 1 << 20;

/// A deserialized log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogEntry {
    /// A live key-value object.
    Object(ObjectRecord),
    /// A deletion marker.
    Tombstone(TombstoneRecord),
}

/// A key-value object as stored in the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectRecord {
    /// Owning table.
    pub table: TableId,
    /// The key bytes.
    pub key: Bytes,
    /// The value bytes.
    pub value: Bytes,
    /// Version assigned at write time.
    pub version: Version,
    /// The client operation that produced this write, when exactly-once
    /// tracking is in use. Persisted with the entry so crash recovery can
    /// rebuild the duplicate-suppression table.
    pub completion: Option<CompletionId>,
}

/// A deletion marker as stored in the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TombstoneRecord {
    /// Owning table.
    pub table: TableId,
    /// The deleted key.
    pub key: Bytes,
    /// Version of the object this tombstone kills.
    pub version: Version,
    /// Segment that held the killed object when the delete ran.
    pub dead_segment: SegmentId,
}

/// Errors produced when parsing a log entry from bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseEntryError {
    /// The buffer is shorter than the declared entry.
    Truncated,
    /// The stored checksum does not match the recomputed one.
    ChecksumMismatch {
        /// Checksum stored in the entry.
        stored: u32,
        /// Checksum recomputed from the bytes.
        computed: u32,
    },
    /// The type byte is neither object nor tombstone.
    UnknownType(u8),
    /// A tombstone's value field has the wrong length.
    MalformedTombstone,
}

impl std::fmt::Display for ParseEntryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseEntryError::Truncated => write!(f, "log entry truncated"),
            ParseEntryError::ChecksumMismatch { stored, computed } => write!(
                f,
                "log entry checksum mismatch: stored {stored:#x}, computed {computed:#x}"
            ),
            ParseEntryError::UnknownType(t) => write!(f, "unknown log entry type {t}"),
            ParseEntryError::MalformedTombstone => write!(f, "malformed tombstone payload"),
        }
    }
}

impl std::error::Error for ParseEntryError {}

/// CRC-32 (Castagnoli polynomial, bitwise) over `bytes`.
///
/// Small and dependency-free; throughput is irrelevant here because entries
/// are checksummed once at append time.
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0x82F63B78 & mask);
        }
    }
    !crc
}

impl LogEntry {
    /// The owning table.
    pub fn table(&self) -> TableId {
        match self {
            LogEntry::Object(o) => o.table,
            LogEntry::Tombstone(t) => t.table,
        }
    }

    /// The key bytes.
    pub fn key(&self) -> &Bytes {
        match self {
            LogEntry::Object(o) => &o.key,
            LogEntry::Tombstone(t) => &t.key,
        }
    }

    /// The record version.
    pub fn version(&self) -> Version {
        match self {
            LogEntry::Object(o) => o.version,
            LogEntry::Tombstone(t) => t.version,
        }
    }

    /// Serialized size in bytes.
    pub fn serialized_len(&self) -> usize {
        let value_len = match self {
            LogEntry::Object(o) => o.value.len() + if o.completion.is_some() { 16 } else { 0 },
            LogEntry::Tombstone(_) => 8,
        };
        HEADER_BYTES + self.key().len() + value_len
    }

    /// Serializes the entry, appending to `out`.
    ///
    /// # Panics
    ///
    /// Panics if the key or value exceeds [`MAX_KEY_BYTES`] /
    /// [`MAX_VALUE_BYTES`]; the store validates sizes before reaching this
    /// point.
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        let (ty, table, key, version) = match self {
            LogEntry::Object(o) => (
                if o.completion.is_some() {
                    TYPE_OBJECT_RIFL
                } else {
                    TYPE_OBJECT
                },
                o.table,
                &o.key,
                o.version,
            ),
            LogEntry::Tombstone(t) => (TYPE_TOMBSTONE, t.table, &t.key, t.version),
        };
        let dead_segment_bytes;
        let mut rifl_value;
        let value: &[u8] = match self {
            LogEntry::Object(o) => {
                assert!(o.value.len() <= MAX_VALUE_BYTES, "value too large");
                match o.completion {
                    Some(c) => {
                        // Completion id rides after the value bytes; the
                        // declared value length includes it (type
                        // disambiguates on parse).
                        rifl_value = Vec::with_capacity(o.value.len() + 16);
                        rifl_value.extend_from_slice(&o.value);
                        rifl_value.extend_from_slice(&c.client.to_le_bytes());
                        rifl_value.extend_from_slice(&c.seq.to_le_bytes());
                        &rifl_value
                    }
                    None => &o.value,
                }
            }
            LogEntry::Tombstone(t) => {
                dead_segment_bytes = t.dead_segment.0.to_le_bytes();
                &dead_segment_bytes
            }
        };
        assert!(key.len() <= MAX_KEY_BYTES, "key too large");

        let start = out.len();
        out.push(ty);
        out.extend_from_slice(&table.0.to_le_bytes());
        out.extend_from_slice(&(key.len() as u16).to_le_bytes());
        out.extend_from_slice(&(value.len() as u32).to_le_bytes());
        out.extend_from_slice(&version.0.to_le_bytes());
        let checksum_at = out.len();
        out.extend_from_slice(&[0u8; 4]);
        out.extend_from_slice(key);
        out.extend_from_slice(value);
        // Checksum covers everything except the checksum field itself.
        let crc = {
            let body = &out[start..];
            let mut tmp = Vec::with_capacity(body.len());
            tmp.extend_from_slice(&body[..checksum_at - start]);
            tmp.extend_from_slice(&body[checksum_at - start + 4..]);
            crc32c(&tmp)
        };
        out[checksum_at..checksum_at + 4].copy_from_slice(&crc.to_le_bytes());
    }

    /// Parses the entry starting at the beginning of `buf`. Returns the
    /// entry and its total serialized length.
    ///
    /// # Errors
    ///
    /// Returns [`ParseEntryError`] when the buffer is truncated, corrupted,
    /// or structurally invalid.
    pub fn parse(buf: &[u8]) -> Result<(LogEntry, usize), ParseEntryError> {
        if buf.len() < HEADER_BYTES {
            return Err(ParseEntryError::Truncated);
        }
        let ty = buf[0];
        let table = TableId(u64::from_le_bytes(buf[1..9].try_into().unwrap()));
        let key_len = u16::from_le_bytes(buf[9..11].try_into().unwrap()) as usize;
        let value_len = u32::from_le_bytes(buf[11..15].try_into().unwrap()) as usize;
        let version = Version(u64::from_le_bytes(buf[15..23].try_into().unwrap()));
        let stored_crc = u32::from_le_bytes(buf[23..27].try_into().unwrap());
        let total = HEADER_BYTES + key_len + value_len;
        if buf.len() < total {
            return Err(ParseEntryError::Truncated);
        }
        let computed = {
            let mut tmp = Vec::with_capacity(total - 4);
            tmp.extend_from_slice(&buf[..23]);
            tmp.extend_from_slice(&buf[27..total]);
            crc32c(&tmp)
        };
        if computed != stored_crc {
            return Err(ParseEntryError::ChecksumMismatch {
                stored: stored_crc,
                computed,
            });
        }
        let key = Bytes::copy_from_slice(&buf[HEADER_BYTES..HEADER_BYTES + key_len]);
        let value = &buf[HEADER_BYTES + key_len..total];
        let entry = match ty {
            TYPE_OBJECT => LogEntry::Object(ObjectRecord {
                table,
                key,
                value: Bytes::copy_from_slice(value),
                version,
                completion: None,
            }),
            TYPE_OBJECT_RIFL => {
                if value.len() < 16 {
                    return Err(ParseEntryError::MalformedTombstone);
                }
                let split = value.len() - 16;
                let client = u64::from_le_bytes(value[split..split + 8].try_into().unwrap());
                let seq = u64::from_le_bytes(value[split + 8..].try_into().unwrap());
                LogEntry::Object(ObjectRecord {
                    table,
                    key,
                    value: Bytes::copy_from_slice(&value[..split]),
                    version,
                    completion: Some(CompletionId { client, seq }),
                })
            }
            TYPE_TOMBSTONE => {
                if value.len() != 8 {
                    return Err(ParseEntryError::MalformedTombstone);
                }
                LogEntry::Tombstone(TombstoneRecord {
                    table,
                    key,
                    version,
                    dead_segment: SegmentId(u64::from_le_bytes(value.try_into().unwrap())),
                })
            }
            other => return Err(ParseEntryError::UnknownType(other)),
        };
        Ok((entry, total))
    }
}

/// A borrowed, zero-copy look at an object entry: header fields decoded,
/// key borrowed in place, user value located as a byte range within the
/// parsed buffer. Produced by [`parse_object_view`] for the lock-free read
/// path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RawObject<'a> {
    /// Owning table.
    pub table: TableId,
    /// The key bytes, in place.
    pub key: &'a [u8],
    /// Start of the user value, relative to the start of `buf`.
    pub value_start: usize,
    /// End of the user value (exclusive; RIFL completion trailer excluded).
    pub value_end: usize,
    /// Version assigned at write time.
    pub version: Version,
}

/// Parses just enough of the entry at the start of `buf` to serve a read:
/// no copies and no checksum pass. Safe to use on committed segment bytes
/// because entries are checksummed once at append time and the committed
/// prefix of a segment is immutable; every length is still bounds-checked
/// against `buf`, so a stale offset can at worst produce a structured
/// error, never an out-of-bounds access.
///
/// Returns `Ok(None)` for a valid non-object entry (a tombstone).
pub(crate) fn parse_object_view(buf: &[u8]) -> Result<Option<RawObject<'_>>, ParseEntryError> {
    if buf.len() < HEADER_BYTES {
        return Err(ParseEntryError::Truncated);
    }
    let ty = buf[0];
    let table = TableId(u64::from_le_bytes(buf[1..9].try_into().unwrap()));
    let key_len = u16::from_le_bytes(buf[9..11].try_into().unwrap()) as usize;
    let value_len = u32::from_le_bytes(buf[11..15].try_into().unwrap()) as usize;
    let version = Version(u64::from_le_bytes(buf[15..23].try_into().unwrap()));
    let total = HEADER_BYTES + key_len + value_len;
    if buf.len() < total {
        return Err(ParseEntryError::Truncated);
    }
    let key = &buf[HEADER_BYTES..HEADER_BYTES + key_len];
    let value_start = HEADER_BYTES + key_len;
    match ty {
        TYPE_OBJECT => Ok(Some(RawObject {
            table,
            key,
            value_start,
            value_end: total,
            version,
        })),
        TYPE_OBJECT_RIFL => {
            if value_len < 16 {
                return Err(ParseEntryError::MalformedTombstone);
            }
            Ok(Some(RawObject {
                table,
                key,
                value_start,
                value_end: total - 16,
                version,
            }))
        }
        TYPE_TOMBSTONE => Ok(None),
        other => Err(ParseEntryError::UnknownType(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_object() -> LogEntry {
        LogEntry::Object(ObjectRecord {
            table: TableId(7),
            key: Bytes::from_static(b"user4312"),
            value: Bytes::from(vec![0xAB; 100]),
            version: Version(3),
            completion: None,
        })
    }

    fn sample_tombstone() -> LogEntry {
        LogEntry::Tombstone(TombstoneRecord {
            table: TableId(7),
            key: Bytes::from_static(b"user4312"),
            version: Version(4),
            dead_segment: SegmentId(12),
        })
    }

    #[test]
    fn object_roundtrip() {
        let entry = sample_object();
        let mut buf = Vec::new();
        entry.serialize_into(&mut buf);
        assert_eq!(buf.len(), entry.serialized_len());
        let (parsed, len) = LogEntry::parse(&buf).unwrap();
        assert_eq!(parsed, entry);
        assert_eq!(len, buf.len());
    }

    #[test]
    fn tombstone_roundtrip() {
        let entry = sample_tombstone();
        let mut buf = Vec::new();
        entry.serialize_into(&mut buf);
        let (parsed, _) = LogEntry::parse(&buf).unwrap();
        assert_eq!(parsed, entry);
    }

    #[test]
    fn parse_consumes_exact_length_with_trailing_data() {
        let mut buf = Vec::new();
        sample_object().serialize_into(&mut buf);
        let object_len = buf.len();
        sample_tombstone().serialize_into(&mut buf);
        let (first, len) = LogEntry::parse(&buf).unwrap();
        assert_eq!(first, sample_object());
        assert_eq!(len, object_len);
        let (second, _) = LogEntry::parse(&buf[len..]).unwrap();
        assert_eq!(second, sample_tombstone());
    }

    #[test]
    fn corruption_detected() {
        let mut buf = Vec::new();
        sample_object().serialize_into(&mut buf);
        // Flip a byte in the value.
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        match LogEntry::parse(&buf) {
            Err(ParseEntryError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncation_detected() {
        let mut buf = Vec::new();
        sample_object().serialize_into(&mut buf);
        buf.truncate(buf.len() - 1);
        assert_eq!(LogEntry::parse(&buf), Err(ParseEntryError::Truncated));
        assert_eq!(LogEntry::parse(&buf[..5]), Err(ParseEntryError::Truncated));
    }

    #[test]
    fn unknown_type_detected() {
        let mut buf = Vec::new();
        sample_object().serialize_into(&mut buf);
        buf[0] = 99;
        // Checksum now mismatches too; force it valid again by recomputing.
        let total = buf.len();
        let mut tmp = Vec::new();
        tmp.extend_from_slice(&buf[..23]);
        tmp.extend_from_slice(&buf[27..total]);
        let crc = crc32c(&tmp);
        buf[23..27].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(LogEntry::parse(&buf), Err(ParseEntryError::UnknownType(99)));
    }

    #[test]
    fn empty_key_and_value_supported() {
        let entry = LogEntry::Object(ObjectRecord {
            table: TableId(0),
            key: Bytes::new(),
            value: Bytes::new(),
            version: Version::FIRST,
            completion: None,
        });
        let mut buf = Vec::new();
        entry.serialize_into(&mut buf);
        assert_eq!(buf.len(), HEADER_BYTES);
        let (parsed, _) = LogEntry::parse(&buf).unwrap();
        assert_eq!(parsed, entry);
    }

    #[test]
    fn object_view_locates_value_without_copying() {
        let mut buf = Vec::new();
        sample_object().serialize_into(&mut buf);
        let view = parse_object_view(&buf).unwrap().expect("object");
        assert_eq!(view.table, TableId(7));
        assert_eq!(view.key, b"user4312");
        assert_eq!(view.version, Version(3));
        assert_eq!(&buf[view.value_start..view.value_end], &vec![0xAB; 100][..]);
        assert_eq!(view.value_end, buf.len());
    }

    #[test]
    fn object_view_strips_rifl_trailer() {
        let entry = LogEntry::Object(ObjectRecord {
            table: TableId(2),
            key: Bytes::from_static(b"k"),
            value: Bytes::from_static(b"payload"),
            version: Version(9),
            completion: Some(CompletionId { client: 4, seq: 11 }),
        });
        let mut buf = Vec::new();
        entry.serialize_into(&mut buf);
        let view = parse_object_view(&buf).unwrap().expect("object");
        assert_eq!(&buf[view.value_start..view.value_end], b"payload");
        assert_eq!(view.value_end + 16, buf.len());
    }

    #[test]
    fn object_view_skips_tombstones_and_bounds_checks() {
        let mut buf = Vec::new();
        sample_tombstone().serialize_into(&mut buf);
        assert!(parse_object_view(&buf).unwrap().is_none());
        let mut obj = Vec::new();
        sample_object().serialize_into(&mut obj);
        assert_eq!(
            parse_object_view(&obj[..obj.len() - 1]),
            Err(ParseEntryError::Truncated)
        );
        assert_eq!(
            parse_object_view(&obj[..5]),
            Err(ParseEntryError::Truncated)
        );
    }

    #[test]
    fn crc32c_known_vector() {
        // "123456789" -> 0xE3069283 (CRC-32C check value).
        assert_eq!(crc32c(b"123456789"), 0xE3069283);
        assert_eq!(crc32c(b""), 0);
    }
}
