//! Identifiers and fundamental value types.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies a table. RAMCloud stores data in tables that may span several
/// masters; within one master the table id namespaces keys.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TableId(pub u64);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "table#{}", self.0)
    }
}

/// Monotonically increasing per-object version, used to order overwrites and
/// to let tombstones invalidate exactly the version they delete.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Version(pub u64);

impl Version {
    /// The version assigned to the first write of an object.
    pub const FIRST: Version = Version(1);

    /// The next version after this one.
    pub fn next(self) -> Version {
        Version(self.0 + 1)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Index of a segment within a master's log. Segment ids are never reused,
/// so a (segment, offset) pair uniquely names a log entry forever.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SegmentId(pub u64);

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg#{}", self.0)
    }
}

/// The address of an entry in the log: which segment and the byte offset of
/// its header within that segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LogPosition {
    /// The segment holding the entry.
    pub segment: SegmentId,
    /// Byte offset of the entry header inside the segment.
    pub offset: u32,
}

impl fmt::Display for LogPosition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}", self.segment, self.offset)
    }
}

/// 64-bit FNV-1a hash of a `(table, key)` pair; the unit of indexing in the
/// hash table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KeyHash(pub u64);

/// Computes the [`KeyHash`] for a key within a table.
pub fn key_hash(table: TableId, key: &[u8]) -> KeyHash {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    for b in table.0.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    KeyHash(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_increment() {
        assert_eq!(Version::FIRST.next(), Version(2));
        assert!(Version(2) > Version::FIRST);
    }

    #[test]
    fn key_hash_depends_on_table_and_key() {
        let a = key_hash(TableId(1), b"k");
        let b = key_hash(TableId(2), b"k");
        let c = key_hash(TableId(1), b"l");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, key_hash(TableId(1), b"k"));
    }

    #[test]
    fn display_formats() {
        assert_eq!(TableId(3).to_string(), "table#3");
        assert_eq!(Version(9).to_string(), "v9");
        assert_eq!(
            LogPosition {
                segment: SegmentId(2),
                offset: 100
            }
            .to_string(),
            "seg#2+100"
        );
    }
}
