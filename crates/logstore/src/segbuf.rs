//! Pinned, refcounted segment memory for the lock-free read path.
//!
//! [`SegmentBuf`] is a fixed-capacity byte buffer whose allocation never
//! moves: appends go through a raw pointer past the committed length, and
//! the committed length is published with a `Release` store so concurrent
//! readers that `Acquire`-load it see every byte below it fully written.
//! Segments hold their bytes in an `Arc<SegmentBuf>`, which is what makes
//! zero-copy [`ValueView`](crate::ValueView)s possible: a view clones the
//! `Arc` and indexes into the committed prefix, keeping the memory alive
//! (and immutable — committed bytes are never rewritten) for as long as the
//! view lives, even after the cleaner retires and "frees" the segment.
//!
//! [`SegmentMap`] is the lock-free registry readers use to resolve a
//! [`SegmentId`] to its buffer without taking the store lock: a chunked
//! lock-free vector of `AtomicPtr`s (segment ids are minted monotonically
//! and never reused, so the id is a stable dense index). Writers publish a
//! segment when it enters the log and unpublish it when it is retired into
//! the epoch limbo list; readers resolve ids only while holding an epoch
//! pin, which is what makes the `Arc::increment_strong_count` upgrade safe
//! (the limbo list cannot drop the final `Arc` until the reader's epoch has
//! passed — see `DESIGN.md` §4e).

use std::alloc::{alloc, dealloc, Layout};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::types::SegmentId;

/// A fixed-capacity append-only byte buffer with an atomically published
/// committed length.
///
/// Invariants (enforced by the owning [`Segment`](crate::Segment)):
/// - exactly one writer appends at a time (`append` is reached only through
///   `&mut Segment`);
/// - bytes below the committed length are never written again;
/// - the allocation never moves or shrinks.
pub(crate) struct SegmentBuf {
    ptr: NonNull<u8>,
    capacity: usize,
    /// Committed length: `Release`-stored by the writer after the bytes are
    /// in place, `Acquire`-loaded by readers.
    len: AtomicUsize,
}

// SAFETY: the raw pointer is owned (allocated in `new`, freed in `drop`);
// all shared access is confined to the committed prefix, which is immutable
// and published with Release/Acquire on `len`.
unsafe impl Send for SegmentBuf {}
unsafe impl Sync for SegmentBuf {}

impl std::fmt::Debug for SegmentBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentBuf")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl SegmentBuf {
    /// Allocates an empty buffer of exactly `capacity` bytes (uninitialized;
    /// readers can only ever see bytes the writer has committed).
    pub(crate) fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let layout = Layout::array::<u8>(capacity).expect("segment capacity fits a layout");
        // SAFETY: layout has non-zero size (capacity >= 1).
        let raw = unsafe { alloc(layout) };
        let ptr = NonNull::new(raw).unwrap_or_else(|| std::alloc::handle_alloc_error(layout));
        SegmentBuf {
            ptr,
            capacity,
            len: AtomicUsize::new(0),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Committed length (safe to read `committed()[..len()]`).
    pub(crate) fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// The committed prefix. Every byte in the returned slice was fully
    /// written before the length was published and will never change.
    pub(crate) fn committed(&self) -> &[u8] {
        let len = self.len.load(Ordering::Acquire);
        // SAFETY: bytes below the committed length are initialized and
        // immutable; the allocation outlives `&self`.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), len) }
    }

    /// Appends `bytes`, returning the offset they start at.
    ///
    /// # Safety contract (checked)
    ///
    /// The caller must be the sole writer; `Segment` guarantees this by
    /// only calling through `&mut self`. Panics if the bytes do not fit —
    /// callers check `free()` first.
    pub(crate) fn append(&self, bytes: &[u8]) -> usize {
        let len = self.len.load(Ordering::Relaxed);
        assert!(
            len + bytes.len() <= self.capacity,
            "segment buffer overflow: {} + {} > {}",
            len,
            bytes.len(),
            self.capacity
        );
        // SAFETY: region [len, len + bytes.len()) is in bounds, not yet
        // committed, and no other writer exists.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), self.ptr.as_ptr().add(len), bytes.len());
        }
        self.len.store(len + bytes.len(), Ordering::Release);
        len
    }
}

impl Drop for SegmentBuf {
    fn drop(&mut self) {
        let layout = Layout::array::<u8>(self.capacity).expect("layout checked at alloc");
        // SAFETY: allocated with the identical layout in `new`.
        unsafe { dealloc(self.ptr.as_ptr(), layout) };
    }
}

/// Number of chunks in the [`SegmentMap`]; chunk `c` holds `2^c` entries,
/// so 48 chunks cover every segment id a run could mint.
const MAP_CHUNKS: usize = 48;

/// Index of `id` as (chunk, offset within chunk).
fn map_index(id: u64) -> (usize, usize) {
    let idx = id + 1; // 1-based so chunk = floor(log2)
    let chunk = (u64::BITS - 1 - idx.leading_zeros()) as usize;
    (chunk, (idx - (1u64 << chunk)) as usize)
}

/// Lock-free `SegmentId → Arc<SegmentBuf>` registry for epoch-pinned readers.
///
/// Writers (the store, under its exclusive path) `publish` a segment's
/// buffer when the segment enters the log and `unpublish` it when the
/// segment is retired; the returned `Arc` then lives in the limbo list
/// until both the epoch has passed and all reader views have dropped.
pub(crate) struct SegmentMap {
    chunks: [AtomicPtr<AtomicPtr<SegmentBuf>>; MAP_CHUNKS],
}

impl std::fmt::Debug for SegmentMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SegmentMap")
    }
}

impl Default for SegmentMap {
    fn default() -> Self {
        Self::new()
    }
}

impl SegmentMap {
    pub(crate) fn new() -> Self {
        SegmentMap {
            chunks: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
        }
    }

    /// Loads the chunk for `id`, allocating it if the writer has not yet
    /// (readers never allocate: an unallocated chunk means the id was never
    /// published, i.e. a miss).
    fn chunk(&self, chunk: usize, allocate: bool) -> Option<&[AtomicPtr<SegmentBuf>]> {
        let slot = &self.chunks[chunk];
        let mut ptr = slot.load(Ordering::Acquire);
        if ptr.is_null() {
            if !allocate {
                return None;
            }
            let size = 1usize << chunk;
            let fresh: Box<[AtomicPtr<SegmentBuf>]> = (0..size)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect();
            let raw = Box::into_raw(fresh) as *mut AtomicPtr<SegmentBuf>;
            match slot.compare_exchange(
                std::ptr::null_mut(),
                raw,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => ptr = raw,
                Err(existing) => {
                    // Lost a (writer/writer) race; free ours, use theirs.
                    // SAFETY: `raw` came from Box::into_raw above and was
                    // never published.
                    drop(unsafe { Box::from_raw(std::ptr::slice_from_raw_parts_mut(raw, size)) });
                    ptr = existing;
                }
            }
        }
        let size = 1usize << chunk;
        // SAFETY: published chunk pointers are valid for the lifetime of the
        // map (chunks are never freed until Drop).
        Some(unsafe { std::slice::from_raw_parts(ptr, size) })
    }

    /// Publishes `buf` under `id`. Writer-side only.
    pub(crate) fn publish(&self, id: SegmentId, buf: &Arc<SegmentBuf>) {
        let (c, off) = map_index(id.0);
        let chunk = self.chunk(c, true).expect("allocated");
        let raw = Arc::into_raw(Arc::clone(buf)) as *mut SegmentBuf;
        let prev = chunk[off].swap(raw, Ordering::AcqRel);
        assert!(prev.is_null(), "segment {id} published twice");
    }

    /// Removes `id` from the map, returning the registry's `Arc` so the
    /// caller (the limbo list) keeps the buffer alive. Writer-side only.
    pub(crate) fn unpublish(&self, id: SegmentId) -> Option<Arc<SegmentBuf>> {
        let (c, off) = map_index(id.0);
        let chunk = self.chunk(c, false)?;
        let raw = chunk[off].swap(std::ptr::null_mut(), Ordering::AcqRel);
        if raw.is_null() {
            return None;
        }
        // SAFETY: `raw` came from `Arc::into_raw` in `publish`.
        Some(unsafe { Arc::from_raw(raw) })
    }

    /// Resolves `id` to an owned handle on its buffer.
    ///
    /// # Safety contract
    ///
    /// Must be called while the caller holds an epoch pin: the pin
    /// guarantees that a concurrently retired segment's final `Arc` (held in
    /// the limbo list) cannot be dropped before the pin is released, so the
    /// strong-count increment below can never race the final drop.
    pub(crate) fn get(&self, id: SegmentId) -> Option<Arc<SegmentBuf>> {
        let (c, off) = map_index(id.0);
        let chunk = self.chunk(c, false)?;
        let raw = chunk[off].load(Ordering::Acquire);
        if raw.is_null() {
            return None;
        }
        // SAFETY: `raw` came from `Arc::into_raw`; the epoch pin (caller
        // contract) keeps the Arc alive across the increment.
        unsafe {
            Arc::increment_strong_count(raw);
            Some(Arc::from_raw(raw))
        }
    }
}

impl Drop for SegmentMap {
    fn drop(&mut self) {
        for (c, slot) in self.chunks.iter().enumerate() {
            let ptr = slot.load(Ordering::Acquire);
            if ptr.is_null() {
                continue;
            }
            let size = 1usize << c;
            // SAFETY: published in `chunk` via Box::into_raw; sole owner now.
            let chunk = unsafe { Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, size)) };
            for entry in chunk.iter() {
                let raw = entry.load(Ordering::Acquire);
                if !raw.is_null() {
                    // SAFETY: from Arc::into_raw in `publish`.
                    drop(unsafe { Arc::from_raw(raw) });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_publishes_committed_prefix() {
        let buf = SegmentBuf::new(64);
        assert_eq!(buf.len(), 0);
        assert_eq!(buf.committed(), &[] as &[u8]);
        let off = buf.append(b"hello");
        assert_eq!(off, 0);
        assert_eq!(buf.append(b" world"), 5);
        assert_eq!(buf.committed(), b"hello world");
        assert_eq!(buf.capacity(), 64);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn append_past_capacity_panics() {
        let buf = SegmentBuf::new(4);
        buf.append(b"hello");
    }

    #[test]
    fn map_roundtrip_and_unpublish() {
        let map = SegmentMap::new();
        let a = Arc::new(SegmentBuf::new(8));
        a.append(b"x");
        map.publish(SegmentId(0), &a);
        map.publish(SegmentId(7), &a);
        let got = map.get(SegmentId(0)).expect("published");
        assert_eq!(got.committed(), b"x");
        assert!(map.get(SegmentId(3)).is_none());
        let back = map.unpublish(SegmentId(0)).expect("was present");
        assert!(Arc::ptr_eq(&back, &a));
        assert!(map.get(SegmentId(0)).is_none());
        assert!(map.unpublish(SegmentId(0)).is_none());
        drop(map); // drops the id-7 registration
        assert_eq!(Arc::strong_count(&a), 3); // a, got, back
        drop((got, back));
        assert_eq!(Arc::strong_count(&a), 1);
    }

    #[test]
    fn map_index_is_dense_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for id in 0..10_000u64 {
            let (c, off) = map_index(id);
            assert!(off < (1usize << c));
            assert!(seen.insert((c, off)));
        }
    }

    #[test]
    fn concurrent_readers_see_only_committed_bytes() {
        let buf = Arc::new(SegmentBuf::new(1 << 16));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let buf = Arc::clone(&buf);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        let committed = buf.committed();
                        // Every committed byte must be from a finished
                        // append: the writer writes monotone run markers.
                        for chunk in committed.chunks(16) {
                            let first = chunk[0];
                            assert!(chunk.iter().all(|&b| b == first), "torn append visible");
                        }
                    }
                })
            })
            .collect();
        for i in 0..(1 << 12) {
            buf.append(&[(i % 251) as u8; 16]);
        }
        stop.store(true, Ordering::Release);
        for r in readers {
            r.join().unwrap();
        }
    }
}
