//! The lock-free, zero-copy read path: epoch-pinned probes returning
//! refcounted views into live segment memory.
//!
//! A [`ReadHandle`] bundles everything one read needs without the store
//! lock: the index's seqlock-protected slot array, the lock-free
//! segment-id → buffer map, the epoch tracker, and the read counters. The
//! handle is `Clone + Send + Sync`; the standalone server hands one to every
//! dispatch thread so `read` RPCs never touch the shard `RwLock`.
//!
//! A successful read returns an [`ObjectView`] whose [`ValueView`] indexes
//! straight into the segment's committed bytes — no copy. The view clones
//! the segment buffer's `Arc`, so the bytes stay allocated (and, being a
//! committed log prefix, immutable) even if the cleaner retires the segment
//! while the view is alive; the limbo list refuses to reclaim a buffer whose
//! strong count shows outstanding views. See `DESIGN.md` §4e for the full
//! memory-safety argument.

use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;

use crate::entry::parse_object_view;
use crate::epoch::EpochTracker;
use crate::hashtable::{CandidateBuf, IndexShared};
use crate::segbuf::{SegmentBuf, SegmentMap};
use crate::types::{key_hash, TableId, Version};

/// Error: the lock-free probe kept colliding with the writer (or the index
/// churned under it) for the entire retry budget. The caller should fall
/// back to the locked read path — correctness never depends on the
/// lock-free path succeeding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadContended;

impl std::fmt::Display for ReadContended {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lock-free read contended; retry under the lock")
    }
}

impl std::error::Error for ReadContended {}

/// Shared read-path counters: hit/miss totals, how many reads completed
/// lock-free vs. fell back to the lock, and the live value-view gauge.
///
/// One instance per [`Store`](crate::Store), shared by the store's locked
/// read path and every [`ReadHandle`] cloned from it, so the totals are a
/// single source of truth regardless of which path served a read.
#[derive(Debug, Default)]
pub struct ReadCounters {
    pub(crate) read_hits: AtomicU64,
    pub(crate) read_misses: AtomicU64,
    pub(crate) read_lockfree: AtomicU64,
    pub(crate) read_fallback_locked: AtomicU64,
    pub(crate) value_views_live: AtomicU64,
}

impl ReadCounters {
    /// Reads that found the key (either path).
    pub fn hits(&self) -> u64 {
        self.read_hits.load(Ordering::Relaxed)
    }

    /// Reads that missed (either path).
    pub fn misses(&self) -> u64 {
        self.read_misses.load(Ordering::Relaxed)
    }

    /// Reads completed on the lock-free path.
    pub fn lockfree(&self) -> u64 {
        self.read_lockfree.load(Ordering::Relaxed)
    }

    /// Reads that hit [`ReadContended`] and were served under the lock.
    pub fn fallback_locked(&self) -> u64 {
        self.read_fallback_locked.load(Ordering::Relaxed)
    }

    /// Zero-copy value views currently alive (a gauge, not a counter).
    pub fn value_views_live(&self) -> u64 {
        self.value_views_live.load(Ordering::Relaxed)
    }

    /// Records one contended read served by the locked fallback. Called by
    /// the layer that owns the lock (e.g. the sharded store), since the
    /// handle itself never takes it.
    pub fn record_fallback_locked(&self) {
        self.read_fallback_locked.fetch_add(1, Ordering::Relaxed);
    }
}

/// How a [`ValueView`] holds its bytes.
enum Repr {
    /// An owned (copied) value — the `LockedCopy` baseline and the
    /// contended-fallback representation. `Bytes` is refcounted, so clones
    /// of an owned view are still cheap.
    Owned(Bytes),
    /// A zero-copy window into a live segment buffer. The `Arc` keeps the
    /// buffer allocated past retirement; the counters entry maintains the
    /// `value_views_live` gauge.
    Segment {
        buf: Arc<SegmentBuf>,
        start: usize,
        end: usize,
        counters: Arc<ReadCounters>,
    },
}

/// A cheaply clonable handle on one object's value bytes.
///
/// Dereferences to `&[u8]`. Zero-copy views (the normal case on the
/// lock-free path) pin their segment's memory — holding one for a long time
/// delays reclamation of that segment, which the
/// `limbo_held_by_views` statistic makes visible.
pub struct ValueView {
    repr: Repr,
}

impl ValueView {
    /// Wraps an owned, already-copied value (the non-zero-copy baseline).
    pub fn owned(bytes: Bytes) -> Self {
        ValueView {
            repr: Repr::Owned(bytes),
        }
    }

    /// A zero-copy window `[start, end)` into `buf`'s committed prefix.
    pub(crate) fn segment(
        buf: Arc<SegmentBuf>,
        start: usize,
        end: usize,
        counters: Arc<ReadCounters>,
    ) -> Self {
        debug_assert!(start <= end && end <= buf.len());
        counters.value_views_live.fetch_add(1, Ordering::Relaxed);
        ValueView {
            repr: Repr::Segment {
                buf,
                start,
                end,
                counters,
            },
        }
    }

    /// The value bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Owned(b) => b,
            Repr::Segment {
                buf, start, end, ..
            } => &buf.committed()[*start..*end],
        }
    }

    /// Copies the bytes out (the boundary between zero-copy internals and
    /// owning callers).
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// True when this view points into segment memory rather than an owned
    /// copy — i.e. it is pinning a segment buffer alive.
    pub fn is_zero_copy(&self) -> bool {
        matches!(self.repr, Repr::Segment { .. })
    }
}

impl Clone for ValueView {
    fn clone(&self) -> Self {
        match &self.repr {
            Repr::Owned(b) => ValueView::owned(b.clone()),
            Repr::Segment {
                buf,
                start,
                end,
                counters,
            } => ValueView::segment(Arc::clone(buf), *start, *end, Arc::clone(counters)),
        }
    }
}

impl Drop for ValueView {
    fn drop(&mut self) {
        if let Repr::Segment { counters, .. } = &self.repr {
            counters.value_views_live.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

impl Deref for ValueView {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for ValueView {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for ValueView {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for ValueView {}

impl std::fmt::Debug for ValueView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ValueView")
            .field("len", &self.as_slice().len())
            .field("zero_copy", &self.is_zero_copy())
            .finish()
    }
}

/// The result of a read: the object's metadata plus a [`ValueView`] on its
/// value. The key is omitted — the caller supplied it.
#[derive(Debug, Clone)]
pub struct ObjectView {
    /// Table the object belongs to.
    pub table: TableId,
    /// The object's version.
    pub version: Version,
    /// The value bytes.
    pub value: ValueView,
}

/// Attempts before a lock-free read gives up and reports [`ReadContended`].
/// Each retry means the writer mutated the index mid-probe (or a candidate
/// pointed into a just-retired segment); sustained interference across this
/// many attempts is pathological, so punt to the lock instead of spinning.
const MAX_ATTEMPTS: usize = 16;

/// A lock-free reader for one store, safe to clone into any thread.
///
/// Obtained from [`Store::read_handle`](crate::Store::read_handle).
/// [`ReadHandle::try_read`] never blocks and never takes the store lock; it
/// can fail with [`ReadContended`] under pathological writer interference,
/// in which case the caller serves the read under the lock.
#[derive(Debug, Clone)]
pub struct ReadHandle {
    index: Arc<IndexShared>,
    segments: Arc<SegmentMap>,
    epoch: Arc<EpochTracker>,
    counters: Arc<ReadCounters>,
}

impl ReadHandle {
    pub(crate) fn new(
        index: Arc<IndexShared>,
        segments: Arc<SegmentMap>,
        epoch: Arc<EpochTracker>,
        counters: Arc<ReadCounters>,
    ) -> Self {
        ReadHandle {
            index,
            segments,
            epoch,
            counters,
        }
    }

    /// The read counters shared with the owning store.
    pub fn counters(&self) -> &Arc<ReadCounters> {
        &self.counters
    }

    /// Reads `key` without taking any lock, returning a zero-copy view.
    ///
    /// The read pins the current epoch for its duration; the returned view
    /// then keeps its segment's bytes alive on its own (refcount), so the
    /// view may be held arbitrarily long after this call returns.
    ///
    /// # Errors
    ///
    /// [`ReadContended`] after `MAX_ATTEMPTS` failed probe validations —
    /// the caller should fall back to the locked path (and record it via
    /// [`ReadCounters::record_fallback_locked`]).
    pub fn try_read(
        &self,
        table: TableId,
        key: &[u8],
    ) -> Result<Option<ObjectView>, ReadContended> {
        let hash = key_hash(table, key);
        let _pin = self.epoch.pin();
        let mut candidates = CandidateBuf::new();
        let mut attempts = 0;
        'retry: loop {
            attempts += 1;
            if attempts > MAX_ATTEMPTS {
                return Err(ReadContended);
            }
            if !self.index.try_candidates(hash, &mut candidates) {
                std::hint::spin_loop();
                continue 'retry;
            }
            for &pos in candidates.as_slice() {
                let Some(seg) = self.segments.get(pos.segment) else {
                    // The snapshot was valid, but the segment has since been
                    // retired: the index must have swung this key to a new
                    // position (the cleaner relocates live entries before
                    // retiring a victim). Re-probe; never report a miss off
                    // a stale candidate.
                    continue 'retry;
                };
                let committed = seg.committed();
                let start = pos.offset as usize;
                if start >= committed.len() {
                    // Offset beyond the committed prefix: a stale candidate
                    // from a slot the writer is reusing. Re-probe.
                    continue 'retry;
                }
                // No per-read CRC here: entries were checksummed at append,
                // committed bytes are immutable, and `parse_object_view`
                // bounds-checks every length it trusts.
                match parse_object_view(&committed[start..]) {
                    Ok(Some(raw)) if raw.table == table && raw.key == key => {
                        let version = raw.version;
                        let (value_start, value_end) =
                            (start + raw.value_start, start + raw.value_end);
                        let value = ValueView::segment(
                            seg,
                            value_start,
                            value_end,
                            Arc::clone(&self.counters),
                        );
                        self.counters.read_lockfree.fetch_add(1, Ordering::Relaxed);
                        self.counters.read_hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(Some(ObjectView {
                            table,
                            version,
                            value,
                        }));
                    }
                    // A different key colliding on the 64-bit hash: keep
                    // scanning the remaining candidates.
                    Ok(Some(_)) => {}
                    // A tombstone or unparsable bytes behind a validated
                    // candidate means the slot went stale between the probe
                    // and the parse. Re-probe.
                    Ok(None) | Err(_) => continue 'retry,
                }
            }
            self.counters.read_lockfree.fetch_add(1, Ordering::Relaxed);
            self.counters.read_misses.fetch_add(1, Ordering::Relaxed);
            return Ok(None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogConfig;
    use crate::store::Store;

    const T: TableId = TableId(1);

    fn store() -> Store {
        Store::new(LogConfig {
            segment_bytes: 512,
            max_segments: 64,
            ordered_index: false,
        })
    }

    #[test]
    fn lock_free_read_returns_zero_copy_view() {
        let mut s = store();
        s.write(T, b"k", b"value-bytes").unwrap();
        let h = s.read_handle();
        let view = h.try_read(T, b"k").unwrap().expect("present");
        assert_eq!(&view.value[..], b"value-bytes");
        assert_eq!(view.version, Version::FIRST);
        assert!(view.value.is_zero_copy());
        // The view's bytes are literally the segment's bytes.
        let seg = s.log().segment(crate::types::SegmentId(0)).unwrap();
        let seg_range = seg.as_bytes().as_ptr_range();
        assert!(seg_range.contains(&view.value.as_slice().as_ptr()));
        assert!(h.try_read(T, b"missing").unwrap().is_none());
    }

    #[test]
    fn view_gauge_tracks_clones_and_drops() {
        let mut s = store();
        s.write(T, b"k", b"v").unwrap();
        let h = s.read_handle();
        assert_eq!(h.counters().value_views_live(), 0);
        let a = h.try_read(T, b"k").unwrap().unwrap();
        assert_eq!(h.counters().value_views_live(), 1);
        let b = a.clone();
        assert_eq!(h.counters().value_views_live(), 2);
        drop(a);
        drop(b);
        assert_eq!(h.counters().value_views_live(), 0);
        // Owned views don't touch the gauge.
        let o = ValueView::owned(Bytes::from_static(b"x"));
        assert!(!o.is_zero_copy());
        assert_eq!(h.counters().value_views_live(), 0);
    }

    #[test]
    fn counters_are_shared_between_paths() {
        let mut s = store();
        s.write(T, b"k", b"v").unwrap();
        let h = s.read_handle();
        let _ = s.read(T, b"k"); // locked-path hit
        let _ = h.try_read(T, b"k").unwrap(); // lock-free hit
        let _ = h.try_read(T, b"gone").unwrap(); // lock-free miss
        let st = s.stats();
        assert_eq!((st.read_hits, st.read_misses), (2, 1));
        assert_eq!(st.read_lockfree, 2);
        assert_eq!(st.read_fallback_locked, 0);
        h.counters().record_fallback_locked();
        assert_eq!(s.stats().read_fallback_locked, 1);
    }

    #[test]
    fn view_outlives_overwrite_and_inline_clean() {
        // A held view must keep returning the exact bytes it resolved, even
        // after the key is overwritten many times and cleaning retires the
        // original segment.
        let mut s = store();
        s.write(T, b"stable", b"original").unwrap();
        let h = s.read_handle();
        let view = h.try_read(T, b"stable").unwrap().unwrap();
        assert_eq!(&view.value[..], b"original");
        for i in 0..2000u32 {
            s.write(T, b"stable", format!("overwrite-{i}").as_bytes())
                .unwrap();
            s.write(T, format!("churn-{}", i % 40).as_bytes(), &[0u8; 64])
                .unwrap();
        }
        assert!(s.stats().cleanings > 0, "churn must have cleaned");
        // The old bytes are unreachable through the index…
        assert_eq!(
            &h.try_read(T, b"stable").unwrap().unwrap().value[..],
            b"overwrite-1999"
        );
        // …but the held view still pins the original, unmutated.
        assert_eq!(&view.value[..], b"original");
        assert_eq!(view.version, Version::FIRST);
    }

    #[test]
    fn reads_agree_with_locked_path_under_mutation() {
        let mut s = store();
        let h = s.read_handle();
        for i in 0..200u32 {
            let key = format!("k{}", i % 16);
            s.write(T, key.as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
            if i % 7 == 0 {
                s.delete(T, key.as_bytes()).unwrap();
            }
            for j in 0..16u32 {
                let key = format!("k{j}");
                let locked = s.peek(T, key.as_bytes());
                let lockfree = h.try_read(T, key.as_bytes()).unwrap();
                match (locked, lockfree) {
                    (Some(rec), Some(view)) => {
                        assert_eq!(rec.version, view.version);
                        assert_eq!(&rec.value[..], &view.value[..]);
                    }
                    (None, None) => {}
                    (a, b) => panic!("paths disagree on {key}: {a:?} vs {b:?}"),
                }
            }
        }
    }
}
