//! The log cleaner: two levels, runnable concurrently with readers.
//!
//! RAMCloud's log-structured memory reclaims dead space by *cleaning*: pick
//! closed segments with little live data, relocate the live entries, update
//! the index, and recycle the segments. This module implements cleaning at
//! two levels, mirroring RAMCloud's design:
//!
//! - **In-memory compaction** ([`CleanKind::Compact`]) squeezes the dead
//!   bytes out of a *single* segment by copying its live entries into a
//!   tightly packed survivor that charges the memory budget only its
//!   seglet-rounded length. Cheap (one segment of work) and it frees bytes,
//!   but never whole segment slots and never tombstones.
//! - **Combined cleaning** ([`CleanKind::Combined`]) merges several victims
//!   chosen by the classic LFS cost-benefit score
//!
//!   ```text
//!   benefit / cost = (1 − u) · (age + 1) / (1 + u)
//!   ```
//!
//!   (`u` = live fraction, age = head rolls since creation) into survivor
//!   segments, dropping expired tombstones along the way and freeing whole
//!   slots.
//!
//! A balancer ([`Store::clean_pressure`]) picks the level from free-slot
//! pressure and the write rate since the last pass.
//!
//! # The concurrent protocol
//!
//! Cleaning is split into three phases so that a background thread can do
//! the expensive byte-copying without stalling service threads:
//!
//! 1. [`Store::prepare_clean`] (`&self`, brief shared lock): select victims,
//!    snapshot them, pre-filter entry liveness against the index, and
//!    reserve survivor segment ids.
//! 2. [`CleanPlan::build`] (no lock at all): memcpy the live entries into
//!    survivor segments.
//! 3. [`Store::apply_clean`] (`&mut self`, brief exclusive lock): re-verify
//!    each relocation against the index (entries may have died in the
//!    meantime), atomically swing the index, install the survivors, retire
//!    the victims into an epoch-stamped limbo list, and reclaim whatever
//!    the epoch scheme (see [`crate::epoch`]) already allows.
//!
//! [`Store::clean_step`] runs all three back-to-back under one borrow — the
//! deterministic driver used by the simulated engine and by tests.
//!
//! The paper's workloads were deliberately sized *not* to trigger the
//! cleaner (Section III-C) — the cleaner-ablation benchmark measures
//! exactly what the paper avoided.

use std::collections::BTreeMap;

use crate::entry::LogEntry;
use crate::segment::Segment;
use crate::store::Store;
use crate::types::{key_hash, KeyHash, LogPosition, SegmentId};

/// Cleaner policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CleanerConfig {
    /// Master switch; when off, a full log surfaces as
    /// [`crate::StoreError::OutOfMemory`].
    pub enabled: bool,
    /// Start cleaning when free segment slots drop to this reserve. The
    /// reserve guarantees the cleaner has room to relocate into.
    pub min_free_slots: usize,
    /// Keep cleaning until this many slots are free (or no candidates
    /// remain).
    pub target_free_slots: usize,
    /// Do not clean segments with live fraction above this (cleaning them
    /// costs almost a full segment of writes for almost no gain).
    pub max_candidate_utilization: f64,
    /// Enable the cheap in-memory compaction level. When off, every pass is
    /// a combined clean.
    pub compaction: bool,
    /// Most victims merged by one combined pass.
    pub max_victims: usize,
    /// Clean synchronously on the write path when free slots fall to
    /// `min_free_slots`. Turned off when a background cleaner thread (or
    /// the simulator's per-event [`Store::clean_step`] hook) owns cleaning;
    /// the write path then cleans inline only as a last resort before
    /// reporting out-of-memory.
    pub proactive: bool,
}

impl Default for CleanerConfig {
    fn default() -> Self {
        CleanerConfig {
            enabled: true,
            min_free_slots: 2,
            target_free_slots: 4,
            max_candidate_utilization: 0.97,
            compaction: true,
            max_victims: 8,
            proactive: true,
        }
    }
}

/// A degenerate [`CleanerConfig`] rejected by [`CleanerConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CleanerConfigError {
    /// `min_free_slots` exceeds `target_free_slots`: every pass would stop
    /// short of its own trigger and the cleaner would spin forever.
    MinAboveTarget {
        /// The configured `min_free_slots`.
        min: usize,
        /// The configured `target_free_slots`.
        target: usize,
    },
    /// `target_free_slots` is not below the total segment slots: the target
    /// is unreachable (the head always occupies a slot) and the cleaner
    /// would spin forever.
    TargetAboveCapacity {
        /// The configured `target_free_slots`.
        target: usize,
        /// The log's `max_segments`.
        max_segments: usize,
    },
    /// `max_victims` is zero: a combined pass could never pick a victim.
    NoVictims,
    /// `max_candidate_utilization` outside `(0, 1]`.
    BadUtilization(f64),
}

impl std::fmt::Display for CleanerConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CleanerConfigError::MinAboveTarget { min, target } => write!(
                f,
                "min_free_slots ({min}) exceeds target_free_slots ({target})"
            ),
            CleanerConfigError::TargetAboveCapacity {
                target,
                max_segments,
            } => write!(
                f,
                "target_free_slots ({target}) must be below max_segments ({max_segments})"
            ),
            CleanerConfigError::NoVictims => write!(f, "max_victims must be at least 1"),
            CleanerConfigError::BadUtilization(u) => {
                write!(f, "max_candidate_utilization ({u}) must be in (0, 1]")
            }
        }
    }
}

impl std::error::Error for CleanerConfigError {}

impl CleanerConfig {
    /// Checks the knobs against a log of `max_segments` slots. A disabled
    /// cleaner is always valid — its knobs are never consulted.
    ///
    /// # Errors
    ///
    /// Returns the first [`CleanerConfigError`] found.
    pub fn validate(&self, max_segments: usize) -> Result<(), CleanerConfigError> {
        if !self.enabled {
            return Ok(());
        }
        if self.min_free_slots > self.target_free_slots {
            return Err(CleanerConfigError::MinAboveTarget {
                min: self.min_free_slots,
                target: self.target_free_slots,
            });
        }
        if self.target_free_slots >= max_segments {
            return Err(CleanerConfigError::TargetAboveCapacity {
                target: self.target_free_slots,
                max_segments,
            });
        }
        if self.max_victims == 0 {
            return Err(CleanerConfigError::NoVictims);
        }
        if !(self.max_candidate_utilization > 0.0 && self.max_candidate_utilization <= 1.0) {
            return Err(CleanerConfigError::BadUtilization(
                self.max_candidate_utilization,
            ));
        }
        Ok(())
    }
}

/// Which cleaning level a pass runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CleanKind {
    /// In-memory compaction: one victim, frees bytes but no slots.
    Compact,
    /// Combined cost-benefit cleaning: multiple victims, frees whole slots
    /// and drops expired tombstones.
    Combined,
}

/// What one cleaning invocation accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CleanOutcome {
    /// Segments whose memory was actually reclaimed (epoch-safe).
    pub segments_freed: u64,
    /// Live bytes copied into survivors (or, for the inline cleaner, to the
    /// log head).
    pub bytes_relocated: u64,
    /// Tombstones found safe to drop.
    pub tombstones_dropped: u64,
    /// Victims processed by the in-memory compaction level.
    pub segments_compacted: u64,
    /// Bytes of survivor segments installed.
    pub survivor_bytes: u64,
}

/// One entry scheduled for relocation, located inside a snapshotted victim.
#[derive(Debug, Clone, Copy)]
struct PlannedItem {
    victim_idx: usize,
    offset: u32,
    len: usize,
    /// Index entry to swing for a live object; `None` for a kept tombstone
    /// (tombstones have no index entry).
    swing: Option<KeyHash>,
}

/// Phase-1 output: victims snapshotted, liveness pre-filtered, survivor ids
/// reserved. Owns everything it needs, so [`CleanPlan::build`] runs with no
/// reference to the store at all.
#[derive(Debug)]
pub struct CleanPlan {
    kind: CleanKind,
    victims: Vec<SegmentId>,
    victim_segments: Vec<Segment>,
    survivor_ids: Vec<SegmentId>,
    segment_bytes: usize,
    items: Vec<PlannedItem>,
    tombstones_droppable: u64,
}

impl CleanPlan {
    /// The selected victim segments (for tests and diagnostics).
    pub fn victims(&self) -> &[SegmentId] {
        &self.victims
    }

    /// Phase 2: copies every planned entry into tightly packed survivor
    /// segments. Pure computation over the snapshot — run it without any
    /// lock held.
    pub fn build(self) -> PreparedClean {
        let CleanPlan {
            kind,
            victims,
            victim_segments,
            survivor_ids,
            segment_bytes,
            items,
            tombstones_droppable,
        } = self;
        let mut ids = survivor_ids.into_iter();
        let mut survivors: Vec<Segment> = Vec::new();
        let mut current: Option<Segment> = None;
        let mut relocations = Vec::new();
        let mut kept_tombstones = Vec::new();
        let mut bytes_relocated = 0u64;
        for item in items {
            let src = victim_segments[item.victim_idx].as_bytes();
            let raw = &src[item.offset as usize..item.offset as usize + item.len];
            loop {
                let seg = current.get_or_insert_with(|| {
                    Segment::new(
                        ids.next().expect("survivor ids are over-reserved"),
                        segment_bytes,
                    )
                });
                match seg.append_raw(raw) {
                    Ok(off) => {
                        let new = LogPosition {
                            segment: seg.id(),
                            offset: off,
                        };
                        let old = LogPosition {
                            segment: victims[item.victim_idx],
                            offset: item.offset,
                        };
                        match item.swing {
                            Some(hash) => relocations.push(Relocation {
                                hash,
                                old,
                                new,
                                size: item.len,
                            }),
                            None => kept_tombstones.push((new, item.len)),
                        }
                        bytes_relocated += item.len as u64;
                        break;
                    }
                    Err(_) => {
                        let mut full = current.take().expect("just inserted");
                        full.close();
                        survivors.push(full);
                    }
                }
            }
        }
        if let Some(mut last) = current {
            last.close();
            if !last.is_empty() {
                survivors.push(last);
            }
        }
        PreparedClean {
            kind,
            victims,
            survivors,
            relocations,
            kept_tombstones,
            tombstones_dropped: tombstones_droppable,
            bytes_relocated,
        }
    }
}

/// One index swing scheduled by the cleaner: the entry at `old` was copied
/// to `new`; the swing commits only if the index still points at `old`.
#[derive(Debug, Clone, Copy)]
struct Relocation {
    hash: KeyHash,
    old: LogPosition,
    new: LogPosition,
    size: usize,
}

/// Phase-2 output: survivor segments fully built, awaiting the brief
/// exclusive [`Store::apply_clean`].
#[derive(Debug)]
pub struct PreparedClean {
    kind: CleanKind,
    victims: Vec<SegmentId>,
    survivors: Vec<Segment>,
    relocations: Vec<Relocation>,
    kept_tombstones: Vec<(LogPosition, usize)>,
    tombstones_dropped: u64,
    bytes_relocated: u64,
}

impl Store {
    /// Scores a candidate segment; higher is better to clean.
    fn cost_benefit(&self, id: SegmentId) -> Option<f64> {
        let u = self.log.segment_utilization(id)?;
        if u > self.cleaner.max_candidate_utilization {
            return None;
        }
        let age = self.log.segment_age(id)? as f64;
        Some((1.0 - u) * (age + 1.0) / (1.0 + u))
    }

    /// The balancer: decides whether cleaning is warranted right now and at
    /// which level. `None` means no pressure.
    ///
    /// Policy: no cleaning at or above `target_free_slots` free slots. At
    /// or below the hard reserve (`min_free_slots`), combined cleaning —
    /// only it frees whole slots and drops tombstones. In between, the
    /// cheap in-memory compaction level squeezes dead bytes out of a
    /// single segment *if* one has decayed enough to be worth copying
    /// (see [`Store::prepare_clean`]); otherwise the balancer deliberately
    /// waits — cleaning a segment later always costs less, because more of
    /// it has died. The recent write rate does not move the trigger (it
    /// would chase the free-slot count one-for-one and fire on every
    /// segment close); it deepens each combined pass instead, so a fast
    /// writer gets more slots per pass rather than earlier, younger
    /// victims.
    pub fn clean_pressure(&self) -> Option<CleanKind> {
        if !self.cleaner.enabled {
            return None;
        }
        let free = self.log.free_segment_slots();
        if free >= self.cleaner.target_free_slots {
            return None;
        }
        if free <= self.cleaner.min_free_slots || !self.cleaner.compaction {
            return Some(CleanKind::Combined);
        }
        Some(CleanKind::Compact)
    }

    /// Phase 1 of a concurrent clean: pick victims, snapshot them,
    /// pre-filter liveness, reserve survivor ids. Runs under `&self` — a
    /// shared lock suffices. Returns `None` when no victim qualifies.
    ///
    /// Tombstone droppability is decided here, which is safe even though
    /// the store keeps mutating: segment ids are never reused, so "the dead
    /// object's segment is gone (or is a victim of this very pass)" can
    /// only become *more* true by apply time.
    pub fn prepare_clean(&self, kind: CleanKind) -> Option<CleanPlan> {
        if !self.cleaner.enabled {
            return None;
        }
        let segment_bytes = self.log.config().segment_bytes;
        let victims: Vec<SegmentId> = match kind {
            CleanKind::Compact => {
                // The single closed segment whose seglet-rounded live bytes
                // undercut its current charge the most. Compacting copies
                // the victim's whole live set, so demand a gain of at least
                // half a segment: that bounds the copy at one byte written
                // per byte reclaimed. A lower bar re-copies mostly-live
                // segments for seglet crumbs, and the churn costs more than
                // the bytes it returns.
                let seglet = self.log.seglet_bytes();
                let min_gain = seglet.max(segment_bytes / 2);
                self.log
                    .closed_segment_ids()
                    .into_iter()
                    .filter_map(|id| {
                        let charge = self.log.segment_charged_bytes(id)?;
                        let live = self.log.live_bytes(id);
                        let packed = live.div_ceil(seglet).saturating_mul(seglet);
                        let gain = charge.checked_sub(packed)?;
                        (gain >= min_gain).then_some((id, gain))
                    })
                    .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
                    .map(|(id, _)| vec![id])
                    .unwrap_or_default()
            }
            CleanKind::Combined => {
                let mut scored: Vec<(SegmentId, f64)> = self
                    .log
                    .closed_segment_ids()
                    .into_iter()
                    .filter_map(|id| self.cost_benefit(id).map(|s| (id, s)))
                    .collect();
                scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                // Take the fewest victims (best score first) whose projected
                // byte gain covers the free-slot deficit. Cleaning deeper
                // into the candidate list than the deficit demands copies
                // nearly-live segments for marginal returns — the dominant
                // write-amplification cost at high memory utilization. The
                // write rate enters here (not in the trigger): a fast writer
                // since the last pass widens the deficit, buying more slots
                // per pass instead of starting passes earlier.
                let seglet = self.log.seglet_bytes();
                let burst_slots = ((self.log.total_appended_bytes() - self.last_clean_appended)
                    / segment_bytes.max(1) as u64) as usize;
                let deficit_bytes = self
                    .cleaner
                    .target_free_slots
                    .saturating_sub(self.log.free_segment_slots())
                    .max(1)
                    .saturating_add(burst_slots.min(2))
                    .saturating_mul(segment_bytes);
                let mut victims = Vec::new();
                let mut gain = 0usize;
                for (id, _) in scored {
                    if victims.len() >= self.cleaner.max_victims || gain >= deficit_bytes {
                        break;
                    }
                    let charge = self.log.segment_charged_bytes(id).unwrap_or(segment_bytes);
                    let live = self.log.live_bytes(id);
                    let packed = live.div_ceil(seglet).saturating_mul(seglet);
                    gain += charge.saturating_sub(packed);
                    victims.push(id);
                }
                victims
            }
        };
        if victims.is_empty() {
            return None;
        }
        let victim_segments: Vec<Segment> = victims
            .iter()
            .map(|&id| self.log.segment(id).expect("victim is allocated").clone())
            .collect();
        let mut items = Vec::new();
        let mut tombstones_droppable = 0u64;
        let mut copy_bytes = 0usize;
        for (vi, seg) in victim_segments.iter().enumerate() {
            let victim = victims[vi];
            for (offset, entry) in seg.iter() {
                let pos = LogPosition {
                    segment: victim,
                    offset,
                };
                let len = entry.serialized_len();
                match entry {
                    LogEntry::Object(ref o) => {
                        let hash = key_hash(o.table, &o.key);
                        if self.index.candidates(hash).any(|p| p == pos) {
                            items.push(PlannedItem {
                                victim_idx: vi,
                                offset,
                                len,
                                swing: Some(hash),
                            });
                            copy_bytes += len;
                        }
                    }
                    LogEntry::Tombstone(ref t) => {
                        let droppable = victims.contains(&t.dead_segment)
                            || !self.log.contains_segment(t.dead_segment);
                        if droppable {
                            tombstones_droppable += 1;
                        } else {
                            items.push(PlannedItem {
                                victim_idx: vi,
                                offset,
                                len,
                                swing: None,
                            });
                            copy_bytes += len;
                        }
                    }
                }
            }
        }
        // Over-reserve survivor ids for the worst first-fit packing (every
        // closed survivor at least half full). Unused ids are simply never
        // minted into segments; ids are cheap and never reused anyway.
        let n_ids = copy_bytes.div_ceil(segment_bytes) * 2 + 2;
        let survivor_ids = (0..n_ids).map(|_| self.log.reserve_segment_id()).collect();
        Some(CleanPlan {
            kind,
            victims,
            victim_segments,
            survivor_ids,
            segment_bytes,
            items,
            tombstones_droppable,
        })
    }

    /// Phase 3 of a concurrent clean: re-verify and swing the index,
    /// install survivors, retire victims into epoch limbo, and reclaim
    /// whatever is already epoch-safe. Brief — no byte copying happens
    /// here.
    ///
    /// Returns `None` (a clean no-op) when a victim vanished between
    /// prepare and apply — an inline emergency clean on the write path beat
    /// this pass to it and already relocated the victim's live entries.
    pub fn apply_clean(&mut self, prepared: PreparedClean) -> Option<CleanOutcome> {
        if prepared
            .victims
            .iter()
            .any(|&v| !self.log.contains_segment(v))
        {
            return None;
        }
        let PreparedClean {
            kind,
            victims,
            survivors,
            relocations,
            kept_tombstones,
            tombstones_dropped,
            bytes_relocated,
        } = prepared;
        // Verified-live bytes per survivor — a read-only pass. An entry that
        // died between prepare and apply (overwritten or deleted by a
        // service thread) no longer has its old position in the index, and
        // its survivor copy is dead on arrival. Nothing can change between
        // this check and the swings below: we hold `&mut self`.
        let mut live: BTreeMap<SegmentId, usize> = BTreeMap::new();
        for r in &relocations {
            if self.index.candidates(r.hash).any(|p| p == r.old) {
                *live.entry(r.new.segment).or_default() += r.size;
            }
        }
        for &(pos, size) in &kept_tombstones {
            *live.entry(pos.segment).or_default() += size;
        }
        // Install (and thereby publish in the lock-free segment map) every
        // surviving segment BEFORE swinging a single index entry: a
        // lock-free reader that picks up a swung position must be able to
        // resolve the survivor's buffer, or it would burn its whole retry
        // budget on a position the map cannot serve yet.
        let mut survivor_bytes = 0u64;
        for seg in survivors {
            let live_bytes = live.get(&seg.id()).copied().unwrap_or(0);
            if live_bytes == 0 {
                // Nothing live landed here (every relocation died and no
                // tombstone was kept): no index entry will reference the
                // survivor, so drop it instead of installing garbage.
                continue;
            }
            survivor_bytes += seg.len() as u64;
            self.log.install_survivor(seg, live_bytes);
        }
        for r in &relocations {
            // Swings for dead entries fail harmlessly (the old position is
            // gone from the index).
            let _ = self.index.update(r.hash, r.old, r.new);
        }
        let epoch_now = self.epoch.current();
        for &v in &victims {
            self.log.retire_segment(v, epoch_now);
        }
        // Flip the epoch twice. Lock-free readers pin epochs (the shard
        // write lock this runs under does NOT exclude them), so a reader
        // mid-probe defers both the advance and the reclaim to a later
        // pass; an outstanding zero-copy value view likewise holds its
        // victim in limbo through the buffer refcount. That deferral is
        // the whole point.
        self.epoch.try_advance();
        self.epoch.try_advance();
        let reclaimed = self.log.reclaim_retired(self.epoch.safe_epoch());
        let outcome = CleanOutcome {
            segments_freed: reclaimed as u64,
            bytes_relocated,
            tombstones_dropped,
            segments_compacted: if kind == CleanKind::Compact {
                victims.len() as u64
            } else {
                0
            },
            survivor_bytes,
        };
        self.stats.cleanings += 1;
        self.stats.segments_freed += outcome.segments_freed;
        self.stats.bytes_relocated += outcome.bytes_relocated;
        self.stats.tombstones_dropped += outcome.tombstones_dropped;
        self.stats.segments_compacted += outcome.segments_compacted;
        self.stats.survivor_bytes += outcome.survivor_bytes;
        self.last_clean_appended = self.log.total_appended_bytes();
        Some(outcome)
    }

    /// Advances the reclamation epoch as far as pinned readers allow and
    /// reclaims every limbo segment that became safe. The write path calls
    /// this as a last-ditch measure before declaring out-of-memory.
    pub fn reclaim_now(&mut self) -> usize {
        self.epoch.try_advance();
        self.epoch.try_advance();
        let n = self.log.reclaim_retired(self.epoch.safe_epoch());
        self.stats.segments_freed += n as u64;
        n
    }

    /// Runs at most one full cleaning pass (prepare → build → apply under a
    /// single borrow) if the balancer sees pressure, reclaiming any
    /// previously deferred limbo segments first. Deterministic: a pure
    /// function of store state, which is what lets the simulated engine
    /// drive cleaning per-event and stay bit-identical across runs.
    pub fn clean_step(&mut self) -> Option<CleanOutcome> {
        let reclaimed = if self.log.limbo_segments() > 0 {
            self.reclaim_now() as u64
        } else {
            0
        };
        // No fallback from Compact to Combined here: if no segment has
        // decayed enough to be worth compacting, waiting is the right move —
        // combined cleaning kicks in on its own once free slots reach the
        // hard reserve, and by then the victims are deader and cheaper.
        let stepped = self.clean_pressure().and_then(|kind| {
            let plan = self.prepare_clean(kind)?;
            self.apply_clean(plan.build())
        });
        match (stepped, reclaimed) {
            (Some(mut out), r) => {
                out.segments_freed += r;
                Some(out)
            }
            (None, 0) => None,
            (None, r) => Some(CleanOutcome {
                segments_freed: r,
                ..CleanOutcome::default()
            }),
        }
    }

    /// Runs the synchronous inline cleaner until the free-slot target is
    /// met or no candidate remains. Returns what was accomplished (possibly
    /// nothing). This is the legacy single-threaded path, still used by the
    /// write path as an emergency backstop and by stores configured with
    /// `proactive: true`.
    ///
    /// Invariants: live data is never lost, deleted data is never
    /// resurrected, and versions are preserved — the property tests in
    /// `tests/props.rs` pin all three.
    pub fn clean(&mut self) -> CleanOutcome {
        let mut outcome = CleanOutcome::default();
        if !self.cleaner.enabled {
            return outcome;
        }
        self.stats.cleanings += 1;
        while self.log.free_segment_slots() < self.cleaner.target_free_slots {
            // Pick the best candidate by cost-benefit.
            let best = self
                .log
                .closed_segment_ids()
                .into_iter()
                .filter_map(|id| self.cost_benefit(id).map(|score| (id, score)))
                .max_by(|a, b| a.1.total_cmp(&b.1));
            let Some((victim, _)) = best else { break };
            if !self.clean_segment(victim, &mut outcome) {
                break;
            }
        }
        self.stats.segments_freed += outcome.segments_freed;
        self.stats.bytes_relocated += outcome.bytes_relocated;
        self.stats.tombstones_dropped += outcome.tombstones_dropped;
        self.last_clean_appended = self.log.total_appended_bytes();
        outcome
    }

    /// Relocates the live contents of `victim` to the log head and frees
    /// it. Returns `false` if relocation ran out of space (the victim is
    /// left intact).
    fn clean_segment(&mut self, victim: SegmentId, outcome: &mut CleanOutcome) -> bool {
        let Some(segment) = self.log.segment(victim) else {
            return false;
        };
        // Gather entries first: we cannot append while iterating the log.
        let entries: Vec<(u32, LogEntry)> = segment.iter().collect();
        for (offset, entry) in entries {
            let pos = crate::types::LogPosition {
                segment: victim,
                offset,
            };
            match entry {
                LogEntry::Object(ref o) => {
                    let hash = crate::types::key_hash(o.table, &o.key);
                    let is_live = self.index.candidates(hash).any(|p| p == pos);
                    if !is_live {
                        continue;
                    }
                    let size = entry.serialized_len() as u64;
                    match self.log.append(&entry) {
                        Ok(out) => {
                            let moved = self.index.update(hash, pos, out.position);
                            debug_assert!(moved, "live entry must be indexed");
                            outcome.bytes_relocated += size;
                        }
                        Err(_) => return false,
                    }
                }
                LogEntry::Tombstone(ref t) => {
                    // A tombstone is droppable once the segment that held the
                    // object it killed no longer exists (including when that
                    // segment is the victim itself, freed below).
                    let droppable =
                        t.dead_segment == victim || !self.log.contains_segment(t.dead_segment);
                    if droppable {
                        outcome.tombstones_dropped += 1;
                        continue;
                    }
                    let size = entry.serialized_len() as u64;
                    match self.log.append(&entry) {
                        Ok(_) => outcome.bytes_relocated += size,
                        Err(_) => return false,
                    }
                }
            }
        }
        // Even the inline cleaner must route frees through limbo: `&mut
        // self` no longer excludes lock-free readers, which may be mid-parse
        // inside the victim. With no pinned readers (the common
        // single-threaded case) the reclaim frees the slot before the
        // caller's retry append; under concurrent read load it waits out
        // the in-flight epoch pins.
        self.log.free_segment(victim, self.epoch.current());
        outcome.segments_freed += self.reclaim_waiting() as u64;
        true
    }

    /// Reclaims limbo segments like [`Store::reclaim_now`], but waits out
    /// concurrently pinned lock-free readers instead of giving up when the
    /// epoch cannot flip yet. A pin lasts microseconds (one validated probe
    /// plus one parse), so the wait is short and bounded; the alternative —
    /// on the emergency write path — is failing a write whose memory is
    /// moments from being free. Only outstanding [`crate::ValueView`]s can
    /// legitimately outlast this loop: then the memory truly is pinned and
    /// the out-of-memory error stands.
    ///
    /// Does not touch statistics; callers attribute the freed count.
    pub(crate) fn reclaim_waiting(&mut self) -> usize {
        const MAX_SPINS: u32 = 10_000;
        let mut total = 0;
        for _ in 0..MAX_SPINS {
            self.epoch.try_advance();
            self.epoch.try_advance();
            total += self.log.reclaim_retired(self.epoch.safe_epoch());
            let safe = self.epoch.safe_epoch();
            // Whatever remains in limbo past its epoch is view-held;
            // waiting longer cannot free it.
            if self.log.limbo_segments() <= self.log.limbo_held_by_views(safe) {
                break;
            }
            std::thread::yield_now();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogConfig;
    use crate::types::TableId;

    const T: TableId = TableId(1);

    fn churn_store(max_segments: usize) -> Store {
        churn_store_with(max_segments, CleanerConfig::default())
    }

    fn churn_store_with(max_segments: usize, cleaner: CleanerConfig) -> Store {
        Store::with_cleaner(
            LogConfig {
                segment_bytes: 512,
                max_segments,
                ordered_index: false,
            },
            cleaner,
        )
    }

    #[test]
    fn overwrite_churn_survives_in_bounded_memory() {
        // 16 segments × 512 B ≈ 8 KB of log; churn 20× that volume over a
        // small key set. Without the cleaner this would be OutOfMemory.
        let mut s = churn_store(16);
        for round in 0..200 {
            for k in 0..10 {
                s.write(
                    T,
                    format!("key{k}").as_bytes(),
                    format!("value-{round}").as_bytes(),
                )
                .unwrap();
            }
        }
        for k in 0..10 {
            let got = s.read(T, format!("key{k}").as_bytes()).unwrap();
            assert_eq!(&got.value[..], b"value-199");
        }
        assert!(s.stats().cleanings > 0, "cleaner must have run");
        assert!(s.stats().segments_freed > 0);
    }

    #[test]
    fn cleaning_preserves_live_data_and_versions() {
        let mut s = churn_store(16);
        for i in 0..20 {
            s.write(T, format!("stable{i}").as_bytes(), b"keep-me")
                .unwrap();
        }
        // Churn other keys to force cleaning.
        for round in 0..300 {
            s.write(T, b"hot", format!("{round}").as_bytes()).unwrap();
        }
        assert!(s.stats().segments_freed > 0);
        for i in 0..20 {
            let got = s.read(T, format!("stable{i}").as_bytes()).unwrap();
            assert_eq!(&got.value[..], b"keep-me");
            assert_eq!(got.version, crate::types::Version::FIRST);
        }
        assert_eq!(&s.read(T, b"hot").unwrap().value[..], b"299");
    }

    #[test]
    fn cleaning_does_not_resurrect_deleted_keys() {
        let mut s = churn_store(16);
        for i in 0..30 {
            s.write(T, format!("k{i}").as_bytes(), b"v").unwrap();
        }
        for i in 0..15 {
            s.delete(T, format!("k{i}").as_bytes()).unwrap();
        }
        for round in 0..300 {
            s.write(T, b"churn", format!("{round}").as_bytes()).unwrap();
        }
        for i in 0..15 {
            assert!(
                s.read(T, format!("k{i}").as_bytes()).is_none(),
                "k{i} must stay deleted after cleaning"
            );
        }
        for i in 15..30 {
            assert!(s.read(T, format!("k{i}").as_bytes()).is_some());
        }
    }

    #[test]
    fn tombstones_eventually_dropped() {
        let mut s = churn_store(16);
        for i in 0..50 {
            s.write(T, format!("k{i}").as_bytes(), b"v").unwrap();
            s.delete(T, format!("k{i}").as_bytes()).unwrap();
        }
        for round in 0..400 {
            s.write(T, b"churn", format!("{round}").as_bytes()).unwrap();
        }
        assert!(
            s.stats().tombstones_dropped > 0,
            "churn must let some tombstones expire"
        );
    }

    #[test]
    fn disabled_cleaner_never_cleans() {
        let mut s = churn_store_with(
            8,
            CleanerConfig {
                enabled: false,
                ..CleanerConfig::default()
            },
        );
        let out = s.clean();
        assert_eq!(out, CleanOutcome::default());
        assert_eq!(s.stats().cleanings, 0);
        assert_eq!(s.clean_pressure(), None);
        assert!(s.prepare_clean(CleanKind::Combined).is_none());
    }

    #[test]
    fn fully_live_log_reports_out_of_memory() {
        // Distinct keys, no dead data: the cleaner cannot help.
        let mut s = churn_store(6);
        let val = vec![7u8; 128];
        let mut result = Ok(());
        for i in 0..40 {
            if let Err(e) = s.write(T, format!("unique-{i}").as_bytes(), &val) {
                result = Err(e);
                break;
            }
        }
        assert_eq!(result, Err(crate::store::StoreError::OutOfMemory));
    }

    #[test]
    fn cost_benefit_prefers_emptier_segments() {
        let mut s = churn_store(32);
        // Fill several segments, then kill everything in the early ones.
        for i in 0..60 {
            s.write(T, format!("k{i}").as_bytes(), &[0u8; 64]).unwrap();
        }
        for i in 0..30 {
            s.delete(T, format!("k{i}").as_bytes()).unwrap();
        }
        let ids = s.log().closed_segment_ids();
        let (mut best_id, mut best_score) = (None, f64::MIN);
        for id in ids {
            if let Some(score) = s.cost_benefit(id) {
                if score > best_score {
                    best_score = score;
                    best_id = Some(id);
                }
            }
        }
        let best_id = best_id.expect("some candidate");
        let u = s.log().segment_utilization(best_id).unwrap();
        assert!(u < 0.6, "best candidate should be mostly dead, u={u}");
    }

    #[test]
    fn validation_rejects_degenerate_knobs() {
        let base = CleanerConfig::default();
        assert!(base.validate(64).is_ok());
        assert_eq!(
            CleanerConfig {
                min_free_slots: 5,
                target_free_slots: 4,
                ..base
            }
            .validate(64),
            Err(CleanerConfigError::MinAboveTarget { min: 5, target: 4 })
        );
        assert_eq!(
            CleanerConfig {
                target_free_slots: 64,
                ..base
            }
            .validate(64),
            Err(CleanerConfigError::TargetAboveCapacity {
                target: 64,
                max_segments: 64
            })
        );
        assert_eq!(
            CleanerConfig {
                max_victims: 0,
                ..base
            }
            .validate(64),
            Err(CleanerConfigError::NoVictims)
        );
        for bad in [0.0, -0.5, 1.5] {
            assert_eq!(
                CleanerConfig {
                    max_candidate_utilization: bad,
                    ..base
                }
                .validate(64),
                Err(CleanerConfigError::BadUtilization(bad))
            );
        }
        // A disabled cleaner never consults its knobs, so any values pass.
        assert!(CleanerConfig {
            enabled: false,
            min_free_slots: 100,
            target_free_slots: 99,
            max_victims: 0,
            ..base
        }
        .validate(2)
        .is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid cleaner config")]
    fn degenerate_config_panics_at_store_construction() {
        // Default target_free_slots (4) is not below max_segments (4): the
        // cleaner could never reach its target and would spin forever.
        let _ = churn_store(4);
    }

    #[test]
    fn balancer_levels_track_pressure_and_write_rate() {
        let mut s = churn_store_with(
            16,
            CleanerConfig {
                proactive: false,
                ..CleanerConfig::default()
            },
        );
        assert_eq!(s.clean_pressure(), None, "fresh store: no pressure");
        // Fill until free slots dip just below the target (4): modest
        // pressure picks the cheap compaction level.
        let mut i = 0u64;
        while s.log().free_segment_slots() >= 4 {
            s.write(T, format!("k{i}").as_bytes(), &[0u8; 64]).unwrap();
            i += 1;
        }
        assert_eq!(s.clean_pressure(), Some(CleanKind::Compact));
        // At the hard reserve (min_free_slots = 2), only combined cleaning
        // frees whole slots.
        while s.log().free_segment_slots() > 2 {
            s.write(T, format!("k{i}").as_bytes(), &[0u8; 64]).unwrap();
            i += 1;
        }
        assert_eq!(s.clean_pressure(), Some(CleanKind::Combined));
        // Compaction disabled: combined at any pressure level.
        s.cleaner.compaction = false;
        assert_eq!(s.clean_pressure(), Some(CleanKind::Combined));
        // The write rate widens the combined pass instead of moving the
        // trigger: a burst since the last pass plans more victims.
        s.cleaner.compaction = true;
        s.last_clean_appended = s.log().total_appended_bytes();
        let quiet = s
            .prepare_clean(CleanKind::Combined)
            .map(|p| p.victims.len());
        s.last_clean_appended = 0;
        let bursty = s
            .prepare_clean(CleanKind::Combined)
            .map(|p| p.victims.len());
        assert!(
            bursty >= quiet,
            "a write burst must not shrink the pass: quiet={quiet:?} bursty={bursty:?}"
        );
    }

    #[test]
    fn compaction_step_frees_bytes_but_not_slots() {
        let mut s = churn_store_with(
            16,
            CleanerConfig {
                proactive: false,
                ..CleanerConfig::default()
            },
        );
        for i in 0..40 {
            s.write(T, format!("k{i}").as_bytes(), &[0u8; 64]).unwrap();
        }
        // Delete every other key so no segment is fully dead: the compact
        // victim must copy its surviving entries into a survivor segment.
        for i in (0..40).step_by(2) {
            s.delete(T, format!("k{i}").as_bytes()).unwrap();
        }
        let charged_before = s.log().charged_bytes();
        let plan = s
            .prepare_clean(CleanKind::Compact)
            .expect("deleted keys left dead bytes to squeeze");
        assert_eq!(plan.victims().len(), 1, "compaction takes a single victim");
        let out = s.apply_clean(plan.build()).expect("no competing cleaner");
        assert_eq!(out.segments_compacted, 1);
        assert!(out.survivor_bytes > 0);
        assert!(
            s.log().charged_bytes() < charged_before,
            "compaction must return bytes to the budget"
        );
        // Every key still reads back correctly.
        for i in 0..40 {
            let got = s.read(T, format!("k{i}").as_bytes());
            if i % 2 == 0 {
                assert!(got.is_none());
            } else {
                assert!(got.is_some());
            }
        }
    }

    #[test]
    fn step_cleaning_bounds_memory_under_churn() {
        // Drive cleaning exclusively through clean_step (as the simulator
        // and the background threads do): memory must stay bounded and all
        // live data intact.
        let mut s = churn_store_with(
            16,
            CleanerConfig {
                proactive: false,
                ..CleanerConfig::default()
            },
        );
        for round in 0..400 {
            for k in 0..8 {
                s.write(
                    T,
                    format!("key{k}").as_bytes(),
                    format!("value-{round}").as_bytes(),
                )
                .unwrap();
            }
            let _ = s.clean_step();
        }
        for k in 0..8 {
            let got = s.read(T, format!("key{k}").as_bytes()).unwrap();
            assert_eq!(&got.value[..], b"value-399");
        }
        let stats = s.stats();
        assert!(stats.cleanings > 0);
        assert!(stats.segments_freed > 0);
        assert!(
            s.log().charged_bytes() <= s.log().budget_bytes(),
            "memory stays within budget"
        );
        assert_eq!(
            s.log().limbo_segments(),
            0,
            "with no pinned readers every pass reclaims its own victims"
        );
    }

    #[test]
    fn apply_aborts_when_a_victim_vanished() {
        let mut s = churn_store_with(
            16,
            CleanerConfig {
                proactive: false,
                ..CleanerConfig::default()
            },
        );
        for round in 0..40 {
            for k in 0..8 {
                s.write(
                    T,
                    format!("key{k}").as_bytes(),
                    format!("v{round}").as_bytes(),
                )
                .unwrap();
            }
        }
        let plan = s.prepare_clean(CleanKind::Combined).expect("candidates");
        let victim = plan.victims()[0];
        // Simulate an inline emergency clean winning the race.
        s.log.free_segment(victim, 0);
        let cleanings_before = s.stats().cleanings;
        assert!(
            s.apply_clean(plan.build()).is_none(),
            "stale plan must be discarded, not applied"
        );
        assert_eq!(s.stats().cleanings, cleanings_before);
    }

    #[test]
    fn pinned_readers_delay_segment_reclamation() {
        let mut s = churn_store_with(
            16,
            CleanerConfig {
                proactive: false,
                ..CleanerConfig::default()
            },
        );
        for round in 0..100 {
            for k in 0..8 {
                s.write(
                    T,
                    format!("key{k}").as_bytes(),
                    format!("v{round}").as_bytes(),
                )
                .unwrap();
            }
        }
        // A reader mid-lookup: pin through a clone of the tracker handle,
        // exactly as an observer outside the store borrow would.
        let epochs = std::sync::Arc::clone(&s.epoch);
        let guard = epochs.pin();
        let plan = s.prepare_clean(CleanKind::Combined).expect("candidates");
        let n_victims = plan.victims().len();
        let out = s.apply_clean(plan.build()).expect("victims intact");
        assert_eq!(
            out.segments_freed, 0,
            "a pinned reader must hold reclamation back"
        );
        assert_eq!(s.log().limbo_segments(), n_victims);
        assert!(s.reclamation_lag() >= 1);
        drop(guard);
        assert_eq!(s.reclaim_now(), n_victims);
        assert_eq!(s.log().limbo_segments(), 0);
        assert_eq!(s.reclamation_lag(), 0);
    }
}
