//! The log cleaner.
//!
//! RAMCloud's log-structured memory reclaims dead space by *cleaning*: pick
//! closed segments with low live-data utilization, relocate their live
//! entries to the head of the log, update the index, and free the segments.
//! Candidate selection uses the classic LFS cost-benefit score
//!
//! ```text
//! benefit / cost = (1 − u) · age / (1 + u)
//! ```
//!
//! where `u` is the segment's live fraction and `age` counts head rolls
//! since the segment was created.
//!
//! The paper's workloads were deliberately sized *not* to trigger the
//! cleaner (Section III-C) — but any adoptable implementation needs one, and
//! the cleaner ablation benchmark measures what the paper avoided.

use crate::entry::LogEntry;
use crate::store::Store;
use crate::types::SegmentId;

/// Cleaner policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CleanerConfig {
    /// Master switch; when off, a full log surfaces as
    /// [`crate::StoreError::OutOfMemory`].
    pub enabled: bool,
    /// Start cleaning when free segment slots drop to this reserve. The
    /// reserve guarantees the cleaner has room to relocate into.
    pub min_free_slots: usize,
    /// Keep cleaning until this many slots are free (or no candidates
    /// remain).
    pub target_free_slots: usize,
    /// Do not clean segments with live fraction above this (cleaning them
    /// costs almost a full segment of writes for almost no gain).
    pub max_candidate_utilization: f64,
}

impl Default for CleanerConfig {
    fn default() -> Self {
        CleanerConfig {
            enabled: true,
            min_free_slots: 2,
            target_free_slots: 4,
            max_candidate_utilization: 0.97,
        }
    }
}

/// What one cleaning invocation accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CleanOutcome {
    /// Segments freed.
    pub segments_freed: u64,
    /// Live bytes relocated to the head.
    pub bytes_relocated: u64,
    /// Tombstones found safe to drop.
    pub tombstones_dropped: u64,
}

impl Store {
    /// Scores a candidate segment; higher is better to clean.
    fn cost_benefit(&self, id: SegmentId) -> Option<f64> {
        let u = self.log.segment_utilization(id)?;
        if u > self.cleaner.max_candidate_utilization {
            return None;
        }
        let age = self.log.segment_age(id)? as f64;
        Some((1.0 - u) * (age + 1.0) / (1.0 + u))
    }

    /// Runs the cleaner until the free-slot target is met or no candidate
    /// remains. Returns what was accomplished (possibly nothing).
    ///
    /// Invariants: live data is never lost, deleted data is never
    /// resurrected, and versions are preserved — the property tests in
    /// `tests/cleaner_props.rs` pin all three.
    pub fn clean(&mut self) -> CleanOutcome {
        let mut outcome = CleanOutcome::default();
        if !self.cleaner.enabled {
            return outcome;
        }
        self.stats.cleanings += 1;
        while self.log.free_segment_slots() < self.cleaner.target_free_slots {
            // Pick the best candidate by cost-benefit.
            let best = self
                .log
                .closed_segment_ids()
                .into_iter()
                .filter_map(|id| self.cost_benefit(id).map(|score| (id, score)))
                .max_by(|a, b| a.1.total_cmp(&b.1));
            let Some((victim, _)) = best else { break };
            if !self.clean_segment(victim, &mut outcome) {
                break;
            }
        }
        self.stats.segments_freed += outcome.segments_freed;
        self.stats.bytes_relocated += outcome.bytes_relocated;
        self.stats.tombstones_dropped += outcome.tombstones_dropped;
        outcome
    }

    /// Relocates the live contents of `victim` and frees it. Returns `false`
    /// if relocation ran out of space (the victim is left intact).
    fn clean_segment(&mut self, victim: SegmentId, outcome: &mut CleanOutcome) -> bool {
        let Some(segment) = self.log.segment(victim) else {
            return false;
        };
        // Gather entries first: we cannot append while iterating the log.
        let entries: Vec<(u32, LogEntry)> = segment.iter().collect();
        for (offset, entry) in entries {
            let pos = crate::types::LogPosition {
                segment: victim,
                offset,
            };
            match entry {
                LogEntry::Object(ref o) => {
                    let hash = crate::types::key_hash(o.table, &o.key);
                    let is_live = self.index.candidates(hash).any(|p| p == pos);
                    if !is_live {
                        continue;
                    }
                    let size = entry.serialized_len() as u64;
                    match self.log.append(&entry) {
                        Ok(out) => {
                            let moved = self.index.update(hash, pos, out.position);
                            debug_assert!(moved, "live entry must be indexed");
                            outcome.bytes_relocated += size;
                        }
                        Err(_) => return false,
                    }
                }
                LogEntry::Tombstone(ref t) => {
                    // A tombstone is droppable once the segment that held the
                    // object it killed no longer exists (including when that
                    // segment is the victim itself, freed below).
                    let droppable =
                        t.dead_segment == victim || !self.log.contains_segment(t.dead_segment);
                    if droppable {
                        outcome.tombstones_dropped += 1;
                        continue;
                    }
                    let size = entry.serialized_len() as u64;
                    match self.log.append(&entry) {
                        Ok(_) => outcome.bytes_relocated += size,
                        Err(_) => return false,
                    }
                }
            }
        }
        self.log.free_segment(victim);
        outcome.segments_freed += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogConfig;
    use crate::types::TableId;

    const T: TableId = TableId(1);

    fn churn_store(max_segments: usize) -> Store {
        Store::with_cleaner(
            LogConfig {
                segment_bytes: 512,
                max_segments,
                ordered_index: false,
            },
            CleanerConfig::default(),
        )
    }

    #[test]
    fn overwrite_churn_survives_in_bounded_memory() {
        // 16 segments × 512 B ≈ 8 KB of log; churn 20× that volume over a
        // small key set. Without the cleaner this would be OutOfMemory.
        let mut s = churn_store(16);
        for round in 0..200 {
            for k in 0..10 {
                s.write(
                    T,
                    format!("key{k}").as_bytes(),
                    format!("value-{round}").as_bytes(),
                )
                .unwrap();
            }
        }
        for k in 0..10 {
            let got = s.read(T, format!("key{k}").as_bytes()).unwrap();
            assert_eq!(&got.value[..], b"value-199");
        }
        assert!(s.stats().cleanings > 0, "cleaner must have run");
        assert!(s.stats().segments_freed > 0);
    }

    #[test]
    fn cleaning_preserves_live_data_and_versions() {
        let mut s = churn_store(16);
        for i in 0..20 {
            s.write(T, format!("stable{i}").as_bytes(), b"keep-me")
                .unwrap();
        }
        // Churn other keys to force cleaning.
        for round in 0..300 {
            s.write(T, b"hot", format!("{round}").as_bytes()).unwrap();
        }
        assert!(s.stats().segments_freed > 0);
        for i in 0..20 {
            let got = s.read(T, format!("stable{i}").as_bytes()).unwrap();
            assert_eq!(&got.value[..], b"keep-me");
            assert_eq!(got.version, crate::types::Version::FIRST);
        }
        assert_eq!(&s.read(T, b"hot").unwrap().value[..], b"299");
    }

    #[test]
    fn cleaning_does_not_resurrect_deleted_keys() {
        let mut s = churn_store(16);
        for i in 0..30 {
            s.write(T, format!("k{i}").as_bytes(), b"v").unwrap();
        }
        for i in 0..15 {
            s.delete(T, format!("k{i}").as_bytes()).unwrap();
        }
        for round in 0..300 {
            s.write(T, b"churn", format!("{round}").as_bytes()).unwrap();
        }
        for i in 0..15 {
            assert!(
                s.read(T, format!("k{i}").as_bytes()).is_none(),
                "k{i} must stay deleted after cleaning"
            );
        }
        for i in 15..30 {
            assert!(s.read(T, format!("k{i}").as_bytes()).is_some());
        }
    }

    #[test]
    fn tombstones_eventually_dropped() {
        let mut s = churn_store(16);
        for i in 0..50 {
            s.write(T, format!("k{i}").as_bytes(), b"v").unwrap();
            s.delete(T, format!("k{i}").as_bytes()).unwrap();
        }
        for round in 0..400 {
            s.write(T, b"churn", format!("{round}").as_bytes()).unwrap();
        }
        assert!(
            s.stats().tombstones_dropped > 0,
            "churn must let some tombstones expire"
        );
    }

    #[test]
    fn disabled_cleaner_never_cleans() {
        let mut s = Store::with_cleaner(
            LogConfig {
                segment_bytes: 512,
                max_segments: 8,
                ordered_index: false,
            },
            CleanerConfig {
                enabled: false,
                ..CleanerConfig::default()
            },
        );
        let out = s.clean();
        assert_eq!(out, CleanOutcome::default());
        assert_eq!(s.stats().cleanings, 0);
    }

    #[test]
    fn fully_live_log_reports_out_of_memory() {
        // Distinct keys, no dead data: the cleaner cannot help.
        let mut s = churn_store(4);
        let val = vec![7u8; 128];
        let mut result = Ok(());
        for i in 0..40 {
            if let Err(e) = s.write(T, format!("unique-{i}").as_bytes(), &val) {
                result = Err(e);
                break;
            }
        }
        assert_eq!(result, Err(crate::store::StoreError::OutOfMemory));
    }

    #[test]
    fn cost_benefit_prefers_emptier_segments() {
        let mut s = churn_store(32);
        // Fill several segments, then kill everything in the early ones.
        for i in 0..60 {
            s.write(T, format!("k{i}").as_bytes(), &[0u8; 64]).unwrap();
        }
        for i in 0..30 {
            s.delete(T, format!("k{i}").as_bytes()).unwrap();
        }
        let ids = s.log().closed_segment_ids();
        let (mut best_id, mut best_score) = (None, f64::MIN);
        for id in ids {
            if let Some(score) = s.cost_benefit(id) {
                if score > best_score {
                    best_score = score;
                    best_id = Some(id);
                }
            }
        }
        let best_id = best_id.expect("some candidate");
        let u = s.log().segment_utilization(best_id).unwrap();
        assert!(u < 0.6, "best candidate should be mostly dead, u={u}");
    }
}
