//! The in-memory index: key hash → log position.
//!
//! RAMCloud indexes its log with a custom hash table rather than keeping
//! objects in a conventional heap; this is what makes the log the *only*
//! copy of the data. The table maps the 64-bit hash of `(table, key)` to the
//! [`LogPosition`] of the current object. It is deliberately a *multi*-map:
//! two distinct keys can collide on the full 64-bit hash, in which case both
//! mappings coexist and the store disambiguates by reading the log and
//! comparing keys.
//!
//! Implementation: open addressing with linear probing and tombstone slots,
//! stored in **atomic** slot words behind a seqlock so lock-free readers can
//! probe while the single writer mutates. Mutation stays a `&mut self` API
//! (the store's exclusive path); concurrent readers go through the shared
//! [`IndexShared`] handle, which validates a sequence counter around each
//! probe and retries (or reports contention) instead of ever observing a
//! torn slot. Array growth publishes a freshly built slot array through an
//! `AtomicPtr`; superseded arrays are parked until the index drops, so a
//! reader that raced the swap still probes valid (if stale) memory and its
//! seqlock validation sends it around again.
//!
//! Resizing triggers at 70 % load (occupied + deleted) and always rehashes
//! only occupied slots, purging `Deleted` tombstones; when tombstones are
//! the majority of the load the table rehashes at the same size instead of
//! doubling, so delete-heavy churn cannot balloon the table. The table keeps
//! probe-length and resize counters (surfaced through `StoreStats`) so index
//! degradation is observable.

use std::sync::atomic::{fence, AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::types::{KeyHash, LogPosition, SegmentId};

/// Counters describing index probe work and resizes; see
/// [`HashTable::probe_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Mutating probe operations performed (insert/update/remove).
    pub probes: u64,
    /// Extra slots walked past the home slot across those operations; the
    /// ratio `probe_steps / probes` is the mean probe length.
    pub probe_steps: u64,
    /// Rehashes performed (both doubling and same-size tombstone purges).
    pub resizes: u64,
}

const TAG_EMPTY: u64 = 0;
const TAG_DELETED: u64 = 1;
const TAG_OCCUPIED: u64 = 2;

/// One slot, split across three atomic words so readers never fault: the
/// seqlock catches torn combinations.
///
/// `meta` packs `tag | offset << 32`; `hash` and `segment` are full words.
#[derive(Debug)]
struct AtomicSlot {
    meta: AtomicU64,
    hash: AtomicU64,
    segment: AtomicU64,
}

impl AtomicSlot {
    fn tag(&self) -> u64 {
        self.meta.load(Ordering::Relaxed) & 0x3
    }

    /// Writer-side decode (no concurrent mutator exists for `&self` on the
    /// writer path, so relaxed loads see the writer's own stores).
    fn load(&self) -> (u64, KeyHash, LogPosition) {
        let meta = self.meta.load(Ordering::Relaxed);
        (
            meta & 0x3,
            KeyHash(self.hash.load(Ordering::Relaxed)),
            LogPosition {
                segment: SegmentId(self.segment.load(Ordering::Relaxed)),
                offset: (meta >> 32) as u32,
            },
        )
    }

    fn store_occupied(&self, hash: KeyHash, pos: LogPosition) {
        self.hash.store(hash.0, Ordering::Release);
        self.segment.store(pos.segment.0, Ordering::Release);
        self.meta.store(
            TAG_OCCUPIED | ((pos.offset as u64) << 32),
            Ordering::Release,
        );
    }

    fn store_deleted(&self) {
        self.meta.store(TAG_DELETED, Ordering::Release);
    }
}

/// A fixed-size power-of-two array of atomic slots.
#[derive(Debug)]
struct SlotArray {
    slots: Box<[AtomicSlot]>,
}

impl SlotArray {
    fn new(capacity: usize) -> Self {
        debug_assert!(capacity.is_power_of_two());
        SlotArray {
            slots: (0..capacity)
                .map(|_| AtomicSlot {
                    meta: AtomicU64::new(TAG_EMPTY),
                    hash: AtomicU64::new(0),
                    segment: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    fn mask(&self) -> usize {
        self.slots.len() - 1
    }
}

/// Most hash-colliding candidates a lock-free probe will return before
/// reporting contention (full 64-bit collisions are already rare; more than
/// this many is indistinguishable from a torn probe).
pub(crate) const MAX_READ_CANDIDATES: usize = 8;

/// Candidate positions captured by one validated lock-free probe.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CandidateBuf {
    pub len: usize,
    pub items: [LogPosition; MAX_READ_CANDIDATES],
}

impl CandidateBuf {
    pub(crate) fn new() -> Self {
        CandidateBuf {
            len: 0,
            items: [LogPosition {
                segment: SegmentId(0),
                offset: 0,
            }; MAX_READ_CANDIDATES],
        }
    }

    pub(crate) fn as_slice(&self) -> &[LogPosition] {
        &self.items[..self.len]
    }
}

/// The reader-shared core of the index: the published slot array and the
/// seqlock that guards it. [`HashTable`] (the writer facade) and every
/// [`ReadHandle`](crate::ReadHandle) hold an `Arc` to the same instance.
pub(crate) struct IndexShared {
    current: AtomicPtr<SlotArray>,
    /// Seqlock: odd while the writer is inside a mutation window.
    seq: AtomicU64,
    /// Superseded arrays, parked until the index drops so racing readers
    /// always probe valid memory. Total parked memory is geometrically
    /// bounded by the current array's size. The `Box` is load-bearing:
    /// readers hold raw pointers obtained from `current`, so a parked
    /// array's address must survive the `Vec` growing.
    #[allow(clippy::vec_box)]
    retired: Mutex<Vec<Box<SlotArray>>>,
}

impl std::fmt::Debug for IndexShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexShared")
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl IndexShared {
    fn new(capacity: usize) -> Self {
        IndexShared {
            current: AtomicPtr::new(Box::into_raw(Box::new(SlotArray::new(capacity)))),
            seq: AtomicU64::new(0),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Writer-side view of the current array.
    fn array(&self) -> &SlotArray {
        // SAFETY: the pointer is always a live Box published by the writer;
        // superseded arrays are parked, never freed, while `self` lives.
        unsafe { &*self.current.load(Ordering::Acquire) }
    }

    fn write_begin(&self) {
        self.seq.fetch_add(1, Ordering::AcqRel);
    }

    fn write_end(&self) {
        self.seq.fetch_add(1, Ordering::Release);
    }

    /// One seqlock-validated probe for `hash`. Returns `true` with the
    /// candidates (possibly zero = a definitive miss) if the snapshot
    /// validated; `false` if the writer interfered or the candidate buffer
    /// overflowed — the caller retries or falls back to the locked path.
    pub(crate) fn try_candidates(&self, hash: KeyHash, out: &mut CandidateBuf) -> bool {
        out.len = 0;
        let s1 = self.seq.load(Ordering::Acquire);
        if s1 & 1 == 1 {
            return false;
        }
        // SAFETY: as in `array` — superseded arrays stay allocated.
        let arr = unsafe { &*self.current.load(Ordering::Acquire) };
        let mask = arr.mask();
        let mut i = hash.0 as usize & mask;
        let mut steps = 0usize;
        loop {
            if steps > arr.slots.len() {
                break; // pathological full-table walk; nothing stored
            }
            let slot = &arr.slots[i];
            let meta = slot.meta.load(Ordering::Acquire);
            match meta & 0x3 {
                TAG_EMPTY => break,
                TAG_OCCUPIED if slot.hash.load(Ordering::Acquire) == hash.0 => {
                    if out.len == MAX_READ_CANDIDATES {
                        return false;
                    }
                    out.items[out.len] = LogPosition {
                        segment: SegmentId(slot.segment.load(Ordering::Acquire)),
                        offset: (meta >> 32) as u32,
                    };
                    out.len += 1;
                }
                _ => {}
            }
            i = (i + 1) & mask;
            steps += 1;
        }
        // The probe's loads must complete before the validation load.
        fence(Ordering::Acquire);
        self.seq.load(Ordering::Relaxed) == s1
    }
}

impl Drop for IndexShared {
    fn drop(&mut self) {
        // SAFETY: sole owner now; the pointer came from Box::into_raw.
        drop(unsafe { Box::from_raw(self.current.load(Ordering::Acquire)) });
        // Parked arrays drop with the Mutex.
    }
}

/// Open-addressing multi-map from [`KeyHash`] to [`LogPosition`].
///
/// Mutation requires `&mut self` (the store's exclusive write/clean path);
/// lock-free readers probe concurrently through the shared core handed out
/// by [`Store::read_handle`](crate::Store::read_handle).
///
/// # Examples
///
/// ```
/// use rmc_logstore::{HashTable, KeyHash, LogPosition, SegmentId};
///
/// let mut ht = HashTable::new();
/// let pos = LogPosition { segment: SegmentId(0), offset: 0 };
/// ht.insert(KeyHash(42), pos);
/// assert_eq!(ht.candidates(KeyHash(42)).collect::<Vec<_>>(), vec![pos]);
/// ```
#[derive(Debug)]
pub struct HashTable {
    shared: Arc<IndexShared>,
    /// Occupied slots.
    len: usize,
    /// Occupied + deleted slots (drives resizing).
    used: usize,
    stats: ProbeStats,
}

const INITIAL_CAPACITY: usize = 64;
const MAX_LOAD_PERCENT: usize = 70;

impl Default for HashTable {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for HashTable {
    /// Deep copy with a fresh, detached `IndexShared`: the slot layout —
    /// including tombstones and probe distances — is preserved bit for bit,
    /// so a clone benchmarks identically to the original. Readers of the
    /// original never observe the clone.
    fn clone(&self) -> Self {
        let src = self.shared.array();
        let dst = SlotArray::new(src.slots.len());
        for (s, d) in src.slots.iter().zip(dst.slots.iter()) {
            d.meta
                .store(s.meta.load(Ordering::Relaxed), Ordering::Relaxed);
            d.hash
                .store(s.hash.load(Ordering::Relaxed), Ordering::Relaxed);
            d.segment
                .store(s.segment.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        HashTable {
            shared: Arc::new(IndexShared {
                current: AtomicPtr::new(Box::into_raw(Box::new(dst))),
                seq: AtomicU64::new(0),
                retired: Mutex::new(Vec::new()),
            }),
            len: self.len,
            used: self.used,
            stats: self.stats,
        }
    }
}

impl HashTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        HashTable {
            shared: Arc::new(IndexShared::new(INITIAL_CAPACITY)),
            len: 0,
            used: 0,
            stats: ProbeStats::default(),
        }
    }

    /// Creates a table pre-sized for roughly `n` mappings.
    pub fn with_capacity(n: usize) -> Self {
        let target = (n * 100 / MAX_LOAD_PERCENT + 1)
            .next_power_of_two()
            .max(INITIAL_CAPACITY);
        HashTable {
            shared: Arc::new(IndexShared::new(target)),
            len: 0,
            used: 0,
            stats: ProbeStats::default(),
        }
    }

    /// The reader-shared core, for building lock-free read handles.
    pub(crate) fn shared(&self) -> Arc<IndexShared> {
        Arc::clone(&self.shared)
    }

    /// Probe-work and resize counters accumulated so far.
    pub fn probe_stats(&self) -> ProbeStats {
        self.stats
    }

    /// Number of stored mappings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no mappings are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot-array capacity.
    #[cfg(test)]
    fn capacity(&self) -> usize {
        self.shared.array().slots.len()
    }

    fn maybe_grow(&mut self) {
        let capacity = self.shared.array().slots.len();
        if self.used * 100 >= capacity * MAX_LOAD_PERCENT {
            // Rehashing only occupied slots purges every tombstone. When
            // live entries alone are under half the load threshold the load
            // is tombstone-dominated: rehash at the same size instead of
            // doubling, so delete churn reclaims probe length without
            // ballooning memory.
            let new_cap = if self.len * 100 * 2 < capacity * MAX_LOAD_PERCENT {
                capacity
            } else {
                capacity * 2
            };
            let fresh = Box::new(SlotArray::new(new_cap));
            self.len = 0;
            self.used = 0;
            self.stats.resizes += 1;
            {
                let old = self.shared.array();
                for slot in old.slots.iter() {
                    if slot.tag() == TAG_OCCUPIED {
                        let (_, h, p) = slot.load();
                        // Uncounted: rehash walks are bookkeeping, not
                        // client probe work. The fresh array is private
                        // until published, so plain placement is fine.
                        let steps = Self::place_in(&fresh, h, p);
                        let _ = steps;
                        self.len += 1;
                        self.used += 1;
                    }
                }
            }
            // Publish inside a seqlock window: a reader that loaded the old
            // array mid-probe fails validation and retries on the new one.
            let fresh_ptr = Box::into_raw(fresh);
            self.shared.write_begin();
            let old_ptr = self.shared.current.swap(fresh_ptr, Ordering::AcqRel);
            self.shared.write_end();
            // SAFETY: `old_ptr` came from Box::into_raw and is no longer
            // published; parking it keeps it valid for racing readers.
            self.shared
                .retired
                .lock()
                .expect("index retire lock")
                .push(unsafe { Box::from_raw(old_ptr) });
        }
    }

    /// Finds a free slot for `hash` in `arr` and fills it; returns the probe
    /// steps taken past the home slot. Does not touch `len`/`used`.
    fn place_in(arr: &SlotArray, hash: KeyHash, pos: LogPosition) -> u64 {
        let mask = arr.mask();
        let mut i = hash.0 as usize & mask;
        let mut steps = 0u64;
        loop {
            let slot = &arr.slots[i];
            match slot.tag() {
                TAG_OCCUPIED => {
                    i = (i + 1) & mask;
                    steps += 1;
                }
                _ => {
                    slot.store_occupied(hash, pos);
                    return steps;
                }
            }
        }
    }

    /// Adds a mapping. The caller is responsible for not inserting two
    /// mappings for the *same* key (use [`HashTable::update`] on overwrite);
    /// duplicate hashes from distinct colliding keys are fine.
    pub fn insert(&mut self, hash: KeyHash, pos: LogPosition) {
        self.maybe_grow();
        let arr = self.shared.array();
        // Find the target slot first so the seqlock window covers only the
        // store itself.
        let mask = arr.mask();
        let mut i = hash.0 as usize & mask;
        let mut steps = 0u64;
        let reused = loop {
            match arr.slots[i].tag() {
                TAG_OCCUPIED => {
                    i = (i + 1) & mask;
                    steps += 1;
                }
                tag => break tag == TAG_DELETED,
            }
        };
        self.shared.write_begin();
        arr.slots[i].store_occupied(hash, pos);
        self.shared.write_end();
        self.len += 1;
        if !reused {
            self.used += 1;
        }
        self.stats.probes += 1;
        self.stats.probe_steps += steps;
    }

    /// All positions stored under `hash`, in probe order. Usually zero or
    /// one; more only under 64-bit hash collisions.
    pub fn candidates(&self, hash: KeyHash) -> Candidates<'_> {
        let arr = self.shared.array();
        Candidates {
            arr,
            hash,
            i: hash.0 as usize & arr.mask(),
            steps: 0,
        }
    }

    /// Replaces the mapping `hash → old` with `hash → new`. Returns `false`
    /// if no such mapping existed.
    pub fn update(&mut self, hash: KeyHash, old: LogPosition, new: LogPosition) -> bool {
        let arr = self.shared.array();
        let mask = arr.mask();
        let mut i = hash.0 as usize & mask;
        let mut steps = 0;
        self.stats.probes += 1;
        loop {
            let slot = &arr.slots[i];
            match slot.load() {
                (TAG_EMPTY, ..) => return false,
                (TAG_OCCUPIED, h, p) if h == hash && p == old => {
                    self.shared.write_begin();
                    slot.store_occupied(hash, new);
                    self.shared.write_end();
                    return true;
                }
                _ => {
                    i = (i + 1) & mask;
                    steps += 1;
                    self.stats.probe_steps += 1;
                    if steps > arr.slots.len() {
                        return false;
                    }
                }
            }
        }
    }

    /// Removes the mapping `hash → pos`. Returns `false` if absent.
    pub fn remove(&mut self, hash: KeyHash, pos: LogPosition) -> bool {
        let arr = self.shared.array();
        let mask = arr.mask();
        let mut i = hash.0 as usize & mask;
        let mut steps = 0;
        self.stats.probes += 1;
        loop {
            let slot = &arr.slots[i];
            match slot.load() {
                (TAG_EMPTY, ..) => return false,
                (TAG_OCCUPIED, h, p) if h == hash && p == pos => {
                    self.shared.write_begin();
                    slot.store_deleted();
                    self.shared.write_end();
                    self.len -= 1;
                    return true;
                }
                _ => {
                    i = (i + 1) & mask;
                    steps += 1;
                    self.stats.probe_steps += 1;
                    if steps > arr.slots.len() {
                        return false;
                    }
                }
            }
        }
    }

    /// Iterates over every stored `(hash, position)` mapping.
    pub fn iter(&self) -> impl Iterator<Item = (KeyHash, LogPosition)> + '_ {
        self.shared
            .array()
            .slots
            .iter()
            .filter_map(|s| match s.load() {
                (TAG_OCCUPIED, h, p) => Some((h, p)),
                _ => None,
            })
    }
}

/// Iterator over candidate positions for one hash; see
/// [`HashTable::candidates`].
#[derive(Debug)]
pub struct Candidates<'a> {
    arr: &'a SlotArray,
    hash: KeyHash,
    i: usize,
    steps: usize,
}

impl Iterator for Candidates<'_> {
    type Item = LogPosition;

    fn next(&mut self) -> Option<LogPosition> {
        let mask = self.arr.mask();
        while self.steps <= self.arr.slots.len() {
            let slot = &self.arr.slots[self.i];
            self.i = (self.i + 1) & mask;
            self.steps += 1;
            match slot.load() {
                (TAG_EMPTY, ..) => return None,
                (TAG_OCCUPIED, h, p) if h == self.hash => return Some(p),
                _ => continue,
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SegmentId;

    fn pos(seg: u64, off: u32) -> LogPosition {
        LogPosition {
            segment: SegmentId(seg),
            offset: off,
        }
    }

    #[test]
    fn insert_and_lookup() {
        let mut ht = HashTable::new();
        ht.insert(KeyHash(1), pos(0, 0));
        ht.insert(KeyHash(2), pos(0, 50));
        assert_eq!(
            ht.candidates(KeyHash(1)).collect::<Vec<_>>(),
            vec![pos(0, 0)]
        );
        assert_eq!(
            ht.candidates(KeyHash(2)).collect::<Vec<_>>(),
            vec![pos(0, 50)]
        );
        assert_eq!(ht.candidates(KeyHash(3)).count(), 0);
        assert_eq!(ht.len(), 2);
    }

    #[test]
    fn colliding_hashes_coexist() {
        let mut ht = HashTable::new();
        ht.insert(KeyHash(9), pos(0, 0));
        ht.insert(KeyHash(9), pos(1, 0));
        let mut got: Vec<_> = ht.candidates(KeyHash(9)).collect();
        got.sort_by_key(|p| p.segment);
        assert_eq!(got, vec![pos(0, 0), pos(1, 0)]);
    }

    #[test]
    fn update_moves_position() {
        let mut ht = HashTable::new();
        ht.insert(KeyHash(5), pos(0, 0));
        assert!(ht.update(KeyHash(5), pos(0, 0), pos(3, 77)));
        assert_eq!(
            ht.candidates(KeyHash(5)).collect::<Vec<_>>(),
            vec![pos(3, 77)]
        );
        assert!(!ht.update(KeyHash(5), pos(0, 0), pos(4, 0)));
        assert_eq!(ht.len(), 1);
    }

    #[test]
    fn remove_deletes_exactly_one_mapping() {
        let mut ht = HashTable::new();
        ht.insert(KeyHash(9), pos(0, 0));
        ht.insert(KeyHash(9), pos(1, 0));
        assert!(ht.remove(KeyHash(9), pos(0, 0)));
        assert_eq!(
            ht.candidates(KeyHash(9)).collect::<Vec<_>>(),
            vec![pos(1, 0)]
        );
        assert!(!ht.remove(KeyHash(9), pos(0, 0)));
        assert_eq!(ht.len(), 1);
    }

    #[test]
    fn probing_continues_past_deleted_slots() {
        let mut ht = HashTable::new();
        // Force a probe chain with colliding low bits.
        let base = 0x40u64; // multiple of table size 64
        let hashes = [KeyHash(base), KeyHash(base * 2), KeyHash(base * 3)];
        for (i, &h) in hashes.iter().enumerate() {
            ht.insert(h, pos(i as u64, 0));
        }
        // Remove the middle of the chain; the last must stay findable.
        assert!(ht.remove(hashes[1], pos(1, 0)));
        assert_eq!(
            ht.candidates(hashes[2]).collect::<Vec<_>>(),
            vec![pos(2, 0)]
        );
    }

    #[test]
    fn grows_under_load() {
        let mut ht = HashTable::new();
        for i in 0..10_000u64 {
            ht.insert(KeyHash(i.wrapping_mul(0x9E3779B97F4A7C15)), pos(i, 0));
        }
        assert_eq!(ht.len(), 10_000);
        for i in 0..10_000u64 {
            let h = KeyHash(i.wrapping_mul(0x9E3779B97F4A7C15));
            assert_eq!(ht.candidates(h).collect::<Vec<_>>(), vec![pos(i, 0)]);
        }
    }

    #[test]
    fn deleted_slot_reuse_does_not_grow_used() {
        let mut ht = HashTable::new();
        for round in 0..1000u64 {
            ht.insert(KeyHash(round % 3), pos(round, 0));
            ht.remove(KeyHash(round % 3), pos(round, 0));
        }
        assert!(ht.is_empty());
        // Reusing deleted slots keeps the table from ballooning.
        assert!(ht.capacity() <= 4096, "table grew to {}", ht.capacity());
    }

    #[test]
    fn tombstone_dominated_load_rehashes_in_place() {
        let mut ht = HashTable::new();
        // Drive `used` to the load threshold with distinct hashes so every
        // remove leaves a tombstone in a *different* slot (no reuse), while
        // keeping only a handful of live entries.
        let mut i = 0u64;
        let start_cap = ht.capacity();
        // `maybe_grow` fires when used·100 ≥ capacity·MAX_LOAD_PERCENT and
        // runs *before* the insert places its entry, so fill until `used`
        // itself reaches the threshold; the next insert then rehashes.
        while ht.used * 100 < start_cap * MAX_LOAD_PERCENT {
            let h = KeyHash(i.wrapping_mul(0x9E3779B97F4A7C15));
            ht.insert(h, pos(i, 0));
            if i >= 4 {
                ht.remove(h, pos(i, 0));
            }
            i += 1;
        }
        assert_eq!(ht.capacity(), start_cap, "not yet resized");
        // The next insert crosses the threshold. Live entries are a small
        // minority, so the rehash purges tombstones at the same size
        // instead of doubling.
        ht.insert(KeyHash(0xDEAD), pos(99, 0));
        assert_eq!(ht.capacity(), start_cap, "tombstone purge, not a double");
        assert_eq!(ht.used, ht.len, "every tombstone dropped by the rehash");
        assert_eq!(ht.probe_stats().resizes, 1);
        // All live entries survive the purge.
        for j in 0..4u64 {
            let h = KeyHash(j.wrapping_mul(0x9E3779B97F4A7C15));
            assert_eq!(ht.candidates(h).collect::<Vec<_>>(), vec![pos(j, 0)]);
        }
    }

    #[test]
    fn doubling_rehash_drops_tombstones_too() {
        let mut ht = HashTable::new();
        // Mostly-live load: the resize must double, and `used` must equal
        // `len` afterwards (tombstones purged).
        for i in 0..60u64 {
            ht.insert(KeyHash(i.wrapping_mul(0x9E3779B97F4A7C15)), pos(i, 0));
        }
        ht.remove(KeyHash(0), pos(0, 0)); // may or may not exist; seed one tombstone
        let before = ht.capacity();
        for i in 60..200u64 {
            ht.insert(KeyHash(i.wrapping_mul(0x9E3779B97F4A7C15)), pos(i, 0));
        }
        assert!(ht.capacity() > before);
        assert_eq!(ht.used, ht.len);
        assert!(ht.probe_stats().resizes >= 1);
    }

    #[test]
    fn probe_counters_accumulate() {
        let mut ht = HashTable::new();
        // Colliding low bits force probe steps.
        let base = 0x40u64;
        for i in 0..4 {
            ht.insert(KeyHash(base * (i + 1)), pos(i, 0));
        }
        let s = ht.probe_stats();
        assert_eq!(s.probes, 4);
        assert!(s.probe_steps >= 1 + 2 + 3, "chain of colliding hashes");
        ht.update(KeyHash(base * 4), pos(3, 0), pos(9, 9));
        ht.remove(KeyHash(base * 3), pos(2, 0));
        let s2 = ht.probe_stats();
        assert_eq!(s2.probes, 6);
        assert!(s2.probe_steps > s.probe_steps);
    }

    #[test]
    fn iter_visits_all() {
        let mut ht = HashTable::new();
        for i in 0..100u64 {
            ht.insert(KeyHash(i), pos(i, 0));
        }
        let mut seen: Vec<u64> = ht.iter().map(|(h, _)| h.0).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn with_capacity_avoids_growth() {
        let ht = HashTable::with_capacity(1000);
        assert!(ht.capacity() >= 1000 * 100 / MAX_LOAD_PERCENT);
    }

    #[test]
    fn lock_free_probe_agrees_with_writer_view() {
        let mut ht = HashTable::new();
        for i in 0..500u64 {
            ht.insert(KeyHash(i.wrapping_mul(0x9E3779B97F4A7C15)), pos(i, 0));
        }
        let shared = ht.shared();
        let mut buf = CandidateBuf::new();
        for i in 0..500u64 {
            let h = KeyHash(i.wrapping_mul(0x9E3779B97F4A7C15));
            assert!(
                shared.try_candidates(h, &mut buf),
                "no writer: must validate"
            );
            assert_eq!(buf.as_slice(), &[pos(i, 0)][..]);
        }
        assert!(shared.try_candidates(KeyHash(0xABCD_EF01), &mut buf));
        assert_eq!(buf.len, 0, "definitive miss validates too");
    }

    #[test]
    fn lock_free_probe_survives_concurrent_resize_churn() {
        let mut ht = HashTable::with_capacity(64);
        // A stable prefix of keys that never changes...
        for i in 0..64u64 {
            ht.insert(KeyHash(i.wrapping_mul(0x9E3779B97F4A7C15)), pos(i, 0));
        }
        let shared = ht.shared();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut validated = 0u64;
                    let mut buf = CandidateBuf::new();
                    while !stop.load(Ordering::Acquire) {
                        for i in 0..64u64 {
                            let h = KeyHash(i.wrapping_mul(0x9E3779B97F4A7C15));
                            if shared.try_candidates(h, &mut buf) {
                                // A validated probe must never miss a key
                                // that is permanently present, and the
                                // position must be exactly right.
                                assert_eq!(
                                    buf.as_slice(),
                                    &[pos(i, 0)][..],
                                    "validated probe returned wrong snapshot"
                                );
                                validated += 1;
                            }
                        }
                    }
                    validated
                })
            })
            .collect();
        // ...while the writer churns thousands of other keys through the
        // table, forcing inserts, removes, and several array resizes.
        for round in 0..40u64 {
            for i in 64..1064u64 {
                let h = KeyHash((round * 10_000 + i).wrapping_mul(0x9E3779B97F4A7C15));
                ht.insert(h, pos(i, 1));
                ht.remove(h, pos(i, 1));
            }
        }
        stop.store(true, Ordering::Release);
        let validated: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(validated > 0, "readers must have validated probes");
        assert!(ht.probe_stats().resizes > 0, "churn must have resized");
    }
}
