//! The in-memory index: key hash → log position.
//!
//! RAMCloud indexes its log with a custom hash table rather than keeping
//! objects in a conventional heap; this is what makes the log the *only*
//! copy of the data. The table maps the 64-bit hash of `(table, key)` to the
//! [`LogPosition`] of the current object. It is deliberately a *multi*-map:
//! two distinct keys can collide on the full 64-bit hash, in which case both
//! mappings coexist and the store disambiguates by reading the log and
//! comparing keys.
//!
//! Implementation: open addressing with linear probing and tombstone slots.
//! Resizing triggers at 70 % load (occupied + deleted) and always rehashes
//! only occupied slots, purging `Deleted` tombstones; when tombstones are
//! the majority of the load the table rehashes *in place* at the same size
//! instead of doubling, so delete-heavy churn cannot balloon the table. The
//! table keeps probe-length and resize counters (surfaced through
//! `StoreStats`) so index degradation is observable.

use crate::types::{KeyHash, LogPosition};

/// Counters describing index probe work and resizes; see
/// [`HashTable::probe_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Mutating probe operations performed (insert/update/remove).
    pub probes: u64,
    /// Extra slots walked past the home slot across those operations; the
    /// ratio `probe_steps / probes` is the mean probe length.
    pub probe_steps: u64,
    /// Rehashes performed (both doubling and same-size tombstone purges).
    pub resizes: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Empty,
    Deleted,
    Occupied(KeyHash, LogPosition),
}

/// Open-addressing multi-map from [`KeyHash`] to [`LogPosition`].
///
/// # Examples
///
/// ```
/// use rmc_logstore::{HashTable, KeyHash, LogPosition, SegmentId};
///
/// let mut ht = HashTable::new();
/// let pos = LogPosition { segment: SegmentId(0), offset: 0 };
/// ht.insert(KeyHash(42), pos);
/// assert_eq!(ht.candidates(KeyHash(42)).collect::<Vec<_>>(), vec![pos]);
/// ```
#[derive(Debug, Clone)]
pub struct HashTable {
    slots: Vec<Slot>,
    /// Occupied slots.
    len: usize,
    /// Occupied + deleted slots (drives resizing).
    used: usize,
    stats: ProbeStats,
}

const INITIAL_CAPACITY: usize = 64;
const MAX_LOAD_PERCENT: usize = 70;

impl Default for HashTable {
    fn default() -> Self {
        Self::new()
    }
}

impl HashTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        HashTable {
            slots: vec![Slot::Empty; INITIAL_CAPACITY],
            len: 0,
            used: 0,
            stats: ProbeStats::default(),
        }
    }

    /// Creates a table pre-sized for roughly `n` mappings.
    pub fn with_capacity(n: usize) -> Self {
        let target = (n * 100 / MAX_LOAD_PERCENT + 1)
            .next_power_of_two()
            .max(INITIAL_CAPACITY);
        HashTable {
            slots: vec![Slot::Empty; target],
            len: 0,
            used: 0,
            stats: ProbeStats::default(),
        }
    }

    /// Probe-work and resize counters accumulated so far.
    pub fn probe_stats(&self) -> ProbeStats {
        self.stats
    }

    /// Number of stored mappings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no mappings are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    fn maybe_grow(&mut self) {
        if self.used * 100 >= self.slots.len() * MAX_LOAD_PERCENT {
            // Rehashing only occupied slots purges every tombstone. When
            // live entries alone are under half the load threshold the load
            // is tombstone-dominated: rehash at the same size instead of
            // doubling, so delete churn reclaims probe length without
            // ballooning memory.
            let new_cap = if self.len * 100 * 2 < self.slots.len() * MAX_LOAD_PERCENT {
                self.slots.len()
            } else {
                self.slots.len() * 2
            };
            let old = std::mem::replace(&mut self.slots, vec![Slot::Empty; new_cap]);
            self.len = 0;
            self.used = 0;
            self.stats.resizes += 1;
            for slot in old {
                if let Slot::Occupied(h, p) = slot {
                    // Uncounted: rehash walks are bookkeeping, not client
                    // probe work.
                    self.place(h, p);
                }
            }
        }
    }

    /// Finds a free slot for `hash` and fills it; returns the probe steps
    /// taken past the home slot.
    fn place(&mut self, hash: KeyHash, pos: LogPosition) -> u64 {
        let mask = self.mask();
        let mut i = hash.0 as usize & mask;
        let mut steps = 0u64;
        loop {
            match self.slots[i] {
                Slot::Empty => {
                    self.slots[i] = Slot::Occupied(hash, pos);
                    self.len += 1;
                    self.used += 1;
                    return steps;
                }
                Slot::Deleted => {
                    self.slots[i] = Slot::Occupied(hash, pos);
                    self.len += 1;
                    // `used` unchanged: the slot was already counted.
                    return steps;
                }
                Slot::Occupied(..) => {
                    i = (i + 1) & mask;
                    steps += 1;
                }
            }
        }
    }

    fn insert_no_grow(&mut self, hash: KeyHash, pos: LogPosition) {
        let steps = self.place(hash, pos);
        self.stats.probes += 1;
        self.stats.probe_steps += steps;
    }

    /// Adds a mapping. The caller is responsible for not inserting two
    /// mappings for the *same* key (use [`HashTable::update`] on overwrite);
    /// duplicate hashes from distinct colliding keys are fine.
    pub fn insert(&mut self, hash: KeyHash, pos: LogPosition) {
        self.maybe_grow();
        self.insert_no_grow(hash, pos);
    }

    /// All positions stored under `hash`, in probe order. Usually zero or
    /// one; more only under 64-bit hash collisions.
    pub fn candidates(&self, hash: KeyHash) -> Candidates<'_> {
        Candidates {
            table: self,
            hash,
            i: hash.0 as usize & self.mask(),
            steps: 0,
        }
    }

    /// Replaces the mapping `hash → old` with `hash → new`. Returns `false`
    /// if no such mapping existed.
    pub fn update(&mut self, hash: KeyHash, old: LogPosition, new: LogPosition) -> bool {
        let mask = self.mask();
        let mut i = hash.0 as usize & mask;
        let mut steps = 0;
        self.stats.probes += 1;
        loop {
            match self.slots[i] {
                Slot::Empty => return false,
                Slot::Occupied(h, p) if h == hash && p == old => {
                    self.slots[i] = Slot::Occupied(hash, new);
                    return true;
                }
                _ => {
                    i = (i + 1) & mask;
                    steps += 1;
                    self.stats.probe_steps += 1;
                    if steps > self.slots.len() {
                        return false;
                    }
                }
            }
        }
    }

    /// Removes the mapping `hash → pos`. Returns `false` if absent.
    pub fn remove(&mut self, hash: KeyHash, pos: LogPosition) -> bool {
        let mask = self.mask();
        let mut i = hash.0 as usize & mask;
        let mut steps = 0;
        self.stats.probes += 1;
        loop {
            match self.slots[i] {
                Slot::Empty => return false,
                Slot::Occupied(h, p) if h == hash && p == pos => {
                    self.slots[i] = Slot::Deleted;
                    self.len -= 1;
                    return true;
                }
                _ => {
                    i = (i + 1) & mask;
                    steps += 1;
                    self.stats.probe_steps += 1;
                    if steps > self.slots.len() {
                        return false;
                    }
                }
            }
        }
    }

    /// Iterates over every stored `(hash, position)` mapping.
    pub fn iter(&self) -> impl Iterator<Item = (KeyHash, LogPosition)> + '_ {
        self.slots.iter().filter_map(|s| match s {
            Slot::Occupied(h, p) => Some((*h, *p)),
            _ => None,
        })
    }
}

/// Iterator over candidate positions for one hash; see
/// [`HashTable::candidates`].
#[derive(Debug)]
pub struct Candidates<'a> {
    table: &'a HashTable,
    hash: KeyHash,
    i: usize,
    steps: usize,
}

impl Iterator for Candidates<'_> {
    type Item = LogPosition;

    fn next(&mut self) -> Option<LogPosition> {
        let mask = self.table.mask();
        while self.steps <= self.table.slots.len() {
            let slot = self.table.slots[self.i];
            self.i = (self.i + 1) & mask;
            self.steps += 1;
            match slot {
                Slot::Empty => return None,
                Slot::Occupied(h, p) if h == self.hash => return Some(p),
                _ => continue,
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SegmentId;

    fn pos(seg: u64, off: u32) -> LogPosition {
        LogPosition {
            segment: SegmentId(seg),
            offset: off,
        }
    }

    #[test]
    fn insert_and_lookup() {
        let mut ht = HashTable::new();
        ht.insert(KeyHash(1), pos(0, 0));
        ht.insert(KeyHash(2), pos(0, 50));
        assert_eq!(
            ht.candidates(KeyHash(1)).collect::<Vec<_>>(),
            vec![pos(0, 0)]
        );
        assert_eq!(
            ht.candidates(KeyHash(2)).collect::<Vec<_>>(),
            vec![pos(0, 50)]
        );
        assert_eq!(ht.candidates(KeyHash(3)).count(), 0);
        assert_eq!(ht.len(), 2);
    }

    #[test]
    fn colliding_hashes_coexist() {
        let mut ht = HashTable::new();
        ht.insert(KeyHash(9), pos(0, 0));
        ht.insert(KeyHash(9), pos(1, 0));
        let mut got: Vec<_> = ht.candidates(KeyHash(9)).collect();
        got.sort_by_key(|p| p.segment);
        assert_eq!(got, vec![pos(0, 0), pos(1, 0)]);
    }

    #[test]
    fn update_moves_position() {
        let mut ht = HashTable::new();
        ht.insert(KeyHash(5), pos(0, 0));
        assert!(ht.update(KeyHash(5), pos(0, 0), pos(3, 77)));
        assert_eq!(
            ht.candidates(KeyHash(5)).collect::<Vec<_>>(),
            vec![pos(3, 77)]
        );
        assert!(!ht.update(KeyHash(5), pos(0, 0), pos(4, 0)));
        assert_eq!(ht.len(), 1);
    }

    #[test]
    fn remove_deletes_exactly_one_mapping() {
        let mut ht = HashTable::new();
        ht.insert(KeyHash(9), pos(0, 0));
        ht.insert(KeyHash(9), pos(1, 0));
        assert!(ht.remove(KeyHash(9), pos(0, 0)));
        assert_eq!(
            ht.candidates(KeyHash(9)).collect::<Vec<_>>(),
            vec![pos(1, 0)]
        );
        assert!(!ht.remove(KeyHash(9), pos(0, 0)));
        assert_eq!(ht.len(), 1);
    }

    #[test]
    fn probing_continues_past_deleted_slots() {
        let mut ht = HashTable::new();
        // Force a probe chain with colliding low bits.
        let base = 0x40u64; // multiple of table size 64
        let hashes = [KeyHash(base), KeyHash(base * 2), KeyHash(base * 3)];
        for (i, &h) in hashes.iter().enumerate() {
            ht.insert(h, pos(i as u64, 0));
        }
        // Remove the middle of the chain; the last must stay findable.
        assert!(ht.remove(hashes[1], pos(1, 0)));
        assert_eq!(
            ht.candidates(hashes[2]).collect::<Vec<_>>(),
            vec![pos(2, 0)]
        );
    }

    #[test]
    fn grows_under_load() {
        let mut ht = HashTable::new();
        for i in 0..10_000u64 {
            ht.insert(KeyHash(i.wrapping_mul(0x9E3779B97F4A7C15)), pos(i, 0));
        }
        assert_eq!(ht.len(), 10_000);
        for i in 0..10_000u64 {
            let h = KeyHash(i.wrapping_mul(0x9E3779B97F4A7C15));
            assert_eq!(ht.candidates(h).collect::<Vec<_>>(), vec![pos(i, 0)]);
        }
    }

    #[test]
    fn deleted_slot_reuse_does_not_grow_used() {
        let mut ht = HashTable::new();
        for round in 0..1000u64 {
            ht.insert(KeyHash(round % 3), pos(round, 0));
            ht.remove(KeyHash(round % 3), pos(round, 0));
        }
        assert!(ht.is_empty());
        // Reusing deleted slots keeps the table from ballooning.
        assert!(ht.slots.len() <= 4096, "table grew to {}", ht.slots.len());
    }

    #[test]
    fn tombstone_dominated_load_rehashes_in_place() {
        let mut ht = HashTable::new();
        // Drive `used` to the load threshold with distinct hashes so every
        // remove leaves a tombstone in a *different* slot (no reuse), while
        // keeping only a handful of live entries.
        let mut i = 0u64;
        let start_cap = ht.slots.len();
        // `maybe_grow` fires when used·100 ≥ capacity·MAX_LOAD_PERCENT and
        // runs *before* the insert places its entry, so fill until `used`
        // itself reaches the threshold; the next insert then rehashes.
        while ht.used * 100 < start_cap * MAX_LOAD_PERCENT {
            let h = KeyHash(i.wrapping_mul(0x9E3779B97F4A7C15));
            ht.insert(h, pos(i, 0));
            if i >= 4 {
                ht.remove(h, pos(i, 0));
            }
            i += 1;
        }
        assert_eq!(ht.slots.len(), start_cap, "not yet resized");
        // The next insert crosses the threshold. Live entries are a small
        // minority, so the rehash purges tombstones at the same size
        // instead of doubling.
        ht.insert(KeyHash(0xDEAD), pos(99, 0));
        assert_eq!(ht.slots.len(), start_cap, "tombstone purge, not a double");
        assert_eq!(ht.used, ht.len, "every tombstone dropped by the rehash");
        assert_eq!(ht.probe_stats().resizes, 1);
        // All live entries survive the purge.
        for j in 0..4u64 {
            let h = KeyHash(j.wrapping_mul(0x9E3779B97F4A7C15));
            assert_eq!(ht.candidates(h).collect::<Vec<_>>(), vec![pos(j, 0)]);
        }
    }

    #[test]
    fn doubling_rehash_drops_tombstones_too() {
        let mut ht = HashTable::new();
        // Mostly-live load: the resize must double, and `used` must equal
        // `len` afterwards (tombstones purged).
        for i in 0..60u64 {
            ht.insert(KeyHash(i.wrapping_mul(0x9E3779B97F4A7C15)), pos(i, 0));
        }
        ht.remove(KeyHash(0), pos(0, 0)); // may or may not exist; seed one tombstone
        let before = ht.slots.len();
        for i in 60..200u64 {
            ht.insert(KeyHash(i.wrapping_mul(0x9E3779B97F4A7C15)), pos(i, 0));
        }
        assert!(ht.slots.len() > before);
        assert_eq!(ht.used, ht.len);
        assert!(ht.probe_stats().resizes >= 1);
    }

    #[test]
    fn probe_counters_accumulate() {
        let mut ht = HashTable::new();
        // Colliding low bits force probe steps.
        let base = 0x40u64;
        for i in 0..4 {
            ht.insert(KeyHash(base * (i + 1)), pos(i, 0));
        }
        let s = ht.probe_stats();
        assert_eq!(s.probes, 4);
        assert!(s.probe_steps >= 1 + 2 + 3, "chain of colliding hashes");
        ht.update(KeyHash(base * 4), pos(3, 0), pos(9, 9));
        ht.remove(KeyHash(base * 3), pos(2, 0));
        let s2 = ht.probe_stats();
        assert_eq!(s2.probes, 6);
        assert!(s2.probe_steps > s.probe_steps);
    }

    #[test]
    fn iter_visits_all() {
        let mut ht = HashTable::new();
        for i in 0..100u64 {
            ht.insert(KeyHash(i), pos(i, 0));
        }
        let mut seen: Vec<u64> = ht.iter().map(|(h, _)| h.0).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn with_capacity_avoids_growth() {
        let ht = HashTable::with_capacity(1000);
        assert!(ht.slots.len() >= 1000 * 100 / MAX_LOAD_PERCENT);
    }
}
