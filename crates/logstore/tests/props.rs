//! Property-based tests: the store behaves like a hash map, no matter what
//! sequence of writes, deletes, and cleanings runs; serialization round-trips
//! arbitrary bytes; the hash table behaves like a model multimap.

use std::collections::{BTreeMap, HashMap, HashSet};

use bytes::Bytes;
use proptest::prelude::*;
use rmc_logstore::{
    key_hash, CleanerConfig, CompletionId, HashTable, KeyHash, LogConfig, LogEntry, LogPosition,
    ObjectRecord, SegmentId, Store, TableId, TombstoneRecord, Version,
};

const T: TableId = TableId(1);

#[derive(Debug, Clone)]
enum Op {
    Write(u8, Vec<u8>),
    Delete(u8),
    Clean,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(k, v)| Op::Write(k % 24, v)),
        2 => any::<u8>().prop_map(|k| Op::Delete(k % 24)),
        1 => Just(Op::Clean),
    ]
}

fn key_bytes(k: u8) -> Vec<u8> {
    format!("key-{k:03}").into_bytes()
}

/// The full live state — key → (value, version) — as cleaning must
/// preserve it, bit for bit.
fn live_map(store: &Store) -> BTreeMap<Vec<u8>, (Vec<u8>, u64)> {
    store
        .live_objects()
        .map(|o| (o.key.to_vec(), (o.value.to_vec(), o.version.0)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The store agrees with a HashMap model after every operation, under
    /// bounded memory with the cleaner enabled.
    #[test]
    fn store_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut store = Store::with_cleaner(
            LogConfig { segment_bytes: 512, max_segments: 64, ordered_index: false },
            CleanerConfig::default(),
        );
        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        let mut versions: HashMap<Vec<u8>, u64> = HashMap::new();

        for op in ops {
            match op {
                Op::Write(k, v) => {
                    let key = key_bytes(k);
                    let out = store.write(T, &key, &v).unwrap();
                    // Versions are monotone per key — even across a
                    // delete/recreate, the chain continues past the
                    // tombstone (so recovery replay is order-independent).
                    let prev = versions.insert(key.clone(), out.version.0);
                    prop_assert_eq!(out.version.0, prev.unwrap_or(0) + 1);
                    if !model.contains_key(&key) && prev.is_none() {
                        prop_assert_eq!(out.version, Version::FIRST);
                    }
                    model.insert(key, v);
                }
                Op::Delete(k) => {
                    let key = key_bytes(k);
                    let deleted = store.delete(T, &key).unwrap();
                    prop_assert_eq!(deleted.is_some(), model.remove(&key).is_some());
                    // `versions` is deliberately NOT cleared: it models the
                    // per-key version floor surviving the delete.
                }
                Op::Clean => {
                    store.clean();
                }
            }
            prop_assert_eq!(store.object_count(), model.len());
        }

        // Full final-state equality.
        for (key, val) in &model {
            let got = store.read(T, key);
            prop_assert!(got.is_some(), "missing key {:?}", key);
            prop_assert_eq!(&got.unwrap().value[..], &val[..]);
        }
        let live: usize = store.live_objects().count();
        prop_assert_eq!(live, model.len());
    }

    /// A bounded cleaner step (the unit the background threads and the
    /// simulator drive) preserves the exact live key/value/version map, at
    /// every point of an arbitrary write/delete interleaving.
    #[test]
    fn clean_step_preserves_live_map(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut store = Store::with_cleaner(
            LogConfig { segment_bytes: 512, max_segments: 64, ordered_index: false },
            // proactive=false: cleaning happens only where the test calls
            // clean_step, so each step's effect is observed in isolation.
            CleanerConfig { proactive: false, ..CleanerConfig::default() },
        );
        for op in ops {
            match op {
                Op::Write(k, v) => { store.write(T, &key_bytes(k), &v).unwrap(); }
                Op::Delete(k) => { store.delete(T, &key_bytes(k)).unwrap(); }
                Op::Clean => {
                    let before = live_map(&store);
                    store.clean_step();
                    prop_assert_eq!(before, live_map(&store));
                }
            }
        }
        // Drain the cleaner completely; the map must still be untouched.
        let before = live_map(&store);
        for _ in 0..64 {
            if store.clean_step().is_none() {
                break;
            }
        }
        prop_assert_eq!(before, live_map(&store));
    }

    /// The lock-free read handle agrees with the locked store — value,
    /// version, hit and miss alike — after every operation of an arbitrary
    /// write/delete/clean interleaving. This pins the seqlock-published
    /// index and the segment map to the same semantics as the locked path
    /// they shadow.
    #[test]
    fn lockfree_reads_match_locked_store(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut store = Store::with_cleaner(
            LogConfig { segment_bytes: 512, max_segments: 64, ordered_index: false },
            CleanerConfig::default(),
        );
        let handle = store.read_handle();
        for op in ops {
            match op {
                Op::Write(k, v) => { store.write(T, &key_bytes(k), &v).unwrap(); }
                Op::Delete(k) => { store.delete(T, &key_bytes(k)).unwrap(); }
                Op::Clean => { store.clean(); }
            }
            // With no writer active mid-probe the lock-free path must never
            // report contention, and must agree with the locked read exactly.
            for k in 0..24u8 {
                let key = key_bytes(k);
                let locked = store.read(T, &key);
                let lockfree = handle.try_read(T, &key)
                    .expect("probe cannot be contended without a concurrent writer");
                match (locked, lockfree) {
                    (None, None) => {}
                    (Some(rec), Some(view)) => {
                        prop_assert_eq!(view.version, rec.version);
                        prop_assert_eq!(view.value.as_slice(), &rec.value[..]);
                        prop_assert!(view.value.is_zero_copy(), "uncontended probe must not copy");
                    }
                    (locked, lockfree) => prop_assert!(
                        false,
                        "paths disagree on {:?}: locked hit={} lock-free hit={}",
                        key, locked.is_some(), lockfree.is_some()
                    ),
                }
            }
        }
    }

    /// Object entries round-trip arbitrary tables, keys, values, versions,
    /// and optional RIFL completion records.
    #[test]
    fn object_entry_roundtrip(
        table in any::<u64>(),
        key in proptest::collection::vec(any::<u8>(), 0..128),
        value in proptest::collection::vec(any::<u8>(), 0..512),
        version in 1u64..u64::MAX,
        completion in proptest::option::of((any::<u64>(), any::<u64>())),
    ) {
        let entry = LogEntry::Object(ObjectRecord {
            table: TableId(table),
            key: Bytes::from(key),
            value: Bytes::from(value),
            version: Version(version),
            completion: completion.map(|(client, seq)| CompletionId { client, seq }),
        });
        let mut buf = Vec::new();
        entry.serialize_into(&mut buf);
        prop_assert_eq!(buf.len(), entry.serialized_len());
        let (parsed, consumed) = LogEntry::parse(&buf).unwrap();
        prop_assert_eq!(parsed, entry);
        prop_assert_eq!(consumed, buf.len());
    }

    /// Tombstone entries round-trip.
    #[test]
    fn tombstone_entry_roundtrip(
        table in any::<u64>(),
        key in proptest::collection::vec(any::<u8>(), 0..128),
        version in any::<u64>(),
        dead in any::<u64>(),
    ) {
        let entry = LogEntry::Tombstone(TombstoneRecord {
            table: TableId(table),
            key: Bytes::from(key),
            version: Version(version),
            dead_segment: SegmentId(dead),
        });
        let mut buf = Vec::new();
        entry.serialize_into(&mut buf);
        let (parsed, _) = LogEntry::parse(&buf).unwrap();
        prop_assert_eq!(parsed, entry);
    }

    /// Any single-bit flip in a serialized entry is detected.
    #[test]
    fn bit_flips_detected(
        value in proptest::collection::vec(any::<u8>(), 1..64),
        flip_bit in 0usize..64,
    ) {
        let entry = LogEntry::Object(ObjectRecord {
            table: TableId(3),
            key: Bytes::from_static(b"victim"),
            value: Bytes::from(value),
            version: Version(9),
            completion: None,
        });
        let mut buf = Vec::new();
        entry.serialize_into(&mut buf);
        let bit = flip_bit % (buf.len() * 8);
        buf[bit / 8] ^= 1 << (bit % 8);
        // Either the parse fails, or — if the flip hit the length fields in a
        // way that still checksums — the parsed entry must differ. A silent
        // identical parse would be a checksum hole.
        match LogEntry::parse(&buf) {
            Err(_) => {}
            Ok((parsed, _)) => prop_assert_ne!(parsed, entry),
        }
    }

    /// The hash table behaves like a model multimap under inserts, removes,
    /// and updates.
    #[test]
    fn hashtable_matches_model(ops in proptest::collection::vec(
        (0u64..32, any::<u32>(), 0u8..3), 1..300)
    ) {
        let mut ht = HashTable::new();
        let mut model: HashMap<u64, HashSet<(u64, u32)>> = HashMap::new();
        for (hash, val, kind) in ops {
            let pos = LogPosition { segment: SegmentId(val as u64 % 8), offset: val % 1024 };
            let h = KeyHash(hash);
            match kind {
                0 => {
                    // Insert only if the model doesn't already hold this
                    // exact mapping (the table is a multiset otherwise).
                    if model.entry(hash).or_default().insert((pos.segment.0, pos.offset)) {
                        ht.insert(h, pos);
                    }
                }
                1 => {
                    let removed_model = model
                        .get_mut(&hash)
                        .is_some_and(|s| s.remove(&(pos.segment.0, pos.offset)));
                    let removed = ht.remove(h, pos);
                    prop_assert_eq!(removed, removed_model);
                }
                _ => {
                    let new_pos = LogPosition { segment: SegmentId(99), offset: val };
                    let model_set = model.entry(hash).or_default();
                    let had = model_set.remove(&(pos.segment.0, pos.offset));
                    let expect_update = had && model_set.insert((99, val));
                    if had && !expect_update {
                        model_set.insert((pos.segment.0, pos.offset)); // rollback dup
                    }
                    let updated = ht.update(h, pos, new_pos);
                    prop_assert_eq!(updated, had);
                    if updated && !expect_update {
                        // Table allowed a duplicate the model collapses;
                        // remove the extra to stay in sync.
                        ht.remove(h, new_pos);
                    }
                }
            }
            let total: usize = model.values().map(|s| s.len()).sum();
            prop_assert_eq!(ht.len(), total);
        }
        // Final: candidates match model sets.
        for (hash, set) in &model {
            let got: HashSet<(u64, u32)> = ht
                .candidates(KeyHash(*hash))
                .map(|p| (p.segment.0, p.offset))
                .collect();
            prop_assert_eq!(&got, set);
        }
    }

    /// key_hash is deterministic and spreads tables.
    #[test]
    fn key_hash_deterministic(table in any::<u64>(), key in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(key_hash(TableId(table), &key), key_hash(TableId(table), &key));
    }
}
