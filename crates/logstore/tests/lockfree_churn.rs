//! Lock-free readers racing writer churn and the background three-phase
//! cleaner on a tiny log — the shape the standalone server runs, distilled
//! to the engine. Two invariants under this load:
//!
//! 1. a seeded, never-deleted key is **always** readable through the
//!    lock-free path (a validated probe must never report a false miss);
//! 2. writes keep succeeding: the emergency reclaim path must wait out
//!    in-flight reader epoch pins rather than reporting out-of-memory for
//!    limbo segments that are moments from being free.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

use rmc_logstore::{CleanerConfig, LogConfig, Store, TableId};

const T: TableId = TableId(3);
const KEYS: usize = 32;
const WRITERS: usize = 3;
const READERS: usize = 3;
const ROUNDS: u32 = 150;

fn keys() -> Vec<Vec<u8>> {
    (0..KEYS).map(|i| format!("k{i}").into_bytes()).collect()
}

fn tiny_store() -> Store {
    Store::with_cleaner(
        LogConfig {
            segment_bytes: 512,
            max_segments: 16,
            ordered_index: false,
        },
        CleanerConfig {
            // Background thread owns proactive cleaning; the write path
            // keeps only the emergency inline clean — the standalone
            // server's configuration.
            proactive: false,
            ..CleanerConfig::default()
        },
    )
}

/// The standalone server's background cleaner loop (prepare under the read
/// lock, build unlocked, apply under the write lock, reclaim when idle).
fn cleaner_loop(store: &RwLock<Store>, done: &AtomicBool) {
    while !done.load(Ordering::Relaxed) {
        let Some(kind) = store.read().unwrap().clean_pressure() else {
            if store.read().unwrap().log().limbo_segments() > 0 {
                store.write().unwrap().reclaim_now();
            }
            std::thread::yield_now();
            continue;
        };
        let plan = { store.read().unwrap().prepare_clean(kind) };
        let Some(plan) = plan else {
            std::thread::yield_now();
            continue;
        };
        let prepared = plan.build();
        let _ = store.write().unwrap().apply_clean(prepared);
    }
}

#[test]
fn lockfree_reads_and_writes_survive_cleaner_churn() {
    let store = tiny_store();
    let handle = store.read_handle();
    let store = Arc::new(RwLock::new(store));
    let keys = keys();
    for k in &keys {
        store.write().unwrap().write(T, k, b"0").unwrap();
    }

    let done = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let store = Arc::clone(&store);
            let keys = keys.clone();
            std::thread::spawn(move || {
                for round in 1..=ROUNDS {
                    for k in &keys {
                        // Invariant 2: the emergency path waits out reader
                        // epoch pins, so writes never see out-of-memory
                        // while readers only pin transiently.
                        store
                            .write()
                            .unwrap()
                            .write(T, k, format!("{w}:{round}").as_bytes())
                            .unwrap_or_else(|e| panic!("write {w}:{round} failed: {e}"));
                    }
                }
            })
        })
        .collect();
    let cleaner = {
        let store = Arc::clone(&store);
        let done = Arc::clone(&done);
        std::thread::spawn(move || cleaner_loop(&store, &done))
    };
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let handle = handle.clone();
            let keys = keys.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut reads = 0u64;
                while !done.load(Ordering::Relaxed) {
                    for k in &keys {
                        match handle.try_read(T, k) {
                            // Invariant 1: no false misses, ever.
                            Ok(Some(view)) => {
                                assert!(!view.value.is_empty());
                                reads += 1;
                            }
                            Ok(None) => {
                                panic!("missed seeded key {}", String::from_utf8_lossy(k))
                            }
                            // Contended: real callers fall back to the
                            // locked path; the invariant under test is
                            // "no false miss", so just retry.
                            Err(_) => {}
                        }
                    }
                }
                reads
            })
        })
        .collect();

    for w in writers {
        w.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);
    cleaner.join().unwrap();
    for r in readers {
        assert!(r.join().unwrap() > 0, "readers must make progress");
    }
    let stats = store.read().unwrap().stats();
    assert!(stats.cleanings > 0, "churn must have cleaned");
    assert!(stats.read_lockfree > 0);
}
