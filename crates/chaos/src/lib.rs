//! # rmc-chaos — deterministic fault injection at the `Runtime` boundary
//!
//! Part of the reproduction of *"Characterizing Performance and
//! Energy-Efficiency of the RAMCloud Storage System"* (ICDCS 2017). The
//! replication/recovery protocol in `rmc-core` talks to the world only
//! through the four-op [`Runtime`](rmc_runtime::Runtime) trait; this crate
//! interposes on that boundary to subject the protocol to the message-level
//! failures that actually break such systems — drops, duplicates, delays,
//! reorders, partitions, crash-restarts, and flaky backup writes — while
//! keeping every fault decision **seeded and deterministic** so a failing
//! run replays bit-for-bit.
//!
//! The pieces:
//!
//! - [`FaultPlan`] — pure data: fault probabilities plus a schedule of
//!   [`Partition`]s and [`Crash`]es, all derived from one seed
//!   ([`FaultPlan::generate`]) within a failure budget the protocol is
//!   expected to mask ([`PlanShape`]).
//! - [`FaultState`] — the interpreter: [`FaultState::judge`] decides each
//!   message's fate (deliver / drop / delay / duplicate) from the plan's
//!   seeded RNG and records a [`FaultEvent`] trace.
//! - [`FaultRuntime`] — wraps any `Runtime` so every `send` passes through
//!   the judge; delay and reorder ride the engine's
//!   [`send_after`](rmc_runtime::Runtime::send_after).
//! - [`OpRecord`] / [`check_histories`] — the committed-write invariant
//!   checker: no acked-write loss, version monotonicity, exactly-once
//!   apply, read consistency.
//! - [`minimize`] — greedy domain-level shrinking of a failing plan (the
//!   vendored proptest shim does not shrink).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod disk;
mod fault;
mod history;
mod minimize;
mod plan;
mod runtime;

pub use disk::{DiskFaultStats, DiskFaults};
pub use fault::{DropReason, FaultEvent, FaultState, FaultStats, MsgClass};
pub use history::{check_histories, OpKind, OpRecord, Violation};
pub use minimize::minimize;
pub use plan::{Crash, FaultPlan, Partition, PlanShape};
pub use runtime::FaultRuntime;
