//! [`FaultState`]: the interpreter that turns a [`FaultPlan`](crate::FaultPlan)
//! plus a message stream into concrete per-message fault decisions.
//!
//! Every decision is drawn from the plan's seeded RNG in message order, so
//! under a deterministic engine (same message stream) the decisions — and
//! the [`FaultEvent`] trace recording them — replay bit-for-bit.

use rmc_runtime::{NodeId, SimDuration, SimRng, SimTime};

use crate::plan::FaultPlan;

/// Coarse message classification the fault layer understands. The wrapper
/// is generic over the protocol's message type; a classifier function maps
/// each message into one of these buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgClass {
    /// Replication traffic to a backup — additionally subject to
    /// `backup_write_fail_prob`.
    BackupWrite,
    /// Everything else.
    Other,
}

/// Why a message was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// An active partition cut the link.
    Partition,
    /// The per-message drop probability fired.
    Random,
    /// The backup-write fault probability fired.
    BackupWriteFault,
}

/// One recorded fault decision. The trace of these is the run's fault
/// fingerprint: two runs of the same plan under the deterministic engine
/// must produce identical traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// Message silently lost.
    Dropped {
        /// Send instant.
        at: SimTime,
        /// Sender.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
        /// Why.
        reason: DropReason,
    },
    /// Message held back before delivery.
    Delayed {
        /// Send instant.
        at: SimTime,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Extra delivery delay.
        by: SimDuration,
    },
    /// Message delivered twice; the copy carries its own delay.
    Duplicated {
        /// Send instant.
        at: SimTime,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Delay of the duplicate copy.
        copy_delay: SimDuration,
    },
}

/// Running totals over the fault decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages judged in total.
    pub judged: u64,
    /// Drops from partitions.
    pub partition_drops: u64,
    /// Random drops.
    pub random_drops: u64,
    /// Backup-write fault drops.
    pub backup_write_drops: u64,
    /// Delayed deliveries.
    pub delayed: u64,
    /// Duplicated deliveries.
    pub duplicated: u64,
}

/// Interprets a [`FaultPlan`] against a message stream.
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    rng: SimRng,
    /// Recorded decisions (only faults; clean deliveries are not traced).
    pub trace: Vec<FaultEvent>,
    /// Totals.
    pub stats: FaultStats,
    /// Set false to stop growing `trace` (long threaded runs).
    pub trace_enabled: bool,
}

impl FaultState {
    /// Builds the interpreter; the RNG is derived from the plan's seed.
    pub fn new(plan: FaultPlan) -> FaultState {
        let rng = SimRng::seed_from_u64(plan.seed ^ 0xFA_17_5E_ED);
        FaultState {
            plan,
            rng,
            trace: Vec::new(),
            stats: FaultStats::default(),
            trace_enabled: true,
        }
    }

    /// The plan being interpreted.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Is the link `from → to` currently cut by a partition?
    pub fn partitioned(&self, now: SimTime, from: NodeId, to: NodeId) -> bool {
        self.plan.partitions.iter().any(|p| p.cuts(now, from, to))
    }

    fn record(&mut self, ev: FaultEvent) {
        if self.trace_enabled {
            self.trace.push(ev);
        }
    }

    /// Judges one message: returns the delivery delays for each copy to
    /// deliver — empty means the message is dropped, `[ZERO]` is a clean
    /// immediate delivery, and two entries mean a duplicate.
    ///
    /// Draws are consumed strictly in message order, so a replay that
    /// presents the same message stream consumes the identical draw
    /// sequence and reaches the identical decisions.
    pub fn judge(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        class: MsgClass,
    ) -> Vec<SimDuration> {
        self.stats.judged += 1;
        // Partitions are pure schedule — no randomness consumed.
        if self.partitioned(now, from, to) {
            self.stats.partition_drops += 1;
            self.record(FaultEvent::Dropped {
                at: now,
                from,
                to,
                reason: DropReason::Partition,
            });
            return Vec::new();
        }
        // After quiesce the network is perfect; consume no randomness so
        // the convergence phase is identical across plans with different
        // probabilities.
        if !self.plan.message_faults_active(now) {
            return vec![SimDuration::ZERO];
        }
        let backup_fault =
            class == MsgClass::BackupWrite && self.rng.gen_bool(self.plan.backup_write_fail_prob);
        let dropped = self.rng.gen_bool(self.plan.drop_prob);
        if backup_fault || dropped {
            let reason = if backup_fault {
                self.stats.backup_write_drops += 1;
                DropReason::BackupWriteFault
            } else {
                self.stats.random_drops += 1;
                DropReason::Random
            };
            self.record(FaultEvent::Dropped {
                at: now,
                from,
                to,
                reason,
            });
            return Vec::new();
        }
        let delay = if self.rng.gen_bool(self.plan.delay_prob) {
            let d =
                SimDuration::from_nanos(self.rng.gen_below(self.plan.max_delay.as_nanos().max(1)));
            self.stats.delayed += 1;
            self.record(FaultEvent::Delayed {
                at: now,
                from,
                to,
                by: d,
            });
            d
        } else {
            SimDuration::ZERO
        };
        let mut out = vec![delay];
        if self.rng.gen_bool(self.plan.dup_prob) {
            let copy_delay =
                SimDuration::from_nanos(self.rng.gen_below(self.plan.max_delay.as_nanos().max(1)));
            self.stats.duplicated += 1;
            self.record(FaultEvent::Duplicated {
                at: now,
                from,
                to,
                copy_delay,
            });
            out.push(copy_delay);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Partition;

    fn noisy_plan(seed: u64) -> FaultPlan {
        let mut p = FaultPlan::quiet();
        p.seed = seed;
        p.drop_prob = 0.2;
        p.dup_prob = 0.2;
        p.delay_prob = 0.4;
        p.max_delay = SimDuration::from_millis(5);
        p.quiesce_at = SimTime::from_secs(1);
        p
    }

    #[test]
    fn same_plan_same_stream_same_decisions() {
        let mut a = FaultState::new(noisy_plan(7));
        let mut b = FaultState::new(noisy_plan(7));
        for i in 0..500u64 {
            let now = SimTime::from_micros(i * 37);
            let (f, t) = (NodeId((i % 5) as usize), NodeId(((i + 1) % 5) as usize));
            assert_eq!(
                a.judge(now, f, t, MsgClass::Other),
                b.judge(now, f, t, MsgClass::Other)
            );
        }
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.stats, b.stats);
        assert!(a.stats.random_drops > 0, "probabilities actually fire");
        assert!(a.stats.duplicated > 0);
    }

    #[test]
    fn quiesce_makes_the_network_perfect() {
        let mut s = FaultState::new(noisy_plan(3));
        let after = SimTime::from_secs(2);
        for i in 0..200u64 {
            let fates = s.judge(after, NodeId(0), NodeId(1), MsgClass::Other);
            assert_eq!(fates, vec![SimDuration::ZERO], "msg {i} clean post-quiesce");
        }
    }

    #[test]
    fn partitions_drop_without_consuming_randomness() {
        let mut plan = noisy_plan(9);
        plan.partitions.push(Partition {
            start: SimTime::ZERO,
            heal: SimTime::from_millis(100),
            group: vec![NodeId(1)],
            symmetric: true,
        });
        let mut with = FaultState::new(plan.clone());
        // Messages across the cut are dropped…
        assert!(with
            .judge(
                SimTime::from_millis(1),
                NodeId(1),
                NodeId(2),
                MsgClass::Other
            )
            .is_empty());
        assert!(with
            .judge(
                SimTime::from_millis(1),
                NodeId(2),
                NodeId(1),
                MsgClass::Other
            )
            .is_empty());
        // …and the RNG stream for other links is unaffected by how many
        // partition drops happened.
        let mut without = FaultState::new(plan);
        let now = SimTime::from_millis(1);
        assert_eq!(
            with.judge(now, NodeId(3), NodeId(4), MsgClass::Other),
            without.judge(now, NodeId(3), NodeId(4), MsgClass::Other)
        );
    }

    #[test]
    fn backup_write_faults_hit_only_backup_writes() {
        let mut p = FaultPlan::quiet();
        p.backup_write_fail_prob = 1.0;
        p.quiesce_at = SimTime::from_secs(1);
        let mut s = FaultState::new(p);
        assert!(s
            .judge(SimTime::ZERO, NodeId(0), NodeId(1), MsgClass::BackupWrite)
            .is_empty());
        assert_eq!(
            s.judge(SimTime::ZERO, NodeId(0), NodeId(1), MsgClass::Other),
            vec![SimDuration::ZERO]
        );
        assert_eq!(s.stats.backup_write_drops, 1);
    }
}
