//! Greedy [`FaultPlan`] minimization: given a plan that makes a test fail,
//! strip it down to a (locally) minimal plan that still fails.
//!
//! The vendored proptest shim does not shrink, so the chaos suites shrink
//! at the domain level instead: remove scheduled incidents one at a time,
//! then zero the probabilistic knobs, keeping each simplification only if
//! the failure reproduces. The result is what lands in the panic message —
//! a plan a human can read and replay.

use rmc_runtime::SimDuration;

use crate::plan::FaultPlan;

/// Minimizes `plan` against `fails` (a predicate that re-runs the test and
/// returns `true` when the failure reproduces). `fails(&plan)` is assumed
/// true on entry; the returned plan also satisfies it. Runs `fails` at most
/// a few dozen times for typical plans.
pub fn minimize<F: FnMut(&FaultPlan) -> bool>(plan: &FaultPlan, mut fails: F) -> FaultPlan {
    let mut best = plan.clone();
    // Fixpoint over structural removals: deleting one incident can make
    // another deletable.
    loop {
        let mut simplified = false;
        for i in (0..best.crashes.len()).rev() {
            let mut candidate = best.clone();
            candidate.crashes.remove(i);
            if fails(&candidate) {
                best = candidate;
                simplified = true;
            }
        }
        for i in (0..best.partitions.len()).rev() {
            let mut candidate = best.clone();
            candidate.partitions.remove(i);
            if fails(&candidate) {
                best = candidate;
                simplified = true;
            }
        }
        if !simplified {
            break;
        }
    }
    // Zero each probabilistic knob independently.
    let knobs: [fn(&mut FaultPlan); 4] = [
        |p| p.drop_prob = 0.0,
        |p| p.dup_prob = 0.0,
        |p| p.delay_prob = 0.0,
        |p| p.backup_write_fail_prob = 0.0,
    ];
    for zero in knobs {
        let mut candidate = best.clone();
        zero(&mut candidate);
        if fails(&candidate) {
            best = candidate;
        }
    }
    let mut candidate = best.clone();
    candidate.max_delay = SimDuration::ZERO;
    if fails(&candidate) {
        best = candidate;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Crash, Partition};
    use rmc_runtime::{NodeId, SimTime};

    #[test]
    fn strips_everything_irrelevant() {
        let mut plan = FaultPlan::quiet();
        plan.drop_prob = 0.5;
        plan.dup_prob = 0.5;
        plan.delay_prob = 0.5;
        plan.max_delay = SimDuration::from_millis(5);
        for i in 0..4 {
            plan.crashes.push(Crash {
                at: SimTime::from_millis(10 * (i + 1)),
                server: i as usize,
                restart_after: None,
            });
            plan.partitions.push(Partition {
                start: SimTime::from_millis(5 * (i + 1)),
                heal: SimTime::from_millis(5 * (i + 1) + 3),
                group: vec![NodeId(i as usize)],
                symmetric: true,
            });
        }
        // The "test" only needs the crash of server 2 plus a nonzero drop
        // probability to fail.
        let needs = |p: &FaultPlan| p.crashes.iter().any(|c| c.server == 2) && p.drop_prob > 0.0;
        let minimal = minimize(&plan, needs);
        assert_eq!(minimal.crashes.len(), 1);
        assert_eq!(minimal.crashes[0].server, 2);
        assert!(minimal.partitions.is_empty());
        assert!(minimal.drop_prob > 0.0);
        assert_eq!(minimal.dup_prob, 0.0);
        assert_eq!(minimal.delay_prob, 0.0);
        assert_eq!(minimal.max_delay, SimDuration::ZERO);
        assert!(needs(&minimal));
    }

    #[test]
    fn leaves_an_already_minimal_plan_alone() {
        let mut plan = FaultPlan::quiet();
        plan.crashes.push(Crash {
            at: SimTime::from_millis(1),
            server: 0,
            restart_after: None,
        });
        let minimal = minimize(&plan, |p| !p.crashes.is_empty());
        assert_eq!(minimal.crashes, plan.crashes);
    }
}
