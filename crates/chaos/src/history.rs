//! The committed-write invariant checker: replay each client's recorded
//! operation history against the cluster's final live map and prove the
//! four chaos invariants.
//!
//! The checker assumes the harness discipline the chaos tests follow:
//! clients own **disjoint key spaces** (single writer per key) and issue
//! operations **sequentially** — an op is retried until acknowledged before
//! the next op is issued, so at most the *final* op of a history may be
//! unacknowledged. Under those rules the acked prefix of each key's history
//! fully determines the key's final state, and the checker verifies:
//!
//! 1. **No acked-write loss** — the final live value/version of every key
//!    equals the state after its last acked mutation (modulo a possibly
//!    applied unacked final op).
//! 2. **Version monotonicity** — acked versions per key strictly increase,
//!    across deletes and recoveries.
//! 3. **Exactly-once apply** — a retried or duplicated put is applied once:
//!    the final version equals the acked version, never above it.
//! 4. **Read consistency** — every acked read returns the value of the
//!    last acked put before it (reads are linearized by the sequential,
//!    single-writer discipline).

use std::collections::BTreeMap;

/// What one client operation did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// Write `value` to the key.
    Put(Vec<u8>),
    /// Delete the key.
    Del,
    /// Read the key.
    Get,
}

/// One recorded client operation, in program order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// Target key.
    pub key: Vec<u8>,
    /// Operation.
    pub kind: OpKind,
    /// Did the client receive an acknowledgment?
    pub acked: bool,
    /// Version carried by the ack: the assigned version for a put, the
    /// deleted version for a del (0 when the key was absent), 0 for gets.
    pub version: u64,
    /// For gets: the value read (`None` = key absent). Unset for writes.
    pub read: Option<Option<Vec<u8>>>,
    /// How many times the request was (re)sent.
    pub retries: u64,
}

/// A detected invariant violation. `Display` includes enough context to
/// reproduce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// An acked write's effect is missing or wrong in the final live map.
    AckedWriteLost {
        /// The key.
        key: Vec<u8>,
        /// Expected final value (`None` = deleted).
        expected: Option<Vec<u8>>,
        /// Found final value.
        found: Option<Vec<u8>>,
    },
    /// Acked versions did not strictly increase.
    VersionRegression {
        /// The key.
        key: Vec<u8>,
        /// Earlier acked version.
        prev: u64,
        /// The non-increasing acked version that followed.
        next: u64,
    },
    /// Final live version exceeds the last acked version with no
    /// unacked op to explain it — a retry applied twice.
    DoubleApply {
        /// The key.
        key: Vec<u8>,
        /// Last acked version.
        acked: u64,
        /// Live version found.
        live: u64,
    },
    /// An acked read returned something other than the last acked put.
    StaleRead {
        /// The key.
        key: Vec<u8>,
        /// Expected value at that point.
        expected: Option<Vec<u8>>,
        /// Value the read returned.
        got: Option<Vec<u8>>,
    },
    /// The live map holds a key no history ever wrote.
    PhantomKey {
        /// The key.
        key: Vec<u8>,
    },
    /// Two histories wrote the same key — a harness bug, the checker's
    /// single-writer assumption is void.
    SharedKey {
        /// The key.
        key: Vec<u8>,
    },
    /// An unacked op was followed by more ops — the harness violated the
    /// retry-until-acked discipline.
    UnackedMidHistory {
        /// The key.
        key: Vec<u8>,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let k = |key: &[u8]| String::from_utf8_lossy(key).into_owned();
        match self {
            Violation::AckedWriteLost {
                key,
                expected,
                found,
            } => write!(
                f,
                "acked write lost on {:?}: expected {:?}, found {:?}",
                k(key),
                expected.as_deref().map(String::from_utf8_lossy),
                found.as_deref().map(String::from_utf8_lossy),
            ),
            Violation::VersionRegression { key, prev, next } => {
                write!(f, "version regression on {:?}: {prev} then {next}", k(key))
            }
            Violation::DoubleApply { key, acked, live } => write!(
                f,
                "double apply on {:?}: acked version {acked}, live version {live}",
                k(key)
            ),
            Violation::StaleRead { key, expected, got } => write!(
                f,
                "stale read on {:?}: expected {:?}, got {:?}",
                k(key),
                expected.as_deref().map(String::from_utf8_lossy),
                got.as_deref().map(String::from_utf8_lossy),
            ),
            Violation::PhantomKey { key } => write!(f, "phantom key {:?}", k(key)),
            Violation::SharedKey { key } => write!(f, "key {:?} written by two histories", k(key)),
            Violation::UnackedMidHistory { key } => {
                write!(f, "unacked op mid-history on {:?}", k(key))
            }
        }
    }
}

/// Final expected state of one key derived from its history.
#[derive(Debug, Clone, PartialEq, Eq)]
struct KeyExpectation {
    /// Value after the last acked mutation (`None` = absent).
    value: Option<Vec<u8>>,
    /// Version of the last acked mutation (0 = never mutated).
    version: u64,
    /// A trailing unacked mutation that may or may not have applied.
    pending: Option<OpKind>,
}

/// Checks every history against the final live map (`key → (value,
/// version)`). Returns all violations found (empty = all invariants hold).
///
/// `require_all_acked` asserts convergence: with faults quiesced and
/// clients run to completion, every op must have been acked and no
/// `pending` candidates are tolerated.
pub fn check_histories(
    histories: &[Vec<OpRecord>],
    live: &BTreeMap<Vec<u8>, (Vec<u8>, u64)>,
    require_all_acked: bool,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut expectations: BTreeMap<Vec<u8>, KeyExpectation> = BTreeMap::new();
    let mut owner: BTreeMap<Vec<u8>, usize> = BTreeMap::new();

    for (client, history) in histories.iter().enumerate() {
        // Per-key state while walking this client's program order.
        let mut states: BTreeMap<Vec<u8>, KeyExpectation> = BTreeMap::new();
        let last_idx = history.len().wrapping_sub(1);
        for (i, op) in history.iter().enumerate() {
            match owner.entry(op.key.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(client);
                }
                std::collections::btree_map::Entry::Occupied(e) => {
                    if *e.get() != client {
                        violations.push(Violation::SharedKey {
                            key: op.key.clone(),
                        });
                        continue;
                    }
                }
            }
            let state = states.entry(op.key.clone()).or_insert(KeyExpectation {
                value: None,
                version: 0,
                pending: None,
            });
            if !op.acked {
                if i != last_idx || require_all_acked {
                    violations.push(Violation::UnackedMidHistory {
                        key: op.key.clone(),
                    });
                } else if matches!(op.kind, OpKind::Put(_) | OpKind::Del) {
                    state.pending = Some(op.kind.clone());
                }
                continue;
            }
            match &op.kind {
                OpKind::Put(v) => {
                    if op.version <= state.version {
                        violations.push(Violation::VersionRegression {
                            key: op.key.clone(),
                            prev: state.version,
                            next: op.version,
                        });
                    }
                    state.value = Some(v.clone());
                    state.version = state.version.max(op.version);
                }
                OpKind::Del => {
                    // A del of an absent key acks version 0; of a live key,
                    // the deleted version, which must not regress.
                    if op.version != 0 && op.version < state.version {
                        violations.push(Violation::VersionRegression {
                            key: op.key.clone(),
                            prev: state.version,
                            next: op.version,
                        });
                    }
                    state.value = None;
                    state.version = state.version.max(op.version);
                }
                OpKind::Get => {
                    let got = op.read.clone().unwrap_or(None);
                    if got != state.value {
                        violations.push(Violation::StaleRead {
                            key: op.key.clone(),
                            expected: state.value.clone(),
                            got,
                        });
                    }
                }
            }
        }
        for (key, st) in states {
            expectations.insert(key, st);
        }
    }

    // Compare the final live map against each key's expectation.
    for (key, exp) in &expectations {
        let found = live.get(key);
        let found_value = found.map(|(v, _)| v.clone());
        let matches_acked = found_value == exp.value;
        let matches_pending = match &exp.pending {
            Some(OpKind::Put(v)) => found_value.as_ref() == Some(v),
            Some(OpKind::Del) => found_value.is_none(),
            _ => false,
        };
        if !matches_acked && !matches_pending {
            violations.push(Violation::AckedWriteLost {
                key: key.clone(),
                expected: exp.value.clone(),
                found: found_value,
            });
            continue;
        }
        if let Some((_, live_version)) = found {
            if matches_acked && exp.pending.is_none() {
                // Nothing unacked can explain a higher live version: a
                // retry must have applied twice.
                if *live_version > exp.version && exp.value.is_some() {
                    violations.push(Violation::DoubleApply {
                        key: key.clone(),
                        acked: exp.version,
                        live: *live_version,
                    });
                }
                if *live_version < exp.version && exp.value.is_some() {
                    violations.push(Violation::VersionRegression {
                        key: key.clone(),
                        prev: exp.version,
                        next: *live_version,
                    });
                }
            }
        }
    }

    // Keys no history wrote must not appear in the live map.
    for key in live.keys() {
        if !expectations.contains_key(key) {
            violations.push(Violation::PhantomKey { key: key.clone() });
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(key: &str, value: &str, version: u64) -> OpRecord {
        OpRecord {
            key: key.as_bytes().to_vec(),
            kind: OpKind::Put(value.as_bytes().to_vec()),
            acked: true,
            version,
            read: None,
            retries: 0,
        }
    }

    fn del(key: &str, version: u64) -> OpRecord {
        OpRecord {
            key: key.as_bytes().to_vec(),
            kind: OpKind::Del,
            acked: true,
            version,
            read: None,
            retries: 0,
        }
    }

    fn get(key: &str, read: Option<&str>) -> OpRecord {
        OpRecord {
            key: key.as_bytes().to_vec(),
            kind: OpKind::Get,
            acked: true,
            version: 0,
            read: Some(read.map(|v| v.as_bytes().to_vec())),
            retries: 0,
        }
    }

    fn live(entries: &[(&str, &str, u64)]) -> BTreeMap<Vec<u8>, (Vec<u8>, u64)> {
        entries
            .iter()
            .map(|(k, v, ver)| (k.as_bytes().to_vec(), (v.as_bytes().to_vec(), *ver)))
            .collect()
    }

    #[test]
    fn clean_history_passes() {
        let h = vec![vec![
            put("a", "1", 1),
            get("a", Some("1")),
            put("a", "2", 2),
            put("b", "x", 1),
            del("b", 1),
        ]];
        let l = live(&[("a", "2", 2)]);
        assert_eq!(check_histories(&h, &l, true), Vec::new());
    }

    #[test]
    fn lost_acked_write_detected() {
        let h = vec![vec![put("a", "1", 1)]];
        let l = BTreeMap::new();
        let v = check_histories(&h, &l, true);
        assert!(matches!(v[0], Violation::AckedWriteLost { .. }), "{v:?}");
    }

    #[test]
    fn lost_acked_delete_detected() {
        let h = vec![vec![put("a", "1", 1), del("a", 1)]];
        let l = live(&[("a", "1", 1)]);
        let v = check_histories(&h, &l, true);
        assert!(matches!(v[0], Violation::AckedWriteLost { .. }), "{v:?}");
    }

    #[test]
    fn version_regression_detected() {
        let h = vec![vec![put("a", "1", 5), put("a", "2", 5)]];
        let l = live(&[("a", "2", 5)]);
        let v = check_histories(&h, &l, true);
        assert!(
            matches!(
                v[0],
                Violation::VersionRegression {
                    prev: 5,
                    next: 5,
                    ..
                }
            ),
            "{v:?}"
        );
    }

    #[test]
    fn double_apply_detected() {
        // Acked at version 1 but live at version 2 with nothing pending:
        // the retry must have applied twice.
        let h = vec![vec![put("a", "1", 1)]];
        let l = live(&[("a", "1", 2)]);
        let v = check_histories(&h, &l, true);
        assert!(
            matches!(
                v[0],
                Violation::DoubleApply {
                    acked: 1,
                    live: 2,
                    ..
                }
            ),
            "{v:?}"
        );
    }

    #[test]
    fn stale_read_detected() {
        let h = vec![vec![put("a", "new", 1), get("a", Some("old"))]];
        let l = live(&[("a", "new", 1)]);
        let v = check_histories(&h, &l, true);
        assert!(matches!(v[0], Violation::StaleRead { .. }), "{v:?}");
    }

    #[test]
    fn phantom_and_shared_keys_detected() {
        let h = vec![vec![put("a", "1", 1)], vec![put("a", "2", 1)]];
        let l = live(&[("a", "2", 1), ("ghost", "?", 1)]);
        let v = check_histories(&h, &l, true);
        assert!(v.iter().any(|x| matches!(x, Violation::SharedKey { .. })));
        assert!(v.iter().any(|x| matches!(x, Violation::PhantomKey { .. })));
    }

    #[test]
    fn trailing_unacked_put_is_a_candidate_state() {
        let mut pending = put("a", "maybe", 0);
        pending.acked = false;
        let h = vec![vec![put("a", "sure", 1), pending]];
        // Both "applied" and "not applied" finals pass when convergence is
        // not required…
        assert_eq!(
            check_histories(&h, &live(&[("a", "sure", 1)]), false),
            Vec::new()
        );
        assert_eq!(
            check_histories(&h, &live(&[("a", "maybe", 2)]), false),
            Vec::new()
        );
        // …any third value fails…
        assert!(!check_histories(&h, &live(&[("a", "other", 2)]), false).is_empty());
        // …and requiring convergence rejects the unacked tail outright.
        assert!(!check_histories(&h, &live(&[("a", "sure", 1)]), true).is_empty());
    }

    #[test]
    fn unacked_mid_history_is_a_harness_bug() {
        let mut bad = put("a", "x", 0);
        bad.acked = false;
        let h = vec![vec![bad, put("a", "y", 1)]];
        let v = check_histories(&h, &live(&[("a", "y", 1)]), false);
        assert!(matches!(v[0], Violation::UnackedMidHistory { .. }), "{v:?}");
    }
}
