//! [`FaultPlan`]: a complete, seeded description of every fault a run will
//! suffer.
//!
//! A plan is *data*, not behavior: probabilities for per-link message
//! faults, a schedule of partitions and crash/restarts, and a quiesce
//! instant after which no fault fires. Interpreting the plan against a
//! message stream is [`crate::FaultState`]'s job. Because the plan plus the
//! engine's event order fully determine every fault decision, the same plan
//! replayed under the deterministic engine yields a bit-identical run — and
//! a failing plan can be shrunk ([`crate::minimize`]) and re-run verbatim.

use rmc_runtime::{NodeId, SimDuration, SimRng, SimTime};

/// A network partition: `group` is cut off from the rest of the cluster
/// between `start` (inclusive) and `heal` (exclusive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// When the partition forms.
    pub start: SimTime,
    /// When it heals; no effect at or after this instant.
    pub heal: SimTime,
    /// The isolated node group.
    pub group: Vec<NodeId>,
    /// Symmetric partitions drop traffic in both directions; asymmetric
    /// ones drop only messages *from* the group (the group still hears the
    /// outside world — the nastier failure mode, since heartbeats die while
    /// commands keep arriving).
    pub symmetric: bool,
}

impl Partition {
    /// Is this partition in force at `now`?
    pub fn active(&self, now: SimTime) -> bool {
        self.start <= now && now < self.heal
    }

    /// Does this partition cut the link `from → to` at `now`?
    pub fn cuts(&self, now: SimTime, from: NodeId, to: NodeId) -> bool {
        if !self.active(now) {
            return false;
        }
        let from_in = self.group.contains(&from);
        let to_in = self.group.contains(&to);
        if self.symmetric {
            from_in != to_in
        } else {
            from_in && !to_in
        }
    }
}

/// A scheduled server crash, optionally followed by a restart of a fresh
/// incarnation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crash {
    /// When the server dies.
    pub at: SimTime,
    /// Which server (cluster server index, not [`NodeId`]).
    pub server: usize,
    /// Delay until a new incarnation boots, or `None` for a permanent
    /// crash.
    pub restart_after: Option<SimDuration>,
}

/// The full fault schedule for one run.
///
/// All random decisions (per-message drop/dup/delay draws) come from a
/// [`SimRng`] seeded with `seed`, so a plan value plus a deterministic
/// engine replays exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every per-message random draw.
    pub seed: u64,
    /// Per-message probability of silent loss.
    pub drop_prob: f64,
    /// Per-message probability of a duplicate delivery (the duplicate gets
    /// its own random delay, so duplicates also reorder).
    pub dup_prob: f64,
    /// Per-message probability of added delay.
    pub delay_prob: f64,
    /// Upper bound on added delay (delays are uniform in `0..max_delay`);
    /// delayed messages overtake later undelayed ones, which is how the
    /// plan expresses reordering.
    pub max_delay: SimDuration,
    /// Scheduled partitions.
    pub partitions: Vec<Partition>,
    /// Scheduled crash/restarts.
    pub crashes: Vec<Crash>,
    /// Extra per-message loss probability applied only to backup-write
    /// traffic (replication RPCs), modeling flaky backup I/O.
    pub backup_write_fail_prob: f64,
    /// Per-append probability that a backup's file write lands short
    /// (torn-frame crash signature) and errors. The append is not acked.
    pub disk_short_write_prob: f64,
    /// Per-fsync probability of an EIO; under `fsync=per_write` the append
    /// fails and is not acked.
    pub disk_fsync_eio_prob: f64,
    /// Per-append probability that one bit of the frame is flipped on its
    /// way to the platter — silent corruption, detected only by the CRC on
    /// recovery and then quarantined.
    pub disk_bit_flip_prob: f64,
    /// Per-append probability of a stuck-slow I/O stall.
    pub disk_stall_prob: f64,
    /// Upper bound on an injected stall (uniform in `0..disk_max_stall`).
    pub disk_max_stall: SimDuration,
    /// All message-level faults cease at this instant (partitions and
    /// crashes are bounded by their own schedule; generated plans keep them
    /// before `quiesce_at` too, so convergence is checkable afterward).
    pub quiesce_at: SimTime,
}

impl FaultPlan {
    /// A plan that injects nothing — the identity wrapper.
    pub fn quiet() -> FaultPlan {
        FaultPlan {
            seed: 0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            max_delay: SimDuration::ZERO,
            partitions: Vec::new(),
            crashes: Vec::new(),
            backup_write_fail_prob: 0.0,
            disk_short_write_prob: 0.0,
            disk_fsync_eio_prob: 0.0,
            disk_bit_flip_prob: 0.0,
            disk_stall_prob: 0.0,
            disk_max_stall: SimDuration::ZERO,
            quiesce_at: SimTime::ZERO,
        }
    }

    /// Are any disk-level fault probabilities set?
    pub fn disk_faults_enabled(&self) -> bool {
        self.disk_short_write_prob > 0.0
            || self.disk_fsync_eio_prob > 0.0
            || self.disk_bit_flip_prob > 0.0
            || self.disk_stall_prob > 0.0
    }

    /// Do any message-level faults remain possible at `now`?
    pub fn message_faults_active(&self, now: SimTime) -> bool {
        now < self.quiesce_at
            && (self.drop_prob > 0.0
                || self.dup_prob > 0.0
                || self.delay_prob > 0.0
                || self.backup_write_fail_prob > 0.0
                || self.partitions.iter().any(|p| now < p.heal))
    }

    /// The last instant at which any scheduled fault (partition heal,
    /// crash, restart) takes effect.
    pub fn last_scheduled_event(&self) -> SimTime {
        let mut last = SimTime::ZERO;
        for p in &self.partitions {
            last = last.max(p.heal);
        }
        for c in &self.crashes {
            let t = match c.restart_after {
                Some(d) => c.at.saturating_add(d),
                None => c.at,
            };
            last = last.max(t);
        }
        last
    }
}

/// Cluster geometry and knobs for [`FaultPlan::generate`].
#[derive(Debug, Clone)]
pub struct PlanShape {
    /// `NodeId`s of the servers, indexed by server index — partition
    /// targets. The coordinator and clients are never partitioned or
    /// crashed by generated plans (crashing the single coordinator is a
    /// different protocol than the paper's, and client faults are modeled
    /// by message loss).
    pub server_nodes: Vec<NodeId>,
    /// Replication factor; generated plans keep at least
    /// `replication + 1` servers up so every write retains a quorum path.
    pub replication: usize,
    /// Maximum number of incidents (crashes or partitions) to schedule.
    pub max_incidents: usize,
    /// Allow crash/restart incidents.
    pub allow_crashes: bool,
    /// Allow partition incidents.
    pub allow_partitions: bool,
    /// Upper bounds for the per-message fault probabilities.
    pub max_drop_prob: f64,
    /// Upper bound for the duplicate probability.
    pub max_dup_prob: f64,
    /// Upper bound for the delay probability.
    pub max_delay_prob: f64,
    /// Upper bound for the backup-write fault probability.
    pub max_backup_fail_prob: f64,
    /// Upper bound for each disk fault probability (short write, fsync
    /// EIO, bit flip, stall). Zero keeps generated plans disk-clean, which
    /// is the default: disk faults only matter to file-backed harnesses.
    pub max_disk_fault_prob: f64,
    /// Gap between consecutive incidents — must comfortably exceed
    /// detection + recovery + restart so generated plans never have two
    /// servers down at once (which replication factor 2 cannot mask).
    pub incident_gap: SimDuration,
}

impl PlanShape {
    /// Defaults sized for the protocol's simulated timings (10 ms
    /// heartbeats, 50 ms failure timeout).
    pub fn new(server_nodes: Vec<NodeId>, replication: usize) -> PlanShape {
        PlanShape {
            server_nodes,
            replication,
            max_incidents: 3,
            allow_crashes: true,
            allow_partitions: true,
            max_drop_prob: 0.04,
            max_dup_prob: 0.10,
            max_delay_prob: 0.25,
            max_backup_fail_prob: 0.04,
            max_disk_fault_prob: 0.0,
            incident_gap: SimDuration::from_millis(400),
        }
    }
}

impl FaultPlan {
    /// Generates a random — but fully seed-determined — plan within
    /// `shape`'s failure budget: incidents strike one server at a time,
    /// spaced `incident_gap` apart, and everything quiesces before the
    /// checker's convergence window.
    pub fn generate(seed: u64, shape: &PlanShape) -> FaultPlan {
        let mut rng = SimRng::seed_from_u64(seed ^ 0xC4A0_5EED);
        let mut plan = FaultPlan::quiet();
        plan.seed = seed;

        plan.drop_prob = rng.next_f64() * shape.max_drop_prob;
        plan.dup_prob = rng.next_f64() * shape.max_dup_prob;
        plan.delay_prob = rng.next_f64() * shape.max_delay_prob;
        plan.max_delay = SimDuration::from_micros(rng.gen_range(500, 20_000));
        plan.backup_write_fail_prob = rng.next_f64() * shape.max_backup_fail_prob;
        if shape.max_disk_fault_prob > 0.0 {
            // Drawn only when enabled so shapes that don't opt in keep the
            // exact RNG stream (and thus plans) they always generated.
            plan.disk_short_write_prob = rng.next_f64() * shape.max_disk_fault_prob;
            plan.disk_fsync_eio_prob = rng.next_f64() * shape.max_disk_fault_prob;
            plan.disk_bit_flip_prob = rng.next_f64() * shape.max_disk_fault_prob;
            plan.disk_stall_prob = rng.next_f64() * shape.max_disk_fault_prob;
            plan.disk_max_stall = SimDuration::from_micros(rng.gen_range(100, 5_000));
        }

        let incidents = if shape.allow_crashes || shape.allow_partitions {
            rng.gen_below(shape.max_incidents as u64 + 1) as usize
        } else {
            0
        };
        let n = shape.server_nodes.len();
        let gap = shape.incident_gap.as_nanos();
        // First incident only after clients have some acked work to lose.
        let mut at = SimTime::from_nanos(rng.gen_range(gap / 8, gap / 2));
        let mut crashed_for_good = vec![false; n];
        for _ in 0..incidents {
            // Victims: any server not permanently dead; one at a time, and
            // never below replication+1 alive.
            let candidates: Vec<usize> = (0..n).filter(|&s| !crashed_for_good[s]).collect();
            let alive = candidates.len();
            if alive <= shape.replication + 1 {
                break;
            }
            let victim = candidates[rng.gen_below(candidates.len() as u64) as usize];
            let pick_crash = match (shape.allow_crashes, shape.allow_partitions) {
                (true, true) => rng.gen_bool(0.6),
                (true, false) => true,
                (false, true) => false,
                (false, false) => break,
            };
            if pick_crash {
                let restart = rng.gen_bool(0.6).then(|| {
                    // Restart well after detection fires, well before the
                    // next incident.
                    SimDuration::from_nanos(rng.gen_range(gap / 4, gap / 2))
                });
                if restart.is_none() {
                    crashed_for_good[victim] = true;
                }
                plan.crashes.push(Crash {
                    at,
                    server: victim,
                    restart_after: restart,
                });
            } else {
                let heal = at.saturating_add(SimDuration::from_nanos(rng.gen_range(
                    gap / 8, // may heal before the failure detector fires…
                    gap / 2, // …or long after the victim was declared dead
                )));
                plan.partitions.push(Partition {
                    start: at,
                    heal,
                    group: vec![shape.server_nodes[victim]],
                    symmetric: rng.gen_bool(0.5),
                });
            }
            at = at.saturating_add(SimDuration::from_nanos(rng.gen_range(gap, gap + gap / 2)));
        }
        // Quiesce after the last scheduled incident has fully played out.
        plan.quiesce_at = plan
            .last_scheduled_event()
            .max(at)
            .saturating_add(SimDuration::from_nanos(gap / 2));
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> PlanShape {
        PlanShape::new((1..=4).map(NodeId).collect(), 2)
    }

    #[test]
    fn generation_is_seed_deterministic() {
        for seed in 0..50 {
            assert_eq!(
                FaultPlan::generate(seed, &shape()),
                FaultPlan::generate(seed, &shape())
            );
        }
    }

    #[test]
    fn generated_plans_respect_the_failure_budget() {
        let shape = shape();
        for seed in 0..200 {
            let plan = FaultPlan::generate(seed, &shape);
            assert!(plan.drop_prob <= shape.max_drop_prob);
            assert!(plan.dup_prob <= shape.max_dup_prob);
            // Faults all end before quiesce.
            assert!(plan.last_scheduled_event() <= plan.quiesce_at);
            // Permanent crashes never drop the cluster below R+1 servers.
            let permanent = plan
                .crashes
                .iter()
                .filter(|c| c.restart_after.is_none())
                .count();
            assert!(shape.server_nodes.len() - permanent > shape.replication);
            // One incident at a time: sorted by time, spaced by ≥ gap.
            let mut times: Vec<SimTime> = plan
                .crashes
                .iter()
                .map(|c| c.at)
                .chain(plan.partitions.iter().map(|p| p.start))
                .collect();
            times.sort();
            for w in times.windows(2) {
                assert!(w[1].saturating_since(w[0]) >= shape.incident_gap);
            }
        }
    }

    #[test]
    fn partition_cut_semantics() {
        let p = Partition {
            start: SimTime::from_millis(10),
            heal: SimTime::from_millis(20),
            group: vec![NodeId(2)],
            symmetric: false,
        };
        let t = SimTime::from_millis(15);
        // Asymmetric: only group → outside is cut.
        assert!(p.cuts(t, NodeId(2), NodeId(3)));
        assert!(!p.cuts(t, NodeId(3), NodeId(2)));
        // Inside the group nothing is cut; outside the window nothing is.
        assert!(!p.cuts(t, NodeId(2), NodeId(2)));
        assert!(!p.cuts(SimTime::from_millis(20), NodeId(2), NodeId(3)));
        let sym = Partition {
            symmetric: true,
            ..p.clone()
        };
        assert!(sym.cuts(t, NodeId(3), NodeId(2)));
        assert!(sym.cuts(t, NodeId(2), NodeId(3)));
    }

    #[test]
    fn quiet_plan_has_no_faults() {
        let plan = FaultPlan::quiet();
        assert!(!plan.message_faults_active(SimTime::ZERO));
        assert_eq!(plan.last_scheduled_event(), SimTime::ZERO);
    }
}
