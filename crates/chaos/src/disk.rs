//! [`DiskFaults`]: seeded disk fault injection at the `BackupStorage`
//! boundary — the physical-I/O twin of the message-level [`FaultState`].
//!
//! Where [`FaultState`](crate::FaultState) judges every `send`, a
//! [`DiskFaults`] judges every file append and fsync a backup's
//! `FileStorage` performs, drawing each fate from a [`SimRng`] derived from
//! the plan seed and the node index. The four fates mirror how real disks
//! betray a storage system:
//!
//! - **short write** — the frame is cut mid-byte and the write errors: the
//!   torn-write crash signature, delivered while alive. The backup
//!   withholds its ack; recovery truncates the torn tail.
//! - **fsync EIO** — the sync fails; under `fsync=per_write` the append
//!   fails with it and is not acked.
//! - **bit flip** — one bit of the frame is flipped before it is written:
//!   silent corruption the backup cannot see (the CRC was computed first),
//!   detected only by recovery's checksum walk and then quarantined.
//! - **stall** — stuck-slow I/O: the append blocks for a bounded time.
//!
//! Everything is deterministic given `(plan, node)`, so a run that
//! surfaces a durability bug replays bit-for-bit.

use std::time::Duration;

use rmc_diskstore::{AppendFault, AppendOutcome, FaultInjector};
use rmc_runtime::SimRng;

use crate::FaultPlan;

/// Counts of injected disk faults (mirrors [`FaultStats`](crate::FaultStats)
/// for the message layer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskFaultStats {
    /// Appends judged in total.
    pub appends: u64,
    /// Short writes injected.
    pub short_writes: u64,
    /// Fsync EIOs injected.
    pub fsync_eios: u64,
    /// Bit flips injected.
    pub bit_flips: u64,
    /// Stalls injected.
    pub stalls: u64,
}

/// The seeded [`FaultInjector`] interpreting a [`FaultPlan`]'s disk knobs.
#[derive(Debug)]
pub struct DiskFaults {
    rng: SimRng,
    short_write_prob: f64,
    fsync_eio_prob: f64,
    bit_flip_prob: f64,
    stall_prob: f64,
    max_stall: Duration,
    /// What has been injected so far.
    pub stats: DiskFaultStats,
}

impl DiskFaults {
    /// Builds the injector for server `node` from `plan`'s disk knobs, or
    /// `None` when the plan injects no disk faults (so clean runs skip the
    /// per-append RNG draws entirely). Each node derives its own RNG
    /// stream, so fault placement is independent across backups but fully
    /// determined by `(plan.seed, node)`.
    pub fn from_plan(plan: &FaultPlan, node: usize) -> Option<DiskFaults> {
        if !plan.disk_faults_enabled() {
            return None;
        }
        let seed = plan.seed ^ 0xD15C_FA17 ^ (node as u64).wrapping_mul(0x9E37_79B9_97F4_A7C5);
        Some(DiskFaults {
            rng: SimRng::seed_from_u64(seed),
            short_write_prob: plan.disk_short_write_prob,
            fsync_eio_prob: plan.disk_fsync_eio_prob,
            bit_flip_prob: plan.disk_bit_flip_prob,
            stall_prob: plan.disk_stall_prob,
            max_stall: Duration::from_nanos(plan.disk_max_stall.as_nanos()),
            stats: DiskFaultStats::default(),
        })
    }
}

impl FaultInjector for DiskFaults {
    fn on_append(&mut self, _master: usize, _segment: u64, frame: &mut Vec<u8>) -> AppendFault {
        self.stats.appends += 1;
        if !frame.is_empty() && self.rng.gen_bool(self.bit_flip_prob) {
            let byte = self.rng.gen_below(frame.len() as u64) as usize;
            let bit = self.rng.gen_below(8) as u32;
            frame[byte] ^= 1 << bit;
            self.stats.bit_flips += 1;
        }
        let stall = if self.rng.gen_bool(self.stall_prob) && !self.max_stall.is_zero() {
            self.stats.stalls += 1;
            Some(Duration::from_nanos(
                self.rng
                    .gen_range(1, self.max_stall.as_nanos().max(2) as u64),
            ))
        } else {
            None
        };
        let outcome = if self.rng.gen_bool(self.short_write_prob) {
            self.stats.short_writes += 1;
            AppendOutcome::Short {
                keep: self.rng.gen_below(frame.len().max(1) as u64) as usize,
            }
        } else {
            AppendOutcome::Commit
        };
        AppendFault { stall, outcome }
    }

    fn on_fsync(&mut self) -> bool {
        if self.rng.gen_bool(self.fsync_eio_prob) {
            self.stats.fsync_eios += 1;
            false
        } else {
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_plan(seed: u64) -> FaultPlan {
        let mut plan = FaultPlan::quiet();
        plan.seed = seed;
        plan.disk_short_write_prob = 0.2;
        plan.disk_fsync_eio_prob = 0.2;
        plan.disk_bit_flip_prob = 0.2;
        plan.disk_stall_prob = 0.2;
        plan.disk_max_stall = rmc_runtime::SimDuration::from_micros(50);
        plan
    }

    #[test]
    fn quiet_plan_yields_no_injector() {
        assert!(DiskFaults::from_plan(&FaultPlan::quiet(), 0).is_none());
    }

    #[test]
    fn fates_are_deterministic_per_node() {
        let plan = noisy_plan(7);
        let run = |node: usize| {
            let mut inj = DiskFaults::from_plan(&plan, node).unwrap();
            let mut frames = Vec::new();
            for i in 0..200u64 {
                let mut frame = vec![i as u8; 64];
                let fault = inj.on_append(0, i, &mut frame);
                let _ = inj.on_fsync();
                frames.push((frame, fault));
            }
            (frames, inj.stats)
        };
        let (frames_a, stats_a) = run(1);
        let (frames_b, stats_b) = run(1);
        assert_eq!(frames_a, frames_b);
        assert_eq!(stats_a, stats_b);
        // A different node draws a different stream.
        let (frames_c, _) = run(2);
        assert_ne!(frames_a, frames_c);
        // All fates actually occur at these probabilities.
        assert!(stats_a.short_writes > 0);
        assert!(stats_a.fsync_eios > 0);
        assert!(stats_a.bit_flips > 0);
        assert!(stats_a.stalls > 0);
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let plan = {
            let mut p = FaultPlan::quiet();
            p.disk_bit_flip_prob = 1.0;
            p
        };
        let mut inj = DiskFaults::from_plan(&plan, 0).unwrap();
        let orig = vec![0xAAu8; 32];
        let mut frame = orig.clone();
        inj.on_append(0, 0, &mut frame);
        let flipped: u32 = orig
            .iter()
            .zip(&frame)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
    }
}
