//! [`FaultRuntime`]: wrap any [`Runtime`] so every outgoing message passes
//! through a [`FaultState`] judge.
//!
//! This is the whole point of the four-op `Runtime` boundary: protocol
//! handlers only ever talk to a `Runtime`, so interposing here injects
//! drops, duplicates, delays, and partitions into *both* engines without
//! either engine or the protocol knowing. Delay and reorder ride on
//! [`Runtime::send_after`]; an engine whose default `send_after` delivers
//! immediately simply degrades delays to reorder-free delivery while drops,
//! duplicates, and partitions keep their exact semantics.

use rmc_runtime::{NodeId, Runtime, SimDuration, SimTime};

use crate::fault::{FaultState, MsgClass};

/// A fault-injecting view over an inner runtime, scoped — like the inner
/// runtime itself — to one node handling one event.
#[derive(Debug)]
pub struct FaultRuntime<'a, R: Runtime> {
    inner: &'a mut R,
    faults: &'a mut FaultState,
    classify: fn(&R::Msg) -> MsgClass,
}

impl<'a, R: Runtime> FaultRuntime<'a, R> {
    /// Wraps `inner`; `classify` buckets messages for class-specific
    /// faults (backup-write failures).
    pub fn new(
        inner: &'a mut R,
        faults: &'a mut FaultState,
        classify: fn(&R::Msg) -> MsgClass,
    ) -> Self {
        FaultRuntime {
            inner,
            faults,
            classify,
        }
    }
}

impl<R: Runtime> Runtime for FaultRuntime<'_, R>
where
    R::Msg: Clone,
{
    type Msg = R::Msg;

    fn node(&self) -> NodeId {
        self.inner.node()
    }

    fn now(&self) -> SimTime {
        self.inner.now()
    }

    fn send(&mut self, to: NodeId, msg: R::Msg) {
        let now = self.inner.now();
        let from = self.inner.node();
        let fates = self.faults.judge(now, from, to, (self.classify)(&msg));
        for delay in fates {
            if delay.is_zero() {
                self.inner.send(to, msg.clone());
            } else {
                self.inner.send_after(delay, to, msg.clone());
            }
        }
    }

    fn set_timer(&mut self, after: SimDuration) {
        self.inner.set_timer(after);
    }

    fn send_after(&mut self, delay: SimDuration, to: NodeId, msg: R::Msg) {
        // A deferred send is still one message on the wire: judge it now
        // (deterministically, at the caller's instant) and stack the fault
        // delay on top of the requested one.
        let now = self.inner.now();
        let from = self.inner.node();
        let fates = self.faults.judge(now, from, to, (self.classify)(&msg));
        for extra in fates {
            self.inner
                .send_after(delay.saturating_add_dur(extra), to, msg.clone());
        }
    }
}

/// Saturating duration addition helper (kept local; `SimDuration` exposes
/// `checked_add`).
trait SaturatingAdd {
    fn saturating_add_dur(self, other: SimDuration) -> SimDuration;
}

impl SaturatingAdd for SimDuration {
    fn saturating_add_dur(self, other: SimDuration) -> SimDuration {
        self.checked_add(other).unwrap_or(SimDuration::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;

    /// Minimal engine: records sends with their requested delays.
    struct Recorder {
        node: NodeId,
        now: SimTime,
        sent: Vec<(NodeId, u32, SimDuration)>,
        timer: Option<SimDuration>,
    }

    impl Runtime for Recorder {
        type Msg = u32;
        fn node(&self) -> NodeId {
            self.node
        }
        fn now(&self) -> SimTime {
            self.now
        }
        fn send(&mut self, to: NodeId, msg: u32) {
            self.sent.push((to, msg, SimDuration::ZERO));
        }
        fn set_timer(&mut self, after: SimDuration) {
            self.timer = Some(after);
        }
        fn send_after(&mut self, delay: SimDuration, to: NodeId, msg: u32) {
            self.sent.push((to, msg, delay));
        }
    }

    fn recorder() -> Recorder {
        Recorder {
            node: NodeId(0),
            now: SimTime::from_millis(1),
            sent: Vec::new(),
            timer: None,
        }
    }

    fn classify(_: &u32) -> MsgClass {
        MsgClass::Other
    }

    #[test]
    fn quiet_plan_is_transparent() {
        let mut inner = recorder();
        let mut faults = FaultState::new(FaultPlan::quiet());
        let mut rt = FaultRuntime::new(&mut inner, &mut faults, classify);
        rt.send(NodeId(2), 7);
        rt.set_timer(SimDuration::from_millis(3));
        assert_eq!(inner.sent, vec![(NodeId(2), 7, SimDuration::ZERO)]);
        assert_eq!(inner.timer, Some(SimDuration::from_millis(3)));
    }

    #[test]
    fn drop_everything_plan_sends_nothing() {
        let mut plan = FaultPlan::quiet();
        plan.drop_prob = 1.0;
        plan.quiesce_at = SimTime::from_secs(10);
        let mut inner = recorder();
        let mut faults = FaultState::new(plan);
        let mut rt = FaultRuntime::new(&mut inner, &mut faults, classify);
        for i in 0..20 {
            rt.send(NodeId(1), i);
        }
        assert!(inner.sent.is_empty());
        assert_eq!(faults.stats.random_drops, 20);
    }

    #[test]
    fn duplicates_and_delays_ride_send_after() {
        let mut plan = FaultPlan::quiet();
        plan.dup_prob = 1.0;
        plan.delay_prob = 1.0;
        plan.max_delay = SimDuration::from_millis(4);
        plan.quiesce_at = SimTime::from_secs(10);
        let mut inner = recorder();
        let mut faults = FaultState::new(plan);
        let mut rt = FaultRuntime::new(&mut inner, &mut faults, classify);
        rt.send(NodeId(3), 42);
        assert_eq!(inner.sent.len(), 2, "original + duplicate");
        assert!(inner
            .sent
            .iter()
            .all(|&(to, m, _)| to == NodeId(3) && m == 42));
        assert!(faults.stats.duplicated == 1 && faults.stats.delayed == 1);
    }
}
