//! [`FaultRuntime`]: wrap any [`Runtime`] so every outgoing message passes
//! through a [`FaultState`] judge.
//!
//! This is the whole point of the four-op `Runtime` boundary: protocol
//! handlers only ever talk to a `Runtime`, so interposing here injects
//! drops, duplicates, delays, and partitions into *both* engines without
//! either engine or the protocol knowing. Delay and reorder ride on
//! [`Runtime::send_after`]; an engine whose default `send_after` delivers
//! immediately simply degrades delays to reorder-free delivery while drops,
//! duplicates, and partitions keep their exact semantics.

use std::cell::RefCell;

use rmc_runtime::{NodeId, Runtime, SimDuration, SimTime};

use crate::fault::{FaultState, MsgClass};

/// A fault-injecting view over an inner runtime, scoped — like the inner
/// runtime itself — to one node handling one event.
///
/// The judge sits behind a `RefCell` because [`Runtime::send`] takes
/// `&self` while every judged message consumes RNG draws; the wrapper is
/// single-threaded by construction (it borrows one node's runtime for one
/// event), so the interior mutability can never contend.
#[derive(Debug)]
pub struct FaultRuntime<'a, R: Runtime> {
    inner: &'a mut R,
    faults: RefCell<&'a mut FaultState>,
    classify: fn(&R::Msg) -> MsgClass,
}

impl<'a, R: Runtime> FaultRuntime<'a, R> {
    /// Wraps `inner`; `classify` buckets messages for class-specific
    /// faults (backup-write failures).
    pub fn new(
        inner: &'a mut R,
        faults: &'a mut FaultState,
        classify: fn(&R::Msg) -> MsgClass,
    ) -> Self {
        FaultRuntime {
            inner,
            faults: RefCell::new(faults),
            classify,
        }
    }

    /// Delivers `msg` once per fate, cloning only for the extra copies a
    /// duplicate fate demands — the common single-fate case moves the
    /// message straight through to the engine.
    fn deliver_fates(&self, base: SimDuration, to: NodeId, msg: R::Msg, mut fates: Vec<SimDuration>)
    where
        R::Msg: Clone,
    {
        let Some(last) = fates.pop() else {
            return; // dropped
        };
        for extra in fates {
            self.inner
                .send_after(base.saturating_add_dur(extra), to, msg.clone());
        }
        let total = base.saturating_add_dur(last);
        if total.is_zero() {
            self.inner.send(to, msg);
        } else {
            self.inner.send_after(total, to, msg);
        }
    }
}

impl<R: Runtime> Runtime for FaultRuntime<'_, R>
where
    R::Msg: Clone,
{
    type Msg = R::Msg;

    fn node(&self) -> NodeId {
        self.inner.node()
    }

    fn now(&self) -> SimTime {
        self.inner.now()
    }

    fn send(&self, to: NodeId, msg: R::Msg) {
        let now = self.inner.now();
        let from = self.inner.node();
        let fates = self
            .faults
            .borrow_mut()
            .judge(now, from, to, (self.classify)(&msg));
        self.deliver_fates(SimDuration::ZERO, to, msg, fates);
    }

    fn set_timer(&mut self, after: SimDuration) {
        self.inner.set_timer(after);
    }

    fn send_after(&self, delay: SimDuration, to: NodeId, msg: R::Msg) {
        // A deferred send is still one message on the wire: judge it now
        // (deterministically, at the caller's instant) and stack the fault
        // delay on top of the requested one.
        let now = self.inner.now();
        let from = self.inner.node();
        let fates = self
            .faults
            .borrow_mut()
            .judge(now, from, to, (self.classify)(&msg));
        self.deliver_fates(delay, to, msg, fates);
    }
}

/// Saturating duration addition helper (kept local; `SimDuration` exposes
/// `checked_add`).
trait SaturatingAdd {
    fn saturating_add_dur(self, other: SimDuration) -> SimDuration;
}

impl SaturatingAdd for SimDuration {
    fn saturating_add_dur(self, other: SimDuration) -> SimDuration {
        self.checked_add(other).unwrap_or(SimDuration::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;

    /// Minimal engine: records sends with their requested delays.
    struct Recorder {
        node: NodeId,
        now: SimTime,
        sent: RefCell<Vec<(NodeId, u32, SimDuration)>>,
        timer: Option<SimDuration>,
    }

    impl Runtime for Recorder {
        type Msg = u32;
        fn node(&self) -> NodeId {
            self.node
        }
        fn now(&self) -> SimTime {
            self.now
        }
        fn send(&self, to: NodeId, msg: u32) {
            self.sent.borrow_mut().push((to, msg, SimDuration::ZERO));
        }
        fn set_timer(&mut self, after: SimDuration) {
            self.timer = Some(after);
        }
        fn send_after(&self, delay: SimDuration, to: NodeId, msg: u32) {
            self.sent.borrow_mut().push((to, msg, delay));
        }
    }

    fn recorder() -> Recorder {
        Recorder {
            node: NodeId(0),
            now: SimTime::from_millis(1),
            sent: RefCell::new(Vec::new()),
            timer: None,
        }
    }

    fn classify(_: &u32) -> MsgClass {
        MsgClass::Other
    }

    #[test]
    fn quiet_plan_is_transparent() {
        let mut inner = recorder();
        let mut faults = FaultState::new(FaultPlan::quiet());
        let mut rt = FaultRuntime::new(&mut inner, &mut faults, classify);
        rt.send(NodeId(2), 7);
        rt.set_timer(SimDuration::from_millis(3));
        assert_eq!(
            *inner.sent.borrow(),
            vec![(NodeId(2), 7, SimDuration::ZERO)]
        );
        assert_eq!(inner.timer, Some(SimDuration::from_millis(3)));
    }

    #[test]
    fn drop_everything_plan_sends_nothing() {
        let mut plan = FaultPlan::quiet();
        plan.drop_prob = 1.0;
        plan.quiesce_at = SimTime::from_secs(10);
        let mut inner = recorder();
        let mut faults = FaultState::new(plan);
        let rt = FaultRuntime::new(&mut inner, &mut faults, classify);
        for i in 0..20 {
            rt.send(NodeId(1), i);
        }
        assert!(inner.sent.borrow().is_empty());
        assert_eq!(faults.stats.random_drops, 20);
    }

    #[test]
    fn duplicates_and_delays_ride_send_after() {
        let mut plan = FaultPlan::quiet();
        plan.dup_prob = 1.0;
        plan.delay_prob = 1.0;
        plan.max_delay = SimDuration::from_millis(4);
        plan.quiesce_at = SimTime::from_secs(10);
        let mut inner = recorder();
        let mut faults = FaultState::new(plan);
        let rt = FaultRuntime::new(&mut inner, &mut faults, classify);
        rt.send(NodeId(3), 42);
        assert_eq!(inner.sent.borrow().len(), 2, "original + duplicate");
        assert!(inner
            .sent
            .borrow()
            .iter()
            .all(|&(to, m, _)| to == NodeId(3) && m == 42));
        assert!(faults.stats.duplicated == 1 && faults.stats.delayed == 1);
    }
}
