//! Property tests for the disk model: completion-order and conservation
//! invariants hold for arbitrary request sequences.

use proptest::prelude::*;
use rmc_disk::{DiskModel, DiskProfile, IoKind};
use rmc_runtime::{SimDuration, SimTime};

fn any_kind() -> impl Strategy<Value = IoKind> {
    prop_oneof![Just(IoKind::Read), Just(IoKind::Write)]
}

proptest! {
    /// FIFO: completions are non-decreasing in submission order, each
    /// completion is after its own arrival, and total busy time is at least
    /// the sum of pure transfer times (overheads only add).
    #[test]
    fn fifo_and_conservation(
        reqs in proptest::collection::vec((0u64..1_000_000, any_kind(), 1u64..64_000_000), 1..60)
    ) {
        let profile = DiskProfile::grid5000_hdd();
        let mut disk = DiskModel::new(profile.clone());
        let mut last_done = SimTime::ZERO;
        let mut min_transfer = SimDuration::ZERO;
        let mut clock = 0u64;
        for (gap, kind, bytes) in reqs {
            clock += gap;
            let now = SimTime::from_micros(clock);
            let done = disk.submit(now, kind, bytes);
            prop_assert!(done > now, "completion must be after arrival");
            prop_assert!(done >= last_done, "FIFO order violated");
            last_done = done;
            let bw = match kind {
                IoKind::Read => profile.read_bytes_per_sec,
                IoKind::Write => profile.write_bytes_per_sec,
            };
            min_transfer += SimDuration::from_secs_f64(bytes as f64 / bw);
        }
        // The disk cannot finish faster than pure transfer time.
        prop_assert!(
            last_done.as_nanos() >= min_transfer.as_nanos(),
            "finished before pure transfer time"
        );
    }

    /// Byte counters are exact sums regardless of order.
    #[test]
    fn byte_counters_exact(
        reqs in proptest::collection::vec((any_kind(), 1u64..10_000_000), 1..40)
    ) {
        let mut disk = DiskModel::new(DiskProfile::commodity_ssd());
        let mut reads = 0u64;
        let mut writes = 0u64;
        for (kind, bytes) in &reqs {
            disk.submit(SimTime::ZERO, *kind, *bytes);
            match kind {
                IoKind::Read => reads += bytes,
                IoKind::Write => writes += bytes,
            }
        }
        prop_assert_eq!(disk.byte_counts(), (reads, writes));
    }
}
