//! # rmc-disk — simulated storage devices
//!
//! Models the per-node disk of the reproduced testbed (Grid'5000 Nancy nodes:
//! one 298 GB HDD) as a single-server FIFO queue with sequential bandwidth,
//! a positioning (seek) penalty whenever the access direction flips between
//! reads and writes, and per-second I/O tracing.
//!
//! The disk matters in exactly the places the paper says it does:
//! backups spill closed 8 MB segments to disk asynchronously, and crash
//! recovery *reads* lost segments from backup disks while simultaneously
//! *re-replicating* them (writes) — the interleave shows up as the read/write
//! overlap of Fig 12 and is a driver of Finding 6 (recovery slows down as the
//! replication factor grows).
//!
//! ## Example
//!
//! ```
//! use rmc_disk::{DiskModel, DiskProfile, IoKind};
//! use rmc_runtime::SimTime;
//!
//! let mut disk = DiskModel::new(DiskProfile::grid5000_hdd());
//! let done = disk.submit(SimTime::ZERO, IoKind::Write, 8 << 20);
//! assert!(done > SimTime::ZERO);
//! // A second request queues behind the first.
//! let done2 = disk.submit(SimTime::ZERO, IoKind::Write, 8 << 20);
//! assert!(done2 > done);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::VecDeque;

use rmc_runtime::{BinnedUsage, CounterHandle, MetricsFamily, RateMeter, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Direction of a disk transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoKind {
    /// Data moves from the platter into memory.
    Read,
    /// Data moves from memory onto the platter.
    Write,
}

/// Performance envelope of a storage device.
///
/// Constructed via the named profiles ([`DiskProfile::grid5000_hdd`],
/// [`DiskProfile::commodity_ssd`]) or struct-literal-style via
/// [`DiskProfile::custom`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskProfile {
    /// Human-readable profile name.
    pub name: String,
    /// Sequential read bandwidth in bytes per second.
    pub read_bytes_per_sec: f64,
    /// Sequential write bandwidth in bytes per second.
    pub write_bytes_per_sec: f64,
    /// Positioning penalty charged when the transfer direction flips
    /// (read→write or write→read), modelling head movement between the
    /// recovery-read zone and the log-write zone.
    pub switch_penalty: SimDuration,
    /// Fixed per-request overhead (command issue, rotational settle).
    pub per_request_overhead: SimDuration,
}

impl DiskProfile {
    /// The ~300 GB 7.2k-rpm HDD of the paper's Nancy nodes.
    ///
    /// Bandwidths are the usual envelope for that disk generation
    /// (~120 MB/s reads, ~110 MB/s writes). The per-request overhead is an
    /// average seek plus rotational latency — RAMCloud backups keep segment
    /// replicas in many files, so in practice every request repositions the
    /// head. This is what pulls effective small-write throughput down to a
    /// few tens of MB/s and puts crash recovery in the paper's regime
    /// (~10 s to recover 1.085 GB at replication factor 1, growing roughly
    /// linearly with the factor).
    pub fn grid5000_hdd() -> Self {
        DiskProfile {
            name: "grid5000-hdd".to_owned(),
            read_bytes_per_sec: 120.0 * 1e6,
            write_bytes_per_sec: 110.0 * 1e6,
            switch_penalty: SimDuration::from_millis(4),
            per_request_overhead: SimDuration::from_millis(9),
        }
    }

    /// A commodity SATA SSD, used by the §IX discussion ("with machines
    /// equipped with SSDs smaller segment sizes can be chosen").
    pub fn commodity_ssd() -> Self {
        DiskProfile {
            name: "commodity-ssd".to_owned(),
            read_bytes_per_sec: 500.0 * 1e6,
            write_bytes_per_sec: 450.0 * 1e6,
            switch_penalty: SimDuration::from_micros(20),
            per_request_overhead: SimDuration::from_micros(50),
        }
    }

    /// Builds an arbitrary profile.
    ///
    /// # Panics
    ///
    /// Panics if either bandwidth is not positive and finite.
    pub fn custom(
        name: &str,
        read_bytes_per_sec: f64,
        write_bytes_per_sec: f64,
        switch_penalty: SimDuration,
        per_request_overhead: SimDuration,
    ) -> Self {
        assert!(
            read_bytes_per_sec.is_finite() && read_bytes_per_sec > 0.0,
            "read bandwidth must be positive"
        );
        assert!(
            write_bytes_per_sec.is_finite() && write_bytes_per_sec > 0.0,
            "write bandwidth must be positive"
        );
        DiskProfile {
            name: name.to_owned(),
            read_bytes_per_sec,
            write_bytes_per_sec,
            switch_penalty,
            per_request_overhead,
        }
    }

    fn transfer_time(&self, kind: IoKind, bytes: u64) -> SimDuration {
        let bw = match kind {
            IoKind::Read => self.read_bytes_per_sec,
            IoKind::Write => self.write_bytes_per_sec,
        };
        SimDuration::from_secs_f64(bytes as f64 / bw)
    }
}

/// Live `disk.*` handles a [`DiskModel`] feeds on every submit — the same
/// metric family (and names) the file-backed backup engine's
/// `rmc_diskstore::DiskMetrics` exports, so dashboards and the stats plane
/// read one schema regardless of which engine produced the I/O.
#[derive(Debug, Clone)]
struct ModelMetrics {
    reads: CounterHandle,
    writes: CounterHandle,
    read_bytes: CounterHandle,
    write_bytes: CounterHandle,
    /// Requests still queued or in service at the last submit.
    queue_depth: CounterHandle,
}

impl ModelMetrics {
    fn new(fam: &MetricsFamily) -> Self {
        // The simulated device never corrupts data, but the family must
        // carry the same members as the file engine's — create the CRC
        // counter at zero so snapshots stay schema-identical.
        let _ = fam.counter("crc_mismatch");
        ModelMetrics {
            reads: fam.counter("reads"),
            writes: fam.counter("writes"),
            read_bytes: fam.counter("read_bytes"),
            write_bytes: fam.counter("write_bytes"),
            queue_depth: fam.gauge("queue_depth"),
        }
    }
}

/// A single simulated disk: FIFO service, direction-switch penalties, busy
/// tracking for the power model, and per-second read/write tracing for
/// Fig 12.
#[derive(Debug)]
pub struct DiskModel {
    profile: DiskProfile,
    busy_until: SimTime,
    last_kind: Option<IoKind>,
    busy: BinnedUsage,
    read_trace: RateMeter,
    write_trace: RateMeter,
    reads: u64,
    writes: u64,
    read_bytes: u64,
    write_bytes: u64,
    metrics: Option<ModelMetrics>,
    /// Completion times of outstanding requests (for the queue-depth gauge);
    /// only maintained while metrics are attached.
    inflight: VecDeque<SimTime>,
}

impl DiskModel {
    /// Creates an idle disk with the given profile.
    pub fn new(profile: DiskProfile) -> Self {
        DiskModel {
            profile,
            busy_until: SimTime::ZERO,
            last_kind: None,
            busy: BinnedUsage::new(SimDuration::from_secs(1)),
            read_trace: RateMeter::new(SimDuration::from_secs(1)),
            write_trace: RateMeter::new(SimDuration::from_secs(1)),
            reads: 0,
            writes: 0,
            read_bytes: 0,
            write_bytes: 0,
            metrics: None,
            inflight: VecDeque::new(),
        }
    }

    /// Attaches this disk to a `disk.*` metric family (typically
    /// `registry.family("disk", node)`). From then on every [`submit`]
    /// updates the shared read/write byte and request counters and a
    /// queue-depth gauge — the same family the file-backed backup engine
    /// feeds, so both engines are observed through one schema.
    ///
    /// [`submit`]: DiskModel::submit
    pub fn attach_metrics(&mut self, fam: &MetricsFamily) {
        self.metrics = Some(ModelMetrics::new(fam));
    }

    /// The device profile.
    pub fn profile(&self) -> &DiskProfile {
        &self.profile
    }

    /// Enqueues a transfer arriving at `now` and returns its completion time.
    ///
    /// The request waits behind everything already queued (FIFO, single
    /// spindle), pays the per-request overhead, pays the switch penalty when
    /// the direction flips, then transfers at sequential bandwidth.
    pub fn submit(&mut self, now: SimTime, kind: IoKind, bytes: u64) -> SimTime {
        let start = now.max(self.busy_until);
        let mut service =
            self.profile.per_request_overhead + self.profile.transfer_time(kind, bytes);
        if self.last_kind.is_some() && self.last_kind != Some(kind) {
            service += self.profile.switch_penalty;
        }
        let done = start + service;
        self.busy.add_span(start, done, 1.0);
        self.busy_until = done;
        self.last_kind = Some(kind);
        match kind {
            IoKind::Read => {
                self.reads += 1;
                self.read_bytes += bytes;
                // Attribute the bytes to the completion-side window, matching
                // how an iostat-style monitor would observe them.
                self.read_trace.add(done, bytes as f64);
            }
            IoKind::Write => {
                self.writes += 1;
                self.write_bytes += bytes;
                self.write_trace.add(done, bytes as f64);
            }
        }
        if let Some(m) = &self.metrics {
            match kind {
                IoKind::Read => {
                    m.reads.incr();
                    m.read_bytes.add(bytes);
                }
                IoKind::Write => {
                    m.writes.incr();
                    m.write_bytes.add(bytes);
                }
            }
            // Queue depth as an iostat-style monitor would see it at `now`:
            // requests submitted but not yet complete, this one included.
            while self.inflight.front().is_some_and(|&t| t <= now) {
                self.inflight.pop_front();
            }
            self.inflight.push_back(done);
            m.queue_depth.set(self.inflight.len() as u64);
        }
        done
    }

    /// The instant the disk drains everything queued so far.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// True if the disk would start a request arriving at `now` immediately.
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Busy fraction (0..=1) during one-second bin `i`; feeds the power
    /// model's disk-activity term.
    pub fn busy_fraction(&self, bin: usize) -> f64 {
        self.busy.bin_value(bin).min(1.0)
    }

    /// Total completed requests `(reads, writes)`.
    pub fn request_counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    /// Total transferred bytes `(read, written)`.
    pub fn byte_counts(&self) -> (u64, u64) {
        (self.read_bytes, self.write_bytes)
    }

    /// Consumes the disk and returns per-second `(time_s, read_Bps,
    /// write_Bps)` rows up to `end` — the Fig 12 series for this device.
    pub fn into_trace(self, end: SimTime) -> Vec<(f64, f64, f64)> {
        let reads = self.read_trace.finish(end);
        let writes = self.write_trace.finish(end);
        reads
            .into_iter()
            .zip(writes)
            .map(|((t, r), (_, w))| (t, r, w))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_profile() -> DiskProfile {
        // 100 MB/s both ways, no overheads: easy arithmetic.
        DiskProfile::custom(
            "test",
            100.0 * 1e6,
            100.0 * 1e6,
            SimDuration::ZERO,
            SimDuration::ZERO,
        )
    }

    #[test]
    fn transfer_time_matches_bandwidth() {
        let mut disk = DiskModel::new(simple_profile());
        let done = disk.submit(SimTime::ZERO, IoKind::Write, 100_000_000);
        assert_eq!(done, SimTime::from_secs(1));
    }

    #[test]
    fn fifo_queueing_serializes() {
        let mut disk = DiskModel::new(simple_profile());
        let d1 = disk.submit(SimTime::ZERO, IoKind::Write, 50_000_000);
        let d2 = disk.submit(SimTime::ZERO, IoKind::Write, 50_000_000);
        assert_eq!(d1, SimTime::from_millis(500));
        assert_eq!(d2, SimTime::from_secs(1));
    }

    #[test]
    fn idle_gap_resets_start() {
        let mut disk = DiskModel::new(simple_profile());
        disk.submit(SimTime::ZERO, IoKind::Write, 100_000_000);
        let done = disk.submit(SimTime::from_secs(10), IoKind::Write, 100_000_000);
        assert_eq!(done, SimTime::from_secs(11));
        assert!(disk.is_idle_at(SimTime::from_secs(20)));
    }

    #[test]
    fn direction_switch_pays_penalty() {
        let mut profile = simple_profile();
        profile.switch_penalty = SimDuration::from_millis(10);
        let mut disk = DiskModel::new(profile);
        let d1 = disk.submit(SimTime::ZERO, IoKind::Write, 100_000_000);
        assert_eq!(d1, SimTime::from_secs(1));
        // Same direction: no penalty.
        let d2 = disk.submit(SimTime::ZERO, IoKind::Write, 100_000_000);
        assert_eq!(d2, SimTime::from_secs(2));
        // Flip to read: +10 ms.
        let d3 = disk.submit(SimTime::ZERO, IoKind::Read, 100_000_000);
        assert_eq!(d3, SimTime::from_secs(3) + SimDuration::from_millis(10));
    }

    #[test]
    fn first_request_pays_no_switch_penalty() {
        let mut profile = simple_profile();
        profile.switch_penalty = SimDuration::from_millis(10);
        let mut disk = DiskModel::new(profile);
        let done = disk.submit(SimTime::ZERO, IoKind::Read, 100_000_000);
        assert_eq!(done, SimTime::from_secs(1));
    }

    #[test]
    fn interleaved_io_slower_than_batched() {
        // The Fig 12 / Finding 6 mechanism: alternating read/write is slower
        // than reads-then-writes for the same volume.
        let run = |interleaved: bool| {
            let mut disk = DiskModel::new(DiskProfile::grid5000_hdd());
            let n = 64;
            let mut last = SimTime::ZERO;
            if interleaved {
                for _ in 0..n {
                    disk.submit(SimTime::ZERO, IoKind::Read, 8 << 20);
                    last = disk.submit(SimTime::ZERO, IoKind::Write, 8 << 20);
                }
            } else {
                for _ in 0..n {
                    disk.submit(SimTime::ZERO, IoKind::Read, 8 << 20);
                }
                for _ in 0..n {
                    last = disk.submit(SimTime::ZERO, IoKind::Write, 8 << 20);
                }
            }
            last
        };
        let batched = run(false);
        let interleaved = run(true);
        assert!(
            interleaved > batched + SimDuration::from_millis(200),
            "interleaved={interleaved} batched={batched}"
        );
    }

    #[test]
    fn busy_fraction_tracks_activity() {
        let mut disk = DiskModel::new(simple_profile());
        // 0.5 s of work starting at t=0.
        disk.submit(SimTime::ZERO, IoKind::Write, 50_000_000);
        assert!((disk.busy_fraction(0) - 0.5).abs() < 1e-9);
        assert_eq!(disk.busy_fraction(1), 0.0);
    }

    #[test]
    fn counters_accumulate() {
        let mut disk = DiskModel::new(simple_profile());
        disk.submit(SimTime::ZERO, IoKind::Read, 100);
        disk.submit(SimTime::ZERO, IoKind::Write, 200);
        disk.submit(SimTime::ZERO, IoKind::Write, 300);
        assert_eq!(disk.request_counts(), (1, 2));
        assert_eq!(disk.byte_counts(), (100, 500));
    }

    #[test]
    fn trace_reports_read_and_write_rates() {
        let mut disk = DiskModel::new(simple_profile());
        disk.submit(SimTime::ZERO, IoKind::Read, 50_000_000); // completes at 0.5s -> bin 0
        disk.submit(SimTime::ZERO, IoKind::Write, 100_000_000); // completes at 1.5s -> bin 1
        let trace = disk.into_trace(SimTime::from_secs(3));
        assert_eq!(trace[0].1, 50_000_000.0);
        assert_eq!(trace[0].2, 0.0);
        assert_eq!(trace[1].1, 0.0);
        assert_eq!(trace[1].2, 100_000_000.0);
    }

    #[test]
    fn ssd_faster_than_hdd() {
        let mut hdd = DiskModel::new(DiskProfile::grid5000_hdd());
        let mut ssd = DiskModel::new(DiskProfile::commodity_ssd());
        let h = hdd.submit(SimTime::ZERO, IoKind::Read, 64 << 20);
        let s = ssd.submit(SimTime::ZERO, IoKind::Read, 64 << 20);
        assert!(s < h);
    }

    #[test]
    #[should_panic(expected = "read bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = DiskProfile::custom("bad", 0.0, 1.0, SimDuration::ZERO, SimDuration::ZERO);
    }

    #[test]
    fn attached_metrics_mirror_io() {
        use rmc_runtime::MetricsRegistry;

        let reg = MetricsRegistry::new();
        let mut disk = DiskModel::new(simple_profile());
        disk.attach_metrics(&reg.family("disk", 2));
        disk.submit(SimTime::ZERO, IoKind::Read, 100);
        disk.submit(SimTime::ZERO, IoKind::Write, 200);
        disk.submit(SimTime::ZERO, IoKind::Write, 300);
        assert_eq!(reg.get("disk.2.reads"), 1);
        assert_eq!(reg.get("disk.2.writes"), 2);
        assert_eq!(reg.get("disk.2.read_bytes"), 100);
        assert_eq!(reg.get("disk.2.write_bytes"), 500);
        // All three submitted at t=0 against a busy queue: all outstanding.
        assert_eq!(reg.get("disk.2.queue_depth"), 3);
        // Same family schema as the file engine: the CRC counter exists at 0.
        assert_eq!(reg.get("disk.2.crc_mismatch"), 0);
        // Once the queue has drained, a new request sees depth 1.
        disk.submit(SimTime::from_secs(100), IoKind::Read, 100);
        assert_eq!(reg.get("disk.2.queue_depth"), 1);
    }
}
