//! Cache-line-striped atomic counters.
//!
//! Shared by the standalone server's read fast path (one stripe per shard)
//! and the threaded mini-cluster's per-node operation metrics (one stripe
//! per node): in both, many threads count events concurrently and a single
//! shared cache line would serialize them.

use std::sync::atomic::{AtomicU64, Ordering};

/// A cache-line-padded `AtomicU64`, so adjacent stripes never share a line.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedCounter(AtomicU64);

/// Per-stripe event counter (sum on demand).
#[derive(Debug)]
pub struct StripedCounter {
    stripes: Vec<PaddedCounter>,
}

impl StripedCounter {
    /// A counter with `stripes` independent stripes.
    ///
    /// # Panics
    ///
    /// Panics if `stripes` is zero.
    pub fn new(stripes: usize) -> Self {
        assert!(stripes > 0, "need at least one stripe");
        StripedCounter {
            stripes: (0..stripes).map(|_| PaddedCounter::default()).collect(),
        }
    }

    /// Counts one event against `stripe` (modulo the stripe count).
    #[inline]
    pub fn add(&self, stripe: usize) {
        self.add_n(stripe, 1);
    }

    /// Counts `n` events against `stripe` (modulo the stripe count).
    #[inline]
    pub fn add_n(&self, stripe: usize, n: u64) {
        self.stripes[stripe % self.stripes.len()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Total across stripes.
    pub fn sum(&self) -> u64 {
        self.stripes
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .sum()
    }

    /// The current value of one stripe.
    pub fn stripe(&self, stripe: usize) -> u64 {
        self.stripes[stripe % self.stripes.len()]
            .0
            .load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sums_across_threads() {
        let c = Arc::new(StripedCounter::new(8));
        let hs: Vec<_> = (0..4)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        c.add(t * 31 + i);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(c.sum(), 4000);
    }

    #[test]
    fn add_n_and_per_stripe_reads() {
        let c = StripedCounter::new(4);
        c.add_n(1, 10);
        c.add_n(5, 3); // wraps onto stripe 1
        c.add(2);
        assert_eq!(c.stripe(1), 13);
        assert_eq!(c.stripe(2), 1);
        assert_eq!(c.sum(), 14);
    }
}
