//! The [`Clock`] trait: where "now" comes from.
//!
//! Everything above the engines measures time as [`SimTime`] — a nanosecond
//! count since some origin. In the simulator that origin is the start of the
//! simulation and time advances only when events fire; on real threads it is
//! the moment the [`WallClock`] was created and time advances by itself.
//! Code that only needs to *read* time (throttles, statistics, timeouts)
//! takes a `&impl Clock` and works unchanged under either engine.

use std::sync::Mutex;
use std::time::Instant;

use crate::time::{SimDuration, SimTime};

/// A source of monotonic nanosecond timestamps.
pub trait Clock {
    /// The current instant.
    fn now(&self) -> SimTime;

    /// Blocks the caller for `d`. Engines that cannot block (the simulator
    /// advances time by scheduling, never by waiting) keep the default
    /// no-op; wall-clock engines really sleep.
    fn sleep(&self, d: SimDuration) {
        let _ = d;
    }

    /// The instant `d` from now — convenience for building timeouts.
    fn deadline(&self, d: SimDuration) -> SimTime {
        self.now() + d
    }
}

/// Real time: nanoseconds elapsed since the clock was created.
#[derive(Debug)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        WallClock {
            start: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.start.elapsed().as_nanos() as u64)
    }

    fn sleep(&self, d: SimDuration) {
        std::thread::sleep(std::time::Duration::from_nanos(d.as_nanos()));
    }
}

/// A hand-advanced clock for tests: deterministic like the simulator's,
/// without needing an event queue.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: Mutex<SimTime>,
}

impl ManualClock {
    /// A clock starting at time zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Moves the clock forward by `d`.
    pub fn advance(&self, d: SimDuration) {
        let mut now = self.now.lock().unwrap();
        *now += d;
    }
}

impl Clock for ManualClock {
    fn now(&self) -> SimTime {
        *self.now.lock().unwrap()
    }

    /// "Sleeping" on a manual clock just advances it — callers that sleep
    /// in wall-clock runs make the same progress in tests instantly.
    fn sleep(&self, d: SimDuration) {
        self.advance(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic_and_moves() {
        let c = WallClock::new();
        let a = c.now();
        c.sleep(SimDuration::from_millis(2));
        let b = c.now();
        assert!(b > a);
        assert!((b - a) >= SimDuration::from_millis(2));
    }

    #[test]
    fn manual_clock_advances_only_by_hand() {
        let c = ManualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(SimDuration::from_micros(5));
        assert_eq!(c.now(), SimTime::from_micros(5));
        c.sleep(SimDuration::from_micros(5));
        assert_eq!(c.now(), SimTime::from_micros(10));
    }

    #[test]
    fn deadline_is_now_plus_delta() {
        let c = ManualClock::new();
        c.advance(SimDuration::from_secs(1));
        assert_eq!(c.deadline(SimDuration::from_secs(2)), SimTime::from_secs(3));
    }
}
