//! Simulated time.
//!
//! The simulator measures time in integer nanoseconds since the start of the
//! simulation. Two newtypes keep instants and durations from being confused:
//! [`SimTime`] is a point on the simulated clock, [`SimDuration`] is a span.
//!
//! Nanosecond resolution comfortably covers everything the reproduced paper
//! measures: network flight times of a few microseconds, request service
//! times of 2-30 µs, one-second PDU power samples, and crash recoveries
//! lasting tens of seconds.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant on the simulated clock, in nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use rmc_runtime::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_micros(15);
/// assert_eq!(t.as_nanos(), 15_000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_micros(15));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use rmc_runtime::SimDuration;
///
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_micros_f64(), 2500.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start, as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`.
    ///
    /// Returns [`SimDuration::ZERO`] when `earlier` is later than `self`
    /// rather than panicking, mirroring `Instant::saturating_duration_since`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating add that never overflows past [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span; used as a "never" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from a float number of seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Creates a span from a float number of microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `micros` is negative or not finite.
    pub fn from_micros_f64(micros: f64) -> Self {
        assert!(
            micros.is_finite() && micros >= 0.0,
            "duration micros must be finite and non-negative, got {micros}"
        );
        SimDuration((micros * 1e3).round() as u64)
    }

    /// The span in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in microseconds, as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The span in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True when the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by a float factor, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked addition, `None` on overflow.
    pub fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(other.0).map(SimDuration)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.0 as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(
            SimDuration::from_secs(2),
            SimDuration::from_nanos(2_000_000_000)
        );
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t0 = SimTime::from_micros(10);
        let d = SimDuration::from_micros(5);
        assert_eq!((t0 + d) - t0, d);
        assert_eq!((t0 + d) - d, t0);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
    }

    #[test]
    fn float_conversions() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_nanos(), 1_500_000_000);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(SimDuration::from_micros_f64(2.5).as_nanos(), 2_500);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_nanos(100);
        assert_eq!(d.mul_f64(1.5).as_nanos(), 150);
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_seconds_panic() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.00us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.00ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }
}
