//! # rmc-runtime — the engine-agnostic runtime layer
//!
//! Substrate for the reproduction of *"Characterizing Performance and
//! Energy-Efficiency of the RAMCloud Storage System"* (ICDCS 2017). This
//! workspace runs the same replication/recovery protocol on two engines —
//! the deterministic discrete-event simulator in `rmc-sim` and real threads
//! in `rmc-standalone` — and this crate holds everything both sides share:
//!
//! - [`SimTime`] / [`SimDuration`]: nanosecond timestamps and intervals.
//!   "Sim" is historical; on the threaded engine they carry wall-clock
//!   nanoseconds since a [`WallClock`]'s origin.
//! - [`Clock`]: where "now" comes from ([`WallClock`], [`ManualClock`], or
//!   the simulator's event queue).
//! - [`Runtime`] + [`NodeId`]: the full surface a protocol node may touch —
//!   clock, message transport, and a timer. Protocol handlers generic over
//!   `R: Runtime` run unchanged under either engine.
//! - [`SimRng`]: deterministic seedable randomness.
//! - Measurement primitives: [`Summary`], [`Histogram`], [`TimeSeries`],
//!   [`RateMeter`], [`BinnedUsage`], and the [`StripedCounter`] used where
//!   many real threads count events concurrently.
//!
//! `rmc-sim` re-exports the time/rng/metric types, so simulator-facing code
//! may import them from either crate.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clock;
mod counter;
mod metrics;
mod registry;
mod rng;
mod runtime;
mod time;

pub use clock::{Clock, ManualClock, WallClock};
pub use counter::StripedCounter;
pub use metrics::{BinnedUsage, Histogram, RateMeter, Summary, TimeSeries};
pub use registry::{CounterHandle, HistogramHandle, MetricKind, MetricsFamily, MetricsRegistry};
pub use rng::SimRng;
pub use runtime::{NodeId, Runtime};
pub use time::{SimDuration, SimTime};
