//! The [`Runtime`] trait: clock + transport + timer, the whole surface a
//! protocol node may touch.
//!
//! The replication/recovery protocol in `rmc-core` is written as message
//! handlers that are generic over `R: Runtime`. A handler may read the
//! clock, send messages to other named nodes, and arm its own timer —
//! nothing else. That confinement is what lets the *same* handler code run
//! under two engines:
//!
//! - a deterministic simulated engine, where `send` schedules a delivery
//!   event on the discrete-event queue and `set_timer` schedules a timer
//!   event, or
//! - a threaded engine, where `send` pushes onto the destination node's
//!   channel and `set_timer` bounds the node loop's `recv_timeout`.

use crate::time::{SimDuration, SimTime};

/// A node address inside one cluster: coordinator, servers, and clients all
/// live in a single flat id space so any node can message any other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Everything a protocol node may do to the outside world.
///
/// One `Runtime` value is the *context of one node while it handles one
/// message*: it knows who "self" is, what time it is, and how to reach the
/// other nodes. Handlers never see channels, schedulers, or threads.
pub trait Runtime {
    /// The message type exchanged between nodes.
    type Msg;

    /// The handling node's own address.
    fn node(&self) -> NodeId;

    /// The current instant (simulated or wall-clock).
    fn now(&self) -> SimTime;

    /// Sends `msg` to `to`. Delivery is asynchronous and may silently fail
    /// if the destination is dead — exactly the guarantee a NIC gives, and
    /// why the protocol carries its own acks and retries.
    ///
    /// Takes `&self`: a real NIC transmits concurrently, and forcing
    /// exclusive access here would serialize every socket writer behind
    /// one `&mut` borrow. Engines that buffer sends use interior
    /// mutability for their outbox.
    fn send(&self, to: NodeId, msg: Self::Msg);

    /// Arms this node's timer to fire no later than `after` from now. The
    /// engine will invoke the node's timer handler at (or after) that
    /// point; re-arming before expiry moves the deadline to the earlier of
    /// the two. The timer is genuinely per-node state, so unlike
    /// [`Runtime::send`] it keeps the exclusive receiver.
    fn set_timer(&mut self, after: SimDuration);

    /// Sends `msg` to `to`, asking the engine to hold it for an extra
    /// `delay` before delivery. Engines that cannot schedule a deferred
    /// send — or that model latency elsewhere — may deliver immediately;
    /// the default does exactly that. Fault-injection layers use this to
    /// express message *delay* and *reorder* without owning a scheduler.
    fn send_after(&self, delay: SimDuration, to: NodeId, msg: Self::Msg) {
        let _ = delay;
        self.send(to, msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy runtime proving the trait is implementable without an engine.
    /// The `RefCell` outbox is the pattern buffering engines use now that
    /// `send` takes `&self`.
    struct Recorder {
        node: NodeId,
        now: SimTime,
        sent: std::cell::RefCell<Vec<(NodeId, u32)>>,
        timer: Option<SimDuration>,
    }

    impl Runtime for Recorder {
        type Msg = u32;
        fn node(&self) -> NodeId {
            self.node
        }
        fn now(&self) -> SimTime {
            self.now
        }
        fn send(&self, to: NodeId, msg: u32) {
            self.sent.borrow_mut().push((to, msg));
        }
        fn set_timer(&mut self, after: SimDuration) {
            self.timer = Some(match self.timer {
                Some(t) => t.min(after),
                None => after,
            });
        }
    }

    fn ping<R: Runtime<Msg = u32>>(rt: &mut R, peer: NodeId) {
        rt.send(peer, rt.now().as_nanos() as u32);
        rt.set_timer(SimDuration::from_millis(10));
    }

    #[test]
    fn handlers_generic_over_runtime() {
        let mut rt = Recorder {
            node: NodeId(1),
            now: SimTime::from_nanos(7),
            sent: std::cell::RefCell::new(Vec::new()),
            timer: None,
        };
        ping(&mut rt, NodeId(2));
        rt.set_timer(SimDuration::from_millis(3));
        assert_eq!(*rt.sent.borrow(), vec![(NodeId(2), 7)]);
        assert_eq!(rt.timer, Some(SimDuration::from_millis(3)));
    }

    #[test]
    fn send_after_defaults_to_immediate_send() {
        let rt = Recorder {
            node: NodeId(0),
            now: SimTime::ZERO,
            sent: std::cell::RefCell::new(Vec::new()),
            timer: None,
        };
        rt.send_after(SimDuration::from_millis(50), NodeId(3), 42);
        assert_eq!(*rt.sent.borrow(), vec![(NodeId(3), 42)]);
    }
}
