//! Measurement primitives used across the simulator.
//!
//! The reproduced paper reports averages with error bars, per-second power
//! samples, latency timelines, and throughput. These types cover those needs:
//!
//! - [`Summary`] — running mean/min/max/stddev without storing samples,
//! - [`TimeSeries`] — `(time, value)` samples for timeline figures,
//! - [`Histogram`] — log-bucketed latency histogram with quantiles,
//! - [`RateMeter`] — events-per-second over fixed windows (throughput
//!   timelines, disk MB/s in Fig 12).

use serde::Serialize;

use crate::time::{SimDuration, SimTime};

/// Streaming summary statistics (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use rmc_runtime::Summary;
///
/// let mut s = Summary::new();
/// for v in [2.0, 4.0, 6.0] {
///     s.record(v);
/// }
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.min(), 2.0);
/// assert_eq!(s.max(), 6.0);
/// ```
#[derive(Debug, Clone, Default, Serialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest observation, `0.0` when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation, `0.0` when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Population standard deviation, `0.0` for fewer than two observations.
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A sampled `(time, value)` series, e.g. a power or CPU timeline.
#[derive(Debug, Clone, Default, Serialize)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Appends a sample taken at `t`.
    pub fn push(&mut self, t: SimTime, value: f64) {
        self.points.push((t.as_secs_f64(), value));
    }

    /// The samples as `(seconds, value)` pairs in insertion order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of the values within `[from, to)` seconds, or `None` if no
    /// samples fall in the window.
    pub fn window_mean(&self, from: f64, to: f64) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0u64;
        for &(t, v) in &self.points {
            if t >= from && t < to {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Largest value in the series, or `None` when empty.
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }
}

/// Log-bucketed histogram for latency-like values in nanoseconds.
///
/// Buckets grow geometrically (16 sub-buckets per octave), giving ~4.4 %
/// relative quantile error — plenty for reproducing µs-scale latency figures.
#[derive(Debug, Clone, Serialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

pub(crate) const SUB_BUCKETS: u64 = 16;
const SUB_BITS: u32 = 4;

pub(crate) fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let octave = msb - SUB_BITS + 1;
    let sub = (value >> (octave - 1)) - SUB_BUCKETS;
    (SUB_BUCKETS as u32 + octave * SUB_BUCKETS as u32 - SUB_BUCKETS as u32 + sub as u32) as usize
}

pub(crate) fn bucket_low(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_BUCKETS {
        return index;
    }
    let octave = (index - SUB_BUCKETS) / SUB_BUCKETS + 1;
    let sub = (index - SUB_BUCKETS) % SUB_BUCKETS;
    (SUB_BUCKETS + sub) << (octave - 1)
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64 * SUB_BUCKETS as usize],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Rebuilds a histogram from raw parts — the bridge from the atomic
    /// [`crate::HistogramHandle`] snapshot back into this type so quantile
    /// and mean logic live in one place.
    pub(crate) fn from_parts(buckets: Vec<u64>, count: u64, sum: u128, max: u64) -> Self {
        debug_assert_eq!(buckets.len(), 64 * SUB_BUCKETS as usize);
        Histogram {
            buckets,
            count,
            sum,
            max,
        }
    }

    /// Records one value (e.g. a latency in nanoseconds).
    pub fn record(&mut self, value: u64) {
        let idx = bucket_index(value);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
    }

    /// Records a duration as nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]` (lower bucket bound, so the
    /// result under-estimates by at most one bucket width).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_low(i);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// Counts events into fixed-width time windows, yielding a rate timeline.
///
/// Used for per-second throughput and the Fig 12 disk MB/s series.
#[derive(Debug, Clone)]
pub struct RateMeter {
    window: SimDuration,
    /// Completed windows: amount accumulated in each.
    windows: Vec<f64>,
    current_window: u64,
    current_amount: f64,
}

impl RateMeter {
    /// Creates a meter with the given window width.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "rate meter window must be positive");
        RateMeter {
            window,
            windows: Vec::new(),
            current_window: 0,
            current_amount: 0.0,
        }
    }

    fn window_of(&self, t: SimTime) -> u64 {
        t.as_nanos() / self.window.as_nanos()
    }

    /// Adds `amount` (e.g. 1 request, or bytes moved) at time `t`.
    ///
    /// Times must be non-decreasing across calls; out-of-order samples are
    /// folded into the current window.
    pub fn add(&mut self, t: SimTime, amount: f64) {
        let w = self.window_of(t).max(self.current_window);
        while self.current_window < w {
            self.windows.push(self.current_amount);
            self.current_amount = 0.0;
            self.current_window += 1;
        }
        self.current_amount += amount;
    }

    /// Closes out windows up to `t` and returns `(window_start_seconds,
    /// amount_per_second)` pairs.
    pub fn finish(mut self, t: SimTime) -> Vec<(f64, f64)> {
        let w = self.window_of(t).max(self.current_window);
        while self.current_window <= w {
            self.windows.push(self.current_amount);
            self.current_amount = 0.0;
            self.current_window += 1;
        }
        let secs = self.window.as_secs_f64();
        self.windows
            .iter()
            .enumerate()
            .map(|(i, &a)| (i as f64 * secs, a / secs))
            .collect()
    }
}

/// Accumulates weighted busy spans into fixed-width time bins.
///
/// Components (worker threads, disks, NICs) report the spans during which
/// they were busy; the sampler then reads back per-bin utilization. This is
/// how the reproduction obtains the per-second CPU-usage and power timelines
/// (Table I, Fig 9) without storing every span.
///
/// # Examples
///
/// ```
/// use rmc_runtime::{BinnedUsage, SimDuration, SimTime};
///
/// // One core busy for half of each of the first two seconds.
/// let mut u = BinnedUsage::new(SimDuration::from_secs(1));
/// u.add_span(SimTime::from_millis(0), SimTime::from_millis(500), 1.0);
/// u.add_span(SimTime::from_millis(1500), SimTime::from_millis(2000), 1.0);
/// assert_eq!(u.bin_value(0), 0.5);
/// assert_eq!(u.bin_value(1), 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct BinnedUsage {
    window: SimDuration,
    /// Busy time (in weighted seconds) per bin.
    bins: Vec<f64>,
}

impl BinnedUsage {
    /// Creates an accumulator with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "bin width must be positive");
        BinnedUsage {
            window,
            bins: Vec::new(),
        }
    }

    /// The bin width.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Adds a busy span `[from, to)` with the given weight (e.g. 1.0 for one
    /// core, 2.0 for two cores busy simultaneously). Spans may arrive in any
    /// order and may overlap.
    pub fn add_span(&mut self, from: SimTime, to: SimTime, weight: f64) {
        if to <= from || weight == 0.0 {
            return;
        }
        let w = self.window.as_nanos();
        let first = from.as_nanos() / w;
        let last = (to.as_nanos() - 1) / w;
        if self.bins.len() <= last as usize {
            self.bins.resize(last as usize + 1, 0.0);
        }
        for bin in first..=last {
            let bin_start = bin * w;
            let bin_end = bin_start + w;
            let overlap = to.as_nanos().min(bin_end) - from.as_nanos().max(bin_start);
            self.bins[bin as usize] += overlap as f64 / 1e9 * weight;
        }
    }

    /// Average weight during bin `i` (busy weighted-seconds divided by bin
    /// width); `0.0` for bins never touched.
    pub fn bin_value(&self, i: usize) -> f64 {
        self.bins
            .get(i)
            .map(|&b| b / self.window.as_secs_f64())
            .unwrap_or(0.0)
    }

    /// Number of bins that have been touched (the timeline length).
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True when no spans have been added.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Mean bin value over `[from_bin, to_bin)`, counting untouched bins in
    /// the range as zero.
    pub fn mean_over(&self, from_bin: usize, to_bin: usize) -> f64 {
        if to_bin <= from_bin {
            return 0.0;
        }
        let sum: f64 = (from_bin..to_bin).map(|i| self.bin_value(i)).sum();
        sum / (to_bin - from_bin) as f64
    }

    /// Total accumulated weighted busy seconds.
    pub fn total_busy_seconds(&self) -> f64 {
        self.bins.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_stats() {
        let mut s = Summary::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert!((s.stddev() - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_zeroes() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn summary_merge_equals_combined() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        let mut all = Summary::new();
        for i in 0..50 {
            let v = (i * i % 17) as f64;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.stddev() - all.stddev()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn timeseries_window_mean() {
        let mut ts = TimeSeries::new();
        for i in 0..10 {
            ts.push(SimTime::from_secs(i), i as f64);
        }
        assert_eq!(ts.window_mean(2.0, 5.0), Some(3.0));
        assert_eq!(ts.window_mean(100.0, 200.0), None);
        assert_eq!(ts.max_value(), Some(9.0));
    }

    #[test]
    fn histogram_buckets_monotone() {
        // bucket_low(bucket_index(v)) <= v for all v, and indices are
        // monotone in v.
        let mut prev_idx = 0;
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1_000,
            123_456,
            u32::MAX as u64,
        ] {
            let idx = bucket_index(v);
            assert!(bucket_low(idx) <= v, "low bound above value for {v}");
            assert!(idx >= prev_idx, "index not monotone at {v}");
            prev_idx = idx;
        }
    }

    #[test]
    fn histogram_quantiles_reasonable() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((4500..=5200).contains(&p50), "p50={p50}");
        assert!((9200..=10_000).contains(&p99), "p99={p99}");
        assert!(h.quantile(1.0) <= 10_000);
        assert_eq!(h.count(), 10_000);
        assert!((h.mean() - 5000.5).abs() < 1.0);
    }

    #[test]
    fn histogram_small_values_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        // Values below SUB_BUCKETS land in exact buckets.
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.max(), 15);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1_000);
    }

    #[test]
    fn rate_meter_windows() {
        let mut m = RateMeter::new(SimDuration::from_secs(1));
        m.add(SimTime::from_millis(100), 1.0);
        m.add(SimTime::from_millis(900), 1.0);
        m.add(SimTime::from_millis(1500), 5.0);
        let rates = m.finish(SimTime::from_secs(3));
        assert_eq!(rates[0], (0.0, 2.0));
        assert_eq!(rates[1], (1.0, 5.0));
        assert_eq!(rates[2], (2.0, 0.0));
    }

    #[test]
    fn binned_usage_splits_across_bins() {
        let mut u = BinnedUsage::new(SimDuration::from_secs(1));
        // Span covering 0.5s..2.5s with weight 2.
        u.add_span(SimTime::from_millis(500), SimTime::from_millis(2500), 2.0);
        assert!((u.bin_value(0) - 1.0).abs() < 1e-9);
        assert!((u.bin_value(1) - 2.0).abs() < 1e-9);
        assert!((u.bin_value(2) - 1.0).abs() < 1e-9);
        assert!((u.total_busy_seconds() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn binned_usage_overlapping_spans_add() {
        let mut u = BinnedUsage::new(SimDuration::from_secs(1));
        u.add_span(SimTime::ZERO, SimTime::from_secs(1), 1.0);
        u.add_span(SimTime::ZERO, SimTime::from_secs(1), 1.0);
        assert!((u.bin_value(0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn binned_usage_empty_and_degenerate() {
        let mut u = BinnedUsage::new(SimDuration::from_secs(1));
        assert!(u.is_empty());
        u.add_span(SimTime::from_secs(1), SimTime::from_secs(1), 1.0);
        assert!(u.is_empty(), "zero-length span must be ignored");
        assert_eq!(u.bin_value(99), 0.0);
        assert_eq!(u.mean_over(0, 0), 0.0);
    }

    #[test]
    fn binned_usage_mean_over_counts_untouched_as_zero() {
        let mut u = BinnedUsage::new(SimDuration::from_secs(1));
        u.add_span(SimTime::ZERO, SimTime::from_secs(1), 1.0);
        assert!((u.mean_over(0, 4) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn rate_meter_skips_empty_windows() {
        let mut m = RateMeter::new(SimDuration::from_secs(1));
        m.add(SimTime::from_secs(5), 10.0);
        let rates = m.finish(SimTime::from_secs(6));
        assert_eq!(rates.len(), 7);
        assert_eq!(rates[5].1, 10.0);
        assert!(rates[..5].iter().all(|&(_, r)| r == 0.0));
    }
}
