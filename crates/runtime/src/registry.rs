//! A process-wide named-counter registry shared across threads and engines.
//!
//! Protocol nodes count events (retries, backoffs, epoch-mismatch drops,
//! fenced replicas, …) without knowing which engine hosts them. The sim
//! engine owns all nodes on one thread; the threaded engine spreads them
//! over real threads — so handles are `Arc<AtomicU64>` and cloning a
//! registry shares the underlying counters. Counter names are dotted paths
//! (`"client.3.retries"`, `"net.epoch_mismatch"`); a snapshot returns every
//! counter, and [`MetricsRegistry::sum`] aggregates a per-node family by
//! prefix + suffix.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One named counter. Cheap to clone; increments are lock-free.
#[derive(Debug, Clone, Default)]
pub struct CounterHandle(Arc<AtomicU64>);

impl CounterHandle {
    /// Adds 1.
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value — for gauge-style metrics (queue depth,
    /// reclamation epoch lag) where the latest observation, not a running
    /// total, is what a snapshot should report.
    pub fn set(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A clonable registry of named [`CounterHandle`]s.
///
/// # Examples
///
/// ```
/// use rmc_runtime::MetricsRegistry;
///
/// let reg = MetricsRegistry::new();
/// let retries = reg.counter("client.0.retries");
/// retries.incr();
/// reg.counter("client.1.retries").add(2);
/// assert_eq!(reg.sum("client.", ".retries"), 3);
/// assert_eq!(reg.snapshot()["client.0.retries"], 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Arc<Mutex<BTreeMap<String, CounterHandle>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, creating it at zero on first use.
    /// The same name always yields handles onto the same underlying value.
    pub fn counter(&self, name: &str) -> CounterHandle {
        let mut map = self.counters.lock().expect("metrics registry poisoned");
        map.entry(name.to_owned()).or_default().clone()
    }

    /// Current value of `name`, or 0 when it was never created.
    pub fn get(&self, name: &str) -> u64 {
        let map = self.counters.lock().expect("metrics registry poisoned");
        map.get(name).map_or(0, CounterHandle::get)
    }

    /// Sums every counter whose name starts with `prefix` and ends with
    /// `suffix` — aggregating a per-node family like
    /// `("client.", ".retries")` over all clients.
    pub fn sum(&self, prefix: &str, suffix: &str) -> u64 {
        let map = self.counters.lock().expect("metrics registry poisoned");
        map.iter()
            .filter(|(name, _)| name.starts_with(prefix) && name.ends_with(suffix))
            .map(|(_, c)| c.get())
            .sum()
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        let map = self.counters.lock().expect("metrics registry poisoned");
        map.iter().map(|(k, c)| (k.clone(), c.get())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_shares_the_counter() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.incr();
        b.add(4);
        assert_eq!(reg.get("x"), 5);
        assert_eq!(reg.get("never"), 0);
        a.set(2);
        assert_eq!(reg.get("x"), 2, "set overwrites like a gauge");
    }

    #[test]
    fn clones_share_state_across_threads() {
        let reg = MetricsRegistry::new();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    let c = reg.counter(&format!("node.{t}.events"));
                    for _ in 0..1000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.sum("node.", ".events"), 4000);
        assert_eq!(reg.snapshot().len(), 4);
    }

    #[test]
    fn sum_filters_by_prefix_and_suffix() {
        let reg = MetricsRegistry::new();
        reg.counter("client.0.retries").add(1);
        reg.counter("client.1.retries").add(2);
        reg.counter("client.1.giveups").add(7);
        reg.counter("server.1.retries").add(9);
        assert_eq!(reg.sum("client.", ".retries"), 3);
        assert_eq!(reg.sum("client.", ".giveups"), 7);
        assert_eq!(reg.sum("", ".retries"), 12);
    }
}
