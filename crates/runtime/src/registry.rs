//! A process-wide named-metric registry shared across threads and engines.
//!
//! Protocol nodes count events (retries, backoffs, epoch-mismatch drops,
//! fenced replicas, …) without knowing which engine hosts them. The sim
//! engine owns all nodes on one thread; the threaded engine spreads them
//! over real threads — so handles are `Arc`-shared atomics and cloning a
//! registry shares the underlying values. Metric names are dotted paths
//! (`"client.3.retries"`, `"net.epoch_mismatch"`); a snapshot returns every
//! metric, and [`MetricsRegistry::sum`] aggregates a per-node family by
//! prefix + suffix.
//!
//! Three metric shapes:
//!
//! - **counters** ([`CounterHandle`], [`MetricKind::Counter`]) — monotonic
//!   event totals, meaningfully *diffed* between two snapshots;
//! - **gauges** (also [`CounterHandle`], registered via
//!   [`MetricsRegistry::gauge`], [`MetricKind::Gauge`]) — point-in-time
//!   levels written with [`CounterHandle::set`] (queue depth, reclamation
//!   lag); diffing them is meaningless, so the stats plane reports the
//!   latest value instead;
//! - **histograms** ([`HistogramHandle`]) — lock-free log-bucketed latency
//!   distributions (same bucket layout as [`crate::Histogram`]), recorded
//!   from any thread and snapshot into a regular [`Histogram`] for
//!   quantiles.
//!
//! Registration takes a `Mutex` and allocates the name; the *handles* are
//! lock-free. Hot paths must resolve handles once (see
//! [`MetricsRegistry::family`]) and record through them, never re-look-up
//! by name per operation.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::metrics::{bucket_index, Histogram, SUB_BUCKETS};

/// One named counter (or gauge). Cheap to clone; updates are lock-free.
#[derive(Debug, Clone, Default)]
pub struct CounterHandle(Arc<AtomicU64>);

impl CounterHandle {
    /// Adds 1.
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value — for gauge-style metrics (queue depth,
    /// reclamation epoch lag) where the latest observation, not a running
    /// total, is what a snapshot should report.
    pub fn set(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// How a registered metric's value is meant to be read over time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic running total; the delta between two snapshots is a rate.
    Counter,
    /// Latest-observation level set with [`CounterHandle::set`]; deltas are
    /// meaningless, a snapshot reports the current value.
    Gauge,
}

struct AtomicHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl AtomicHistogram {
    fn new() -> Self {
        AtomicHistogram {
            buckets: (0..64 * SUB_BUCKETS as usize)
                .map(|_| AtomicU64::new(0))
                .collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for AtomicHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicHistogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// One named lock-free histogram. Cheap to clone; records are a handful of
/// relaxed atomic ops, safe from any thread.
///
/// Values use the same log-bucket layout as [`Histogram`] (16 sub-buckets
/// per octave, ~4.4 % relative quantile error); snapshotting yields a plain
/// [`Histogram`] so quantile/mean logic is shared.
///
/// # Examples
///
/// ```
/// use rmc_runtime::MetricsRegistry;
///
/// let reg = MetricsRegistry::new();
/// let h = reg.histogram("stage.queue_wait_ns");
/// h.record(1_500);
/// h.record(2_500);
/// let snap = h.snapshot();
/// assert_eq!(snap.count(), 2);
/// assert!(snap.mean() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct HistogramHandle(Arc<AtomicHistogram>);

impl Default for HistogramHandle {
    fn default() -> Self {
        HistogramHandle(Arc::new(AtomicHistogram::new()))
    }
}

impl HistogramHandle {
    /// Records one value (e.g. a latency in nanoseconds). Lock-free.
    pub fn record(&self, value: u64) {
        let h = &*self.0;
        h.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(value, Ordering::Relaxed);
        h.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy as a regular [`Histogram`] (for quantiles).
    ///
    /// Concurrent recorders may land between the field reads, so the copy
    /// is coherent only up to in-flight records — fine for reporting.
    pub fn snapshot(&self) -> Histogram {
        let h = &*self.0;
        let buckets: Vec<u64> = h
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // Derive the count from the copied buckets so count and buckets
        // always agree (quantile walks the buckets against the count).
        let count = buckets.iter().sum();
        Histogram::from_parts(
            buckets,
            count,
            h.sum.load(Ordering::Relaxed) as u128,
            h.max.load(Ordering::Relaxed),
        )
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, (CounterHandle, MetricKind)>,
    histograms: BTreeMap<String, HistogramHandle>,
}

/// A clonable registry of named [`CounterHandle`]s and [`HistogramHandle`]s.
///
/// # Examples
///
/// ```
/// use rmc_runtime::MetricsRegistry;
///
/// let reg = MetricsRegistry::new();
/// let retries = reg.counter("client.0.retries");
/// retries.incr();
/// reg.counter("client.1.retries").add(2);
/// assert_eq!(reg.sum("client.", ".retries"), 3);
/// assert_eq!(reg.snapshot()["client.0.retries"], 1);
///
/// // Pre-resolved per-node family: one lock at construction, lock-free use.
/// let fam = reg.family("read", 3);
/// let lockfree = fam.counter("lockfree");
/// lockfree.incr();
/// assert_eq!(reg.get("read.3.lockfree"), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Inner>>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("counters", &self.counters.len())
            .field("histograms", &self.histograms.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn counter_kind(&self, name: &str, kind: MetricKind) -> CounterHandle {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        let entry = inner
            .counters
            .entry(name.to_owned())
            .or_insert_with(|| (CounterHandle::default(), kind));
        // Re-registering under a different kind re-brands the metric: the
        // most specific caller (the one that knows it's a gauge) wins.
        if kind == MetricKind::Gauge {
            entry.1 = MetricKind::Gauge;
        }
        entry.0.clone()
    }

    /// Returns the counter named `name`, creating it at zero on first use.
    /// The same name always yields handles onto the same underlying value.
    pub fn counter(&self, name: &str) -> CounterHandle {
        self.counter_kind(name, MetricKind::Counter)
    }

    /// Returns the gauge named `name`, creating it at zero on first use.
    ///
    /// Same handle type as [`MetricsRegistry::counter`] (write with
    /// [`CounterHandle::set`]), but snapshots brand it [`MetricKind::Gauge`]
    /// so the stats plane reports its level instead of diffing it.
    pub fn gauge(&self, name: &str) -> CounterHandle {
        self.counter_kind(name, MetricKind::Gauge)
    }

    /// Returns the histogram named `name`, creating it empty on first use.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.histograms.entry(name.to_owned()).or_default().clone()
    }

    /// A pre-resolved per-node handle family: `family("read", 3)` resolves
    /// names under `read.3.`. Resolution locks once per handle at
    /// construction; the returned handles are lock-free — this is the API
    /// hot paths must use instead of per-call [`MetricsRegistry::counter`].
    pub fn family(&self, name: &str, index: usize) -> MetricsFamily {
        MetricsFamily {
            registry: self.clone(),
            prefix: format!("{name}.{index}."),
        }
    }

    /// Like [`MetricsRegistry::family`] but with a verbatim prefix
    /// (`"net."`, `"stage."`) instead of a `name.index.` pair.
    pub fn family_at(&self, prefix: &str) -> MetricsFamily {
        MetricsFamily {
            registry: self.clone(),
            prefix: prefix.to_owned(),
        }
    }

    /// Current value of `name`, or 0 when it was never created.
    pub fn get(&self, name: &str) -> u64 {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        inner.counters.get(name).map_or(0, |(c, _)| c.get())
    }

    /// Sums every counter whose name starts with `prefix` and ends with
    /// `suffix` — aggregating a per-node family like
    /// `("client.", ".retries")` over all clients.
    pub fn sum(&self, prefix: &str, suffix: &str) -> u64 {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with(prefix) && name.ends_with(suffix))
            .map(|(_, (c, _))| c.get())
            .sum()
    }

    /// A point-in-time copy of every counter and gauge (kind-blind; the
    /// stats plane uses [`MetricsRegistry::snapshot_kinds`]).
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .counters
            .iter()
            .map(|(k, (c, _))| (k.clone(), c.get()))
            .collect()
    }

    /// A point-in-time copy of every counter and gauge with its kind.
    pub fn snapshot_kinds(&self) -> BTreeMap<String, (u64, MetricKind)> {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .counters
            .iter()
            .map(|(k, (c, kind))| (k.clone(), (c.get(), *kind)))
            .collect()
    }

    /// A point-in-time copy of every histogram.
    pub fn snapshot_histograms(&self) -> BTreeMap<String, Histogram> {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect()
    }
}

/// Pre-resolved handle family under a fixed name prefix; see
/// [`MetricsRegistry::family`].
#[derive(Debug, Clone)]
pub struct MetricsFamily {
    registry: MetricsRegistry,
    prefix: String,
}

impl MetricsFamily {
    /// Resolves the counter `prefix + name` (one lock, then lock-free).
    pub fn counter(&self, name: &str) -> CounterHandle {
        self.registry.counter(&format!("{}{name}", self.prefix))
    }

    /// Resolves the gauge `prefix + name` (one lock, then lock-free).
    pub fn gauge(&self, name: &str) -> CounterHandle {
        self.registry.gauge(&format!("{}{name}", self.prefix))
    }

    /// Resolves the histogram `prefix + name` (one lock, then lock-free).
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        self.registry.histogram(&format!("{}{name}", self.prefix))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_shares_the_counter() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.incr();
        b.add(4);
        assert_eq!(reg.get("x"), 5);
        assert_eq!(reg.get("never"), 0);
        a.set(2);
        assert_eq!(reg.get("x"), 2, "set overwrites like a gauge");
    }

    #[test]
    fn clones_share_state_across_threads() {
        let reg = MetricsRegistry::new();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    let c = reg.counter(&format!("node.{t}.events"));
                    for _ in 0..1000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.sum("node.", ".events"), 4000);
        assert_eq!(reg.snapshot().len(), 4);
    }

    #[test]
    fn sum_filters_by_prefix_and_suffix() {
        let reg = MetricsRegistry::new();
        reg.counter("client.0.retries").add(1);
        reg.counter("client.1.retries").add(2);
        reg.counter("client.1.giveups").add(7);
        reg.counter("server.1.retries").add(9);
        assert_eq!(reg.sum("client.", ".retries"), 3);
        assert_eq!(reg.sum("client.", ".giveups"), 7);
        assert_eq!(reg.sum("", ".retries"), 12);
    }

    #[test]
    fn gauges_are_branded_and_survive_counter_reregistration() {
        let reg = MetricsRegistry::new();
        reg.gauge("read.0.value_views_live").set(7);
        // A later kind-blind lookup must not demote the gauge.
        reg.counter("read.0.value_views_live");
        let kinds = reg.snapshot_kinds();
        assert_eq!(kinds["read.0.value_views_live"], (7, MetricKind::Gauge));
        // And a counter later discovered to be a gauge is re-branded.
        reg.counter("cleaner.0.reclamation_lag");
        reg.gauge("cleaner.0.reclamation_lag");
        assert_eq!(
            reg.snapshot_kinds()["cleaner.0.reclamation_lag"].1,
            MetricKind::Gauge
        );
    }

    #[test]
    fn family_resolves_dotted_names() {
        let reg = MetricsRegistry::new();
        let fam = reg.family("cleaner", 2);
        fam.counter("passes").add(3);
        fam.gauge("reclamation_lag").set(5);
        fam.histogram("busy_ns").record(100);
        assert_eq!(reg.get("cleaner.2.passes"), 3);
        assert_eq!(reg.get("cleaner.2.reclamation_lag"), 5);
        assert_eq!(reg.histogram("cleaner.2.busy_ns").count(), 1);
        let net = reg.family_at("net.");
        net.counter("epoch_mismatch").incr();
        assert_eq!(reg.get("net.epoch_mismatch"), 1);
    }

    #[test]
    fn histogram_records_and_quantiles() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1000);
        let p50 = snap.quantile(0.5);
        // Log buckets under-report by at most ~1/16 relative error.
        assert!((430..=500).contains(&p50), "p50={p50}");
        assert_eq!(snap.max(), 1000);
        assert!((snap.mean() - 500.5).abs() < 1.0);
    }

    #[test]
    fn concurrent_histogram_and_counter_hammer_is_coherent() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let reg = MetricsRegistry::new();
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    // Half the threads resolve via family, half by name —
                    // both must land on the same underlying metrics.
                    let (c, h) = if t % 2 == 0 {
                        let fam = reg.family_at("hammer.");
                        (fam.counter("events"), fam.histogram("lat_ns"))
                    } else {
                        (reg.counter("hammer.events"), reg.histogram("hammer.lat_ns"))
                    };
                    for i in 0..PER_THREAD {
                        c.incr();
                        h.record(i % 4096);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let total = THREADS as u64 * PER_THREAD;
        assert_eq!(reg.get("hammer.events"), total);
        let snap = reg.histogram("hammer.lat_ns").snapshot();
        assert_eq!(snap.count(), total);
        assert!(snap.max() < 4096);
        // Quantiles must be monotone over the merged buckets.
        let (p50, p90, p99) = (snap.quantile(0.5), snap.quantile(0.9), snap.quantile(0.99));
        assert!(p50 <= p90 && p90 <= p99, "p50={p50} p90={p90} p99={p99}");
    }
}
