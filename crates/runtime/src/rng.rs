//! Deterministic pseudo-random number generation.
//!
//! Every stochastic choice in the simulator (backup placement, workload keys,
//! crash victims, …) draws from a [`SimRng`] seeded from the experiment
//! configuration, so a run is reproducible bit-for-bit from its seed. The
//! generator is xoshiro256++ with a SplitMix64 seeding stage — the same
//! construction the reference implementations recommend — implemented locally
//! so determinism does not depend on an external crate's version.

/// A deterministic xoshiro256++ pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use rmc_runtime::SimRng;
///
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator whose entire state derives from `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent child generator; useful for giving each
    /// simulated component its own stream without cross-coupling.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits give a uniform dyadic rational in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)` using Lemire's rejection method
    /// (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: recompute threshold once.
            let threshold = bound.wrapping_neg() % bound;
            if lo >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range requires lo < hi, got {lo}..{hi}");
        lo + self.gen_below(hi - lo)
    }

    /// A Bernoulli draw with probability `p` of returning `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be in [0,1], got {p}"
        );
        self.next_f64() < p
    }

    /// An exponentially distributed float with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "mean must be positive, got {mean}"
        );
        // Inverse-CDF sampling; 1 - U avoids ln(0).
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Picks a uniformly random element of `items`, or `None` when empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.gen_below(items.len() as u64) as usize])
        }
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices out of `0..n` (reservoir-free partial
    /// Fisher–Yates). Returns fewer than `k` when `n < k`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut pool: Vec<usize> = (0..n).collect();
        let take = k.min(n);
        for i in 0..take {
            let j = i + self.gen_below((n - i) as u64) as usize;
            pool.swap(i, j);
        }
        pool.truncate(take);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_below_stays_in_bounds_and_covers() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.gen_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn exp_mean_is_close() {
        let mut rng = SimRng::seed_from_u64(5);
        let n = 20_000;
        let mean = 10.0;
        let sum: f64 = (0..n).map(|_| rng.gen_exp(mean)).sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() < 0.3,
            "exp mean {observed} too far from {mean}"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = SimRng::seed_from_u64(7);
        let picked = rng.sample_indices(50, 10);
        assert_eq!(picked.len(), 10);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 10);
        assert!(picked.iter().all(|&i| i < 50));
    }

    #[test]
    fn sample_indices_short_pool() {
        let mut rng = SimRng::seed_from_u64(8);
        let picked = rng.sample_indices(3, 10);
        assert_eq!(picked.len(), 3);
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut parent = SimRng::seed_from_u64(9);
        let mut child = parent.fork();
        // Child stream must not equal the parent's continuation.
        let p: Vec<u64> = (0..16).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..16).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SimRng::seed_from_u64(10);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "got {hits} hits for p=0.25");
    }
}
