//! Request-dispatch plumbing for the standalone server.
//!
//! The paper's central throughput finding is that RAMCloud is
//! *dispatch-limited*: the single polling dispatch thread saturates a core
//! long before the worker pool does (§IV). This module holds the pieces the
//! server uses to keep dispatch off the hot path:
//!
//! - [`DispatchMode`] selects between the seed architecture (one global
//!   MPMC queue every operation crosses) and **shard affinity**, where each
//!   worker owns a fixed subset of shards and receives only that subset's
//!   writes over its own queue. With a single writer per shard, the
//!   per-shard write lock is uncontended among workers, and reads can
//!   bypass queues entirely.
//! - [`BatchSlot`] / [`BatchGuard`] implement the pooled reply slot for
//!   multi-operations: one allocation and one wakeup per *batch* instead of
//!   one channel per *op*, with per-key results delivered in submission
//!   order and guaranteed completion (a dropped, never-executed batch
//!   command aborts its slot so no client blocks forever).
//! - [`rmc_runtime::StripedCounter`] (shared with the mini-cluster's node
//!   metrics) counts fast-path reads without creating a new shared cache
//!   line: each shard's reads are counted in that shard's own stripe.

use std::sync::{Arc, Condvar, Mutex};

/// How client requests reach worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// The seed architecture: every operation (including reads) crosses one
    /// global MPMC queue serviced by all workers. Kept as the measurable
    /// baseline — this is what the paper's dispatch-limited curves look
    /// like in miniature.
    GlobalQueue,
    /// Each worker owns the shards `s` with `s % workers == worker`, and
    /// has a private request queue carrying only mutations of those shards.
    /// Reads execute on the client thread directly against the shard (zero
    /// queue crossings); writes are single-threaded per shard.
    #[default]
    ShardAffinity,
}

/// Maps shards to their owning worker under [`DispatchMode::ShardAffinity`].
#[inline]
pub(crate) fn worker_for_shard(shard: usize, workers: usize) -> usize {
    shard % workers
}

struct SlotState<T> {
    results: Vec<Option<T>>,
    remaining: usize,
    aborted: bool,
}

/// A pooled reply slot for one batched operation.
///
/// The issuing client allocates one slot per batch (sized to the batch),
/// hands each destination worker a [`BatchGuard`] covering that worker's
/// share of the keys, and blocks in [`BatchSlot::wait`] until every key has
/// been either executed or abandoned. Results come back indexed by the
/// caller's original key order regardless of how the batch was split.
pub(crate) struct BatchSlot<T> {
    state: Mutex<SlotState<T>>,
    done: Condvar,
}

impl<T> BatchSlot<T> {
    /// A slot awaiting `n` per-key results.
    pub(crate) fn new(n: usize) -> Arc<Self> {
        Arc::new(BatchSlot {
            state: Mutex::new(SlotState {
                results: (0..n).map(|_| None).collect(),
                remaining: n,
                aborted: false,
            }),
            done: Condvar::new(),
        })
    }

    fn complete(&self, index: usize, value: T) {
        let mut st = self.state.lock().unwrap();
        debug_assert!(st.results[index].is_none(), "slot index filled twice");
        st.results[index] = Some(value);
        st.remaining -= 1;
        if st.remaining == 0 {
            self.done.notify_all();
        }
    }

    fn abandon(&self, count: usize) {
        if count == 0 {
            return;
        }
        let mut st = self.state.lock().unwrap();
        st.aborted = true;
        st.remaining -= count;
        if st.remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until all results arrived (or were abandoned). Returns the
    /// per-key results in submission order, or `Err(())` if any part of the
    /// batch was dropped unexecuted (server shutdown).
    pub(crate) fn wait(&self) -> Result<Vec<T>, ()> {
        let mut st = self.state.lock().unwrap();
        while st.remaining > 0 {
            st = self.done.wait(st).unwrap();
        }
        if st.aborted {
            return Err(());
        }
        Ok(st
            .results
            .drain(..)
            .map(|r| r.expect("all results present when remaining == 0"))
            .collect())
    }
}

impl<T> std::fmt::Debug for BatchSlot<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock().unwrap();
        write!(
            f,
            "BatchSlot {{ total: {}, remaining: {}, aborted: {} }}",
            st.results.len(),
            st.remaining,
            st.aborted
        )
    }
}

/// One worker's share of a batch. Travels inside the queued command; every
/// key it covers is either completed by the worker or — if the command is
/// dropped without executing (queue torn down mid-shutdown) — abandoned on
/// drop, waking the waiting client with an error instead of deadlocking it.
pub(crate) struct BatchGuard<T> {
    slot: Arc<BatchSlot<T>>,
    pending: usize,
}

impl<T> BatchGuard<T> {
    /// A guard covering `pending` keys of `slot`.
    pub(crate) fn new(slot: Arc<BatchSlot<T>>, pending: usize) -> Self {
        BatchGuard { slot, pending }
    }

    /// Delivers the result for original key index `index`.
    pub(crate) fn complete(&mut self, index: usize, value: T) {
        debug_assert!(self.pending > 0, "completing more keys than covered");
        self.slot.complete(index, value);
        self.pending -= 1;
    }
}

impl<T> Drop for BatchGuard<T> {
    fn drop(&mut self) {
        self.slot.abandon(self.pending);
    }
}

impl<T> std::fmt::Debug for BatchGuard<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BatchGuard {{ pending: {} }}", self.pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_slot_collects_in_submission_order() {
        let slot = BatchSlot::new(4);
        let mut g_even = BatchGuard::new(Arc::clone(&slot), 2);
        let mut g_odd = BatchGuard::new(Arc::clone(&slot), 2);
        // Workers complete out of order and interleaved.
        g_odd.complete(3, "d");
        g_even.complete(0, "a");
        g_odd.complete(1, "b");
        g_even.complete(2, "c");
        drop((g_even, g_odd));
        assert_eq!(slot.wait().unwrap(), vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn dropped_guard_aborts_instead_of_hanging() {
        let slot = BatchSlot::new(3);
        let mut done = BatchGuard::new(Arc::clone(&slot), 1);
        let undone: BatchGuard<&str> = BatchGuard::new(Arc::clone(&slot), 2);
        done.complete(0, "a");
        drop(done);
        // Simulates a queued command torn down at shutdown.
        drop(undone);
        assert!(slot.wait().is_err());
    }

    #[test]
    fn wait_blocks_until_last_result() {
        let slot = BatchSlot::new(2);
        let mut g = BatchGuard::new(Arc::clone(&slot), 2);
        let waiter = {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || slot.wait())
        };
        g.complete(1, 11);
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(!waiter.is_finished());
        g.complete(0, 10);
        drop(g);
        assert_eq!(waiter.join().unwrap().unwrap(), vec![10, 11]);
    }

    #[test]
    fn worker_for_shard_partitions_all_shards() {
        let workers = 3;
        let mut owned = vec![0; workers];
        for shard in 0..16 {
            owned[worker_for_shard(shard, workers)] += 1;
        }
        assert_eq!(owned.iter().sum::<i32>(), 16);
        assert!(owned.iter().all(|&n| n >= 5));
    }
}
